//===- tests/translate/SemiNaiveTest.cpp - Semi-naive equivalence --------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Invariant 4 of DESIGN.md: the semi-naive fixpoint (delta/new relations,
/// Fig 3 of the paper) computes exactly the naive fixpoint on every
/// program. Property-tested over random recursive rule sets.
///
//===----------------------------------------------------------------------===//

#include "ast/Parser.h"
#include "ast/SemanticAnalysis.h"
#include "interp/Engine.h"
#include "translate/AstToRam.h"
#include "translate/IndexSelection.h"

#include <gtest/gtest.h>

#include <random>

using namespace stird;

namespace {

/// Compiles \p Source with the given strategy and runs it over the given
/// edge facts; returns the sorted contents of \p OutputRel.
std::vector<DynTuple> evaluate(const std::string &Source, bool ForceNaive,
                               const std::vector<DynTuple> &Edges,
                               const std::string &OutputRel) {
  auto Parsed = ast::parseProgram(Source);
  EXPECT_TRUE(Parsed.succeeded());
  auto Info = ast::analyze(*Parsed.Prog);
  EXPECT_TRUE(Info.succeeded());
  SymbolTable Symbols;
  translate::TranslationOptions Options;
  Options.ForceNaiveEvaluation = ForceNaive;
  auto Translated =
      translate::translateToRam(*Parsed.Prog, Info, Symbols, Options);
  EXPECT_TRUE(Translated.succeeded());
  auto Indexes = translate::selectIndexes(*Translated.Prog);
  interp::Engine Engine(*Translated.Prog, Indexes, Symbols);
  Engine.insertTuples("e", Edges);
  Engine.run();
  return Engine.getTuples(OutputRel);
}

std::vector<DynTuple> randomEdges(std::size_t Count, RamDomain Range,
                                  unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<RamDomain> Dist(0, Range);
  std::vector<DynTuple> Result;
  for (std::size_t I = 0; I < Count; ++I)
    Result.push_back({Dist(Rng), Dist(Rng)});
  return Result;
}

TEST(SemiNaiveTest, NaiveRamHasNoDeltaRelations) {
  auto Parsed = ast::parseProgram(
      ".decl e(a:number, b:number)\n.decl p(a:number, b:number)\n"
      "p(x, y) :- e(x, y).\np(x, z) :- p(x, y), e(y, z).");
  ASSERT_TRUE(Parsed.succeeded());
  auto Info = ast::analyze(*Parsed.Prog);
  SymbolTable Symbols;
  translate::TranslationOptions Options;
  Options.ForceNaiveEvaluation = true;
  auto Translated =
      translate::translateToRam(*Parsed.Prog, Info, Symbols, Options);
  ASSERT_TRUE(Translated.succeeded());
  EXPECT_EQ(Translated.Prog->findRelation("delta_p"), nullptr);
  EXPECT_NE(Translated.Prog->findRelation("new_p"), nullptr);
}

TEST(SemiNaiveTest, TransitiveClosureAgrees) {
  const std::string Source =
      ".decl e(a:number, b:number)\n.decl p(a:number, b:number)\n"
      "p(x, y) :- e(x, y).\np(x, z) :- p(x, y), e(y, z).";
  auto Edges = randomEdges(80, 30, 41);
  EXPECT_EQ(evaluate(Source, false, Edges, "p"),
            evaluate(Source, true, Edges, "p"));
}

TEST(SemiNaiveTest, MutualRecursionAgrees) {
  const std::string Source =
      ".decl e(a:number, b:number)\n.decl ev(x:number)\n.decl od(x:number)\n"
      "ev(0).\nod(y) :- ev(x), e(x, y).\nev(y) :- od(x), e(x, y).";
  auto Edges = randomEdges(120, 25, 42);
  Edges.push_back({0, 1});
  EXPECT_EQ(evaluate(Source, false, Edges, "ev"),
            evaluate(Source, true, Edges, "ev"));
  EXPECT_EQ(evaluate(Source, false, Edges, "od"),
            evaluate(Source, true, Edges, "od"));
}

/// Random recursive rule sets with joins, filters and multiple recursive
/// occurrences of the same relation in one body.
class SemiNaiveRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SemiNaiveRandomTest, RandomRecursiveProgramsAgree) {
  const unsigned Seed = static_cast<unsigned>(GetParam());
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<int> Pick(0, 3);
  std::uniform_int_distribution<RamDomain> Const(1, 6);

  std::string Source =
      ".decl e(a:number, b:number)\n.decl p(a:number, b:number)\n"
      "p(x, y) :- e(x, y).\n";
  int NumRules = 1 + static_cast<int>(Rng() % 3);
  for (int I = 0; I < NumRules; ++I) {
    switch (Pick(Rng)) {
    case 0:
      Source += "p(x, z) :- p(x, y), e(y, z).\n";
      break;
    case 1:
      Source += "p(x, z) :- e(x, y), p(y, z).\n";
      break;
    case 2:
      // Two recursive occurrences: exercises the per-delta versions.
      Source += "p(x, z) :- p(x, y), p(y, z).\n";
      break;
    default:
      Source += "p(x, y) :- p(y, x), x != " + std::to_string(Const(Rng)) +
                ".\n";
      break;
    }
  }
  auto Edges = randomEdges(40, 14, Seed * 13 + 3);
  EXPECT_EQ(evaluate(Source, false, Edges, "p"),
            evaluate(Source, true, Edges, "p"))
      << Source;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SemiNaiveRandomTest,
                         ::testing::Range(0, 12));

} // namespace
