//===- tests/translate/UpdateProgramTest.cpp - Incremental update RAM ---------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the EmitUpdateProgram translation mode: eligibility rules,
/// auxiliary-relation registration, printing, and end-to-end equivalence of
/// incremental batches against one-shot evaluation at the engine level.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"

#include <gtest/gtest.h>

using namespace stird;

namespace {

core::CompileOptions withUpdate() {
  core::CompileOptions Options;
  Options.EmitUpdateProgram = true;
  return Options;
}

const char *TcSource = ".decl edge(a:number, b:number)\n"
                       ".decl path(a:number, b:number)\n"
                       "path(x, y) :- edge(x, y).\n"
                       "path(x, z) :- path(x, y), edge(y, z).\n";

TEST(UpdateProgramTest, EligibleProgramCarriesUpdateStatement) {
  auto Prog = core::Program::fromSource(TcSource, nullptr, withUpdate());
  ASSERT_NE(Prog, nullptr);
  EXPECT_TRUE(Prog->getRam().hasUpdate());
  const ram::Program::UpdateAux *Aux = Prog->getRam().getUpdateAux("path");
  ASSERT_NE(Aux, nullptr);
  EXPECT_EQ(Aux->Delta, "delta_path");
  EXPECT_EQ(Aux->New, "new_path");
  EXPECT_EQ(Aux->Added, "added_path");
  // edge is non-recursive: it gets a delta/new pair but no accumulator.
  const ram::Program::UpdateAux *EdgeAux =
      Prog->getRam().getUpdateAux("edge");
  ASSERT_NE(EdgeAux, nullptr);
  EXPECT_EQ(EdgeAux->Delta, "delta_edge");
  EXPECT_TRUE(EdgeAux->Added.empty());
}

TEST(UpdateProgramTest, DefaultTranslationHasNoUpdateStatement) {
  auto Prog = core::Program::fromSource(TcSource);
  ASSERT_NE(Prog, nullptr);
  EXPECT_FALSE(Prog->getRam().hasUpdate());
  EXPECT_EQ(Prog->getRam().getUpdateAux("path"), nullptr);
}

TEST(UpdateProgramTest, NegationDisablesUpdate) {
  auto Prog = core::Program::fromSource(
      ".decl a(x:number)\n.decl b(x:number)\n.decl c(x:number)\n"
      "c(x) :- a(x), !b(x).",
      nullptr, withUpdate());
  ASSERT_NE(Prog, nullptr);
  EXPECT_FALSE(Prog->getRam().hasUpdate());
}

TEST(UpdateProgramTest, AggregateDisablesUpdate) {
  auto Prog = core::Program::fromSource(
      ".decl e(a:number, b:number)\n.decl c(n:number)\n"
      "c(n) :- n = count : { e(_, _) }.",
      nullptr, withUpdate());
  ASSERT_NE(Prog, nullptr);
  EXPECT_FALSE(Prog->getRam().hasUpdate());
}

TEST(UpdateProgramTest, EqrelDisablesUpdate) {
  auto Prog = core::Program::fromSource(
      ".decl eq(a:number, b:number) eqrel\n.decl s(a:number, b:number)\n"
      "eq(x, y) :- s(x, y).",
      nullptr, withUpdate());
  ASSERT_NE(Prog, nullptr);
  EXPECT_FALSE(Prog->getRam().hasUpdate());
}

TEST(UpdateProgramTest, CounterDisablesUpdate) {
  auto Prog = core::Program::fromSource(
      ".decl s(x:number)\n.decl ids(id:number, x:number)\n"
      "ids($, x) :- s(x).",
      nullptr, withUpdate());
  ASSERT_NE(Prog, nullptr);
  EXPECT_FALSE(Prog->getRam().hasUpdate());
}

TEST(UpdateProgramTest, DumpIncludesUpdateSection) {
  auto Prog = core::Program::fromSource(TcSource, nullptr, withUpdate());
  ASSERT_NE(Prog, nullptr);
  EXPECT_NE(Prog->dumpRam().find("UPDATE"), std::string::npos);
}

/// Inserts a batch into both the full relation and its update delta (the
/// runUpdate contract), then runs the update statement.
void applyBatch(core::Program &Prog, interp::Engine &Engine,
                const std::string &Rel,
                const std::vector<DynTuple> &Tuples) {
  const ram::Program::UpdateAux *Aux = Prog.getRam().getUpdateAux(Rel);
  ASSERT_NE(Aux, nullptr);
  Engine.insertTuples(Rel, Tuples);
  Engine.insertTuples(Aux->Delta, Tuples);
  Engine.runUpdate();
}

TEST(UpdateProgramTest, IncrementalBatchesMatchOneShot) {
  std::vector<DynTuple> Edges = {{1, 2}, {2, 3}, {3, 4}, {4, 1},
                                 {5, 6}, {6, 7}, {2, 5}};

  auto OneShot = core::Program::fromSource(TcSource);
  ASSERT_NE(OneShot, nullptr);
  auto Reference = OneShot->makeEngine();
  Reference->insertTuples("edge", Edges);
  Reference->run();
  auto Expected = Reference->getTuples("path");

  for (std::size_t NumBatches : {1u, 2u, 3u, 7u}) {
    auto Prog = core::Program::fromSource(TcSource, nullptr, withUpdate());
    ASSERT_NE(Prog, nullptr);
    auto Engine = Prog->makeEngine();
    ASSERT_TRUE(Engine->supportsIncrementalUpdate());
    // An empty-database bootstrap run, then the batches.
    Engine->run();
    for (std::size_t B = 0; B < NumBatches; ++B) {
      std::vector<DynTuple> Batch;
      for (std::size_t I = B; I < Edges.size(); I += NumBatches)
        Batch.push_back(Edges[I]);
      applyBatch(*Prog, *Engine, "edge", Batch);
    }
    EXPECT_EQ(Engine->getTuples("path"), Expected)
        << "with " << NumBatches << " batches";
    // The deltas end cleared (re-entrancy).
    EXPECT_TRUE(
        Engine->getTuples(Prog->getRam().getUpdateAux("edge")->Delta)
            .empty());
  }
}

TEST(UpdateProgramTest, MultiStratumIncrementalMatchesOneShot) {
  const char *Source =
      ".decl edge(a:number, b:number)\n"
      ".decl path(a:number, b:number)\n"
      ".decl endpoint(a:number)\n"
      "path(x, y) :- edge(x, y).\n"
      "path(x, z) :- path(x, y), edge(y, z).\n"
      "endpoint(y) :- path(x, y), edge(y, x).\n";
  std::vector<DynTuple> Edges = {{1, 2}, {2, 1}, {2, 3}, {3, 4}, {4, 2}};

  auto OneShot = core::Program::fromSource(Source);
  ASSERT_NE(OneShot, nullptr);
  auto Reference = OneShot->makeEngine();
  Reference->insertTuples("edge", Edges);
  Reference->run();
  auto ExpectedPath = Reference->getTuples("path");
  auto ExpectedEnd = Reference->getTuples("endpoint");

  auto Prog = core::Program::fromSource(Source, nullptr, withUpdate());
  ASSERT_NE(Prog, nullptr);
  auto Engine = Prog->makeEngine();
  Engine->run();
  for (const DynTuple &Edge : Edges)
    applyBatch(*Prog, *Engine, "edge", {Edge});
  EXPECT_EQ(Engine->getTuples("path"), ExpectedPath);
  EXPECT_EQ(Engine->getTuples("endpoint"), ExpectedEnd);
}

TEST(UpdateProgramTest, UpdateAfterInitialFactsExtendsThem) {
  // Facts baked into the source are loaded by the bootstrap run(); a later
  // batch extends the same resident relations.
  auto Prog = core::Program::fromSource(
      ".decl edge(a:number, b:number)\n.decl path(a:number, b:number)\n"
      "edge(1, 2).\n"
      "path(x, y) :- edge(x, y).\n"
      "path(x, z) :- path(x, y), edge(y, z).\n",
      nullptr, withUpdate());
  ASSERT_NE(Prog, nullptr);
  auto Engine = Prog->makeEngine();
  Engine->run();
  EXPECT_EQ(Engine->getTuples("path"), (std::vector<DynTuple>{{1, 2}}));
  applyBatch(*Prog, *Engine, "edge", {{2, 3}});
  EXPECT_EQ(Engine->getTuples("path"),
            (std::vector<DynTuple>{{1, 2}, {1, 3}, {2, 3}}));
}

} // namespace
