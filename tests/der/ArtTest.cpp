//===- tests/der/ArtTest.cpp - Adaptive radix tree tests ----------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ART substrate's correctness battery: node-type transitions in both
/// directions (lazy expansion 4 -> 16 -> 48 -> 256 and shrink on erase),
/// path-compression split/merge edge cases, iteration order against the
/// B-tree's TupleCompare contract, a seeded 100k-operation fuzz against a
/// std::set oracle, and the ArtIndex adapter's
/// iteration-order-equals-Order property for every column permutation of
/// arity <= 4.
///
//===----------------------------------------------------------------------===//

#include "der/Art.h"

#include "interp/Relation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <random>
#include <set>
#include <vector>

using namespace stird;

namespace {

/// Deterministic random tuple generator (mirrors BTreeSetTest).
template <std::size_t Arity>
std::vector<Tuple<Arity>> randomTuples(std::size_t Count, RamDomain Range,
                                       unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<RamDomain> Dist(-Range, Range);
  std::vector<Tuple<Arity>> Tuples(Count);
  for (auto &Tuple : Tuples)
    for (auto &Cell : Tuple)
      Cell = Dist(Rng);
  return Tuples;
}

template <std::size_t Arity>
std::vector<Tuple<Arity>> drain(const ArtSet<Arity> &Set) {
  std::vector<Tuple<Arity>> Out;
  for (auto It = Set.begin(), End = Set.end(); It != End; ++It)
    Out.push_back(*It);
  return Out;
}

//===----------------------------------------------------------------------===//
// Basics: empty, single, duplicate
//===----------------------------------------------------------------------===//

TEST(ArtSet, EmptySet) {
  ArtSet<2> Set;
  EXPECT_EQ(Set.size(), 0u);
  EXPECT_TRUE(Set.empty());
  EXPECT_EQ(Set.begin(), Set.end());
  EXPECT_FALSE(Set.contains({1, 2}));
  EXPECT_FALSE(Set.erase({1, 2}));
  EXPECT_TRUE(Set.partition(4).empty());
}

TEST(ArtSet, SingleTuple) {
  ArtSet<2> Set;
  EXPECT_TRUE(Set.insert({7, -3}));
  EXPECT_EQ(Set.size(), 1u);
  EXPECT_TRUE(Set.contains({7, -3}));
  EXPECT_FALSE(Set.contains({7, 3}));
  EXPECT_EQ(drain(Set), (std::vector<Tuple<2>>{{7, -3}}));
  EXPECT_TRUE(Set.erase({7, -3}));
  EXPECT_TRUE(Set.empty());
  EXPECT_EQ(Set.begin(), Set.end());
}

TEST(ArtSet, DuplicateInsertsAreRejected) {
  ArtSet<1> Set;
  EXPECT_TRUE(Set.insert({42}));
  EXPECT_FALSE(Set.insert({42}));
  EXPECT_EQ(Set.size(), 1u);
  for (const auto &T : randomTuples<1>(500, 40, 3)) {
    const bool Grew = Set.insert(T);
    EXPECT_FALSE(Set.insert(T)) << "second insert of " << T[0]
                                << " reported growth";
    (void)Grew;
  }
}

TEST(ArtSet, ClearResets) {
  ArtSet<2> Set;
  for (const auto &T : randomTuples<2>(300, 50, 5))
    Set.insert(T);
  Set.clear();
  EXPECT_EQ(Set.size(), 0u);
  EXPECT_EQ(Set.begin(), Set.end());
  EXPECT_TRUE(Set.insert({1, 1}));
  EXPECT_EQ(Set.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Node-type transitions
//===----------------------------------------------------------------------===//

// Tuples {0, i} for i in [0, N) share the first seven key bytes, so they
// all become children of one inner node keyed on the last byte: the node's
// kind is exactly determined by N. nodeCounts() is {N4, N16, N48, N256}.

TEST(ArtSet, GrowTransitions4To16To48To256) {
  ArtSet<2> Set;
  auto InnerKind = [&]() -> int {
    const auto Counts = Set.nodeCounts();
    EXPECT_EQ(Counts[0] + Counts[1] + Counts[2] + Counts[3], 1u)
        << "expected exactly one inner node";
    for (int K = 0; K < 4; ++K)
      if (Counts[K])
        return K;
    return -1;
  };
  for (RamDomain I = 0; I < 256; ++I) {
    Set.insert({0, I});
    if (Set.size() < 2)
      continue; // a lone tuple is a root leaf, no inner node yet
    const int Kind = InnerKind();
    if (Set.size() <= 4)
      EXPECT_EQ(Kind, 0) << "N4 expected at " << Set.size();
    else if (Set.size() <= 16)
      EXPECT_EQ(Kind, 1) << "N16 expected at " << Set.size();
    else if (Set.size() <= 48)
      EXPECT_EQ(Kind, 2) << "N48 expected at " << Set.size();
    else
      EXPECT_EQ(Kind, 3) << "N256 expected at " << Set.size();
  }
  // Every tuple must survive all three expansions.
  for (RamDomain I = 0; I < 256; ++I)
    EXPECT_TRUE(Set.contains({0, I})) << I;
}

TEST(ArtSet, ShrinkTransitionsOnErase) {
  ArtSet<2> Set;
  for (RamDomain I = 0; I < 256; ++I)
    Set.insert({0, I});
  EXPECT_EQ(Set.nodeCounts()[3], 1u) << "expected a single N256";

  // Erase from the top and check the node kind at every population
  // against the shrink ladder: N256 -> N48 at <= 37 children, N48 -> N16
  // at <= 12, N16 -> N4 at <= 3, and a lone child merges the N4 away.
  for (RamDomain I = 255; I >= 1; --I) {
    EXPECT_TRUE(Set.erase({0, I}));
    if (Set.size() < 2)
      break;
    const auto Counts = Set.nodeCounts();
    ASSERT_EQ(Counts[0] + Counts[1] + Counts[2] + Counts[3], 1u)
        << "expected exactly one inner node at " << Set.size();
    if (Set.size() <= 3)
      EXPECT_EQ(Counts[0], 1u) << "N4 expected at " << Set.size();
    else if (Set.size() <= 12)
      EXPECT_EQ(Counts[1], 1u) << "N16 expected at " << Set.size();
    else if (Set.size() <= 37)
      EXPECT_EQ(Counts[2], 1u) << "N48 expected at " << Set.size();
    else
      EXPECT_EQ(Counts[3], 1u) << "N256 expected at " << Set.size();
    // Everything not yet erased stays reachable.
    EXPECT_TRUE(Set.contains({0, 0}));
    EXPECT_TRUE(Set.contains({0, I - 1}));
  }
  // One tuple left: the tree must have collapsed to a root leaf.
  const auto Final = Set.nodeCounts();
  EXPECT_EQ(Final[0] + Final[1] + Final[2] + Final[3], 0u)
      << "single-tuple tree still holds inner nodes";
  EXPECT_EQ(Set.size(), 1u);
  EXPECT_TRUE(Set.contains({0, 0}));
}

TEST(ArtSet, GrowEraseRegrow) {
  ArtSet<1> Set;
  for (int Round = 0; Round < 3; ++Round) {
    for (RamDomain I = 0; I < 200; ++I)
      EXPECT_TRUE(Set.insert({I})) << "round " << Round << " insert " << I;
    for (RamDomain I = 0; I < 200; ++I)
      EXPECT_TRUE(Set.erase({I})) << "round " << Round << " erase " << I;
    EXPECT_TRUE(Set.empty()) << "round " << Round;
  }
}

//===----------------------------------------------------------------------===//
// Path compression
//===----------------------------------------------------------------------===//

TEST(ArtSet, PathCompressionSplitAtEveryDepth) {
  // {0, 0} and {0, D} share a prefix of 7 - k bytes depending on where D's
  // first set byte lands; inserting pairs that diverge at every possible
  // byte position exercises the split at each depth of the compressed run.
  for (int Byte = 0; Byte < 8; ++Byte) {
    ArtSet<2> Set;
    Set.insert({0, 0});
    Tuple<2> Other{0, 0};
    // Set one bit inside the target byte of the 8-byte key image.
    const int Cell = Byte / 4, Shift = 8 * (3 - (Byte % 4));
    if (Cell == 0 && Shift == 24) {
      // Flipping the top byte of column 0 crosses the sign bit; use a
      // positive value that still diverges in byte 0.
      Other[0] = std::numeric_limits<RamDomain>::max();
    } else {
      Other[Cell] = RamDomain(1) << Shift;
    }
    ASSERT_TRUE(Set.insert(Other)) << "byte " << Byte;
    EXPECT_TRUE(Set.contains({0, 0})) << "byte " << Byte;
    EXPECT_TRUE(Set.contains(Other)) << "byte " << Byte;
    EXPECT_EQ(Set.size(), 2u);
    // In-order iteration must agree with tuple comparison.
    const auto Got = drain(Set);
    ASSERT_EQ(Got.size(), 2u);
    EXPECT_LT(Got[0], Got[1]) << "byte " << Byte;
  }
}

TEST(ArtSet, PathCompressionMergeOnErase) {
  // Three keys sharing a long prefix: erasing the middle sibling must
  // collapse its branch point and re-extend the survivor's prefix; the
  // survivor stays findable both by contains and by iteration.
  ArtSet<2> Set;
  Set.insert({5, 100});
  Set.insert({5, 101});
  Set.insert({5, 200});
  ASSERT_TRUE(Set.erase({5, 101}));
  EXPECT_TRUE(Set.contains({5, 100}));
  EXPECT_TRUE(Set.contains({5, 200}));
  EXPECT_FALSE(Set.contains({5, 101}));
  EXPECT_EQ(drain(Set), (std::vector<Tuple<2>>{{5, 100}, {5, 200}}));
  ASSERT_TRUE(Set.erase({5, 200}));
  EXPECT_EQ(drain(Set), (std::vector<Tuple<2>>{{5, 100}}));
  // Re-split after the merge.
  EXPECT_TRUE(Set.insert({5, 101}));
  EXPECT_EQ(drain(Set), (std::vector<Tuple<2>>{{5, 100}, {5, 101}}));
}

TEST(ArtSet, LongSharedPrefixChains) {
  // Keys identical except for the last byte of a 16-byte image: the whole
  // leading run lives in compressed prefixes.
  ArtSet<4> Set;
  std::set<Tuple<4>> Reference;
  for (RamDomain I = 0; I < 64; ++I) {
    Set.insert({11, 22, 33, I});
    Reference.insert({11, 22, 33, I});
  }
  // And one key that diverges at the very first byte.
  Set.insert({-11, 22, 33, 0});
  Reference.insert({-11, 22, 33, 0});
  EXPECT_EQ(Set.size(), Reference.size());
  EXPECT_EQ(drain(Set),
            (std::vector<Tuple<4>>(Reference.begin(), Reference.end())));
}

//===----------------------------------------------------------------------===//
// Order contract: iteration equals TupleCompare, bounds match std::set
//===----------------------------------------------------------------------===//

template <typename ArityConstant> class ArtSetTypedTest : public ::testing::Test {};

using TestedArities =
    ::testing::Types<std::integral_constant<std::size_t, 1>,
                     std::integral_constant<std::size_t, 2>,
                     std::integral_constant<std::size_t, 3>,
                     std::integral_constant<std::size_t, 4>,
                     std::integral_constant<std::size_t, 8>>;
TYPED_TEST_SUITE(ArtSetTypedTest, TestedArities);

TYPED_TEST(ArtSetTypedTest, IterationIsSortedAndComplete) {
  constexpr std::size_t Arity = TypeParam::value;
  ArtSet<Arity> Set;
  std::set<Tuple<Arity>> Reference;
  // Negative values exercise the sign-bit flip in the key encoding.
  for (const auto &T : randomTuples<Arity>(3000, 100, 7)) {
    EXPECT_EQ(Set.insert(T), Reference.insert(T).second);
  }
  EXPECT_EQ(Set.size(), Reference.size());
  EXPECT_EQ(drain(Set), (std::vector<Tuple<Arity>>(Reference.begin(),
                                                   Reference.end())));
}

TYPED_TEST(ArtSetTypedTest, BoundsMatchStdSet) {
  constexpr std::size_t Arity = TypeParam::value;
  ArtSet<Arity> Set;
  std::set<Tuple<Arity>> Reference;
  for (const auto &T : randomTuples<Arity>(1000, 20, 11)) {
    Set.insert(T);
    Reference.insert(T);
  }
  for (const auto &Key : randomTuples<Arity>(300, 25, 12)) {
    auto RefLower = Reference.lower_bound(Key);
    auto TreeLower = Set.lowerBound(Key);
    if (RefLower == Reference.end())
      EXPECT_EQ(TreeLower, Set.end());
    else
      EXPECT_EQ(*TreeLower, *RefLower);

    auto RefUpper = Reference.upper_bound(Key);
    auto TreeUpper = Set.upperBound(Key);
    if (RefUpper == Reference.end())
      EXPECT_EQ(TreeUpper, Set.end());
    else
      EXPECT_EQ(*TreeUpper, *RefUpper);
  }
}

TYPED_TEST(ArtSetTypedTest, ExtremeValues) {
  constexpr std::size_t Arity = TypeParam::value;
  constexpr RamDomain Min = std::numeric_limits<RamDomain>::min();
  constexpr RamDomain Max = std::numeric_limits<RamDomain>::max();
  ArtSet<Arity> Set;
  std::set<Tuple<Arity>> Reference;
  for (RamDomain V : {Min, RamDomain(-1), RamDomain(0), RamDomain(1), Max}) {
    Tuple<Arity> T;
    T.fill(V);
    Set.insert(T);
    Reference.insert(T);
  }
  EXPECT_EQ(drain(Set), (std::vector<Tuple<Arity>>(Reference.begin(),
                                                   Reference.end())));
  Tuple<Arity> MinT, MaxT;
  MinT.fill(Min);
  MaxT.fill(Max);
  EXPECT_EQ(*Set.lowerBound(MinT), MinT);
  EXPECT_EQ(*Set.lowerBound(MaxT), MaxT);
  EXPECT_EQ(Set.upperBound(MaxT), Set.end());
}

//===----------------------------------------------------------------------===//
// Seeded 100k-operation fuzz against a std::set oracle
//===----------------------------------------------------------------------===//

TEST(ArtSetFuzz, HundredThousandMixedOpsMatchStdSet) {
  constexpr std::size_t Arity = 2;
  ArtSet<Arity> Set;
  std::set<Tuple<Arity>> Oracle;
  std::mt19937_64 Rng(0xa27e5eedULL);
  // A small domain keeps collisions (duplicate inserts, hitting erases,
  // non-empty ranges) frequent; an occasional wide draw exercises deep
  // splits and the sign boundary.
  auto Draw = [&]() -> RamDomain {
    if (Rng() % 16 == 0)
      return static_cast<RamDomain>(Rng());
    return static_cast<RamDomain>(Rng() % 512) - 256;
  };
  for (std::size_t Op = 0; Op < 100000; ++Op) {
    const Tuple<Arity> T{Draw(), Draw()};
    switch (Rng() % 4) {
    case 0: // insert
      ASSERT_EQ(Set.insert(T), Oracle.insert(T).second) << "op " << Op;
      break;
    case 1: // erase
      ASSERT_EQ(Set.erase(T), Oracle.erase(T) != 0) << "op " << Op;
      break;
    case 2: // lookup
      ASSERT_EQ(Set.contains(T), Oracle.count(T) != 0) << "op " << Op;
      break;
    default: { // bounded range scan
      const Tuple<Arity> Hi{T[0], std::numeric_limits<RamDomain>::max()};
      std::vector<Tuple<Arity>> Got;
      for (auto It = Set.lowerBound({T[0],
                                     std::numeric_limits<RamDomain>::min()}),
                End = Set.upperBound(Hi);
           It != End; ++It)
        Got.push_back(*It);
      std::vector<Tuple<Arity>> Want;
      for (auto It = Oracle.lower_bound(
               {T[0], std::numeric_limits<RamDomain>::min()});
           It != Oracle.end() && (*It)[0] == T[0]; ++It)
        Want.push_back(*It);
      ASSERT_EQ(Got, Want) << "op " << Op << " prefix " << T[0];
      break;
    }
    }
    ASSERT_EQ(Set.size(), Oracle.size()) << "op " << Op;
  }
  // Full final sweep: contents and order.
  EXPECT_EQ(drain(Set),
            (std::vector<Tuple<Arity>>(Oracle.begin(), Oracle.end())));
}

//===----------------------------------------------------------------------===//
// Partitioning
//===----------------------------------------------------------------------===//

TEST(ArtSetPartition, CoversExactlyOnceInOrder) {
  ArtSet<2> Set;
  std::set<Tuple<2>> Reference;
  for (const auto &T : randomTuples<2>(5000, 2000, 21)) {
    Set.insert(T);
    Reference.insert(T);
  }
  for (std::size_t MaxParts : {std::size_t(1), std::size_t(2), std::size_t(7),
                               std::size_t(16), std::size_t(64)}) {
    std::vector<Tuple<2>> Seen;
    const auto Parts = Set.partition(MaxParts);
    EXPECT_LE(Parts.size(), std::max<std::size_t>(MaxParts, 1));
    EXPECT_GE(Parts.size(), 1u);
    for (const auto &[Begin, End] : Parts)
      for (auto It = Begin; It != End; ++It)
        Seen.push_back(*It);
    EXPECT_EQ(Seen, (std::vector<Tuple<2>>(Reference.begin(),
                                           Reference.end())))
        << "MaxParts=" << MaxParts;
  }
}

TEST(ArtSetPartition, TinySets) {
  ArtSet<1> Set;
  Set.insert({3});
  auto Parts = Set.partition(8);
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(*Parts[0].first, (Tuple<1>{3}));
  Set.insert({-3});
  std::size_t Total = 0;
  for (const auto &[Begin, End] : Set.partition(8))
    for (auto It = Begin; It != End; ++It)
      ++Total;
  EXPECT_EQ(Total, 2u);
}

//===----------------------------------------------------------------------===//
// ArtIndex: iteration order equals the index Order, every permutation
// of arity <= 4
//===----------------------------------------------------------------------===//

template <std::size_t Arity> void checkAllPermutations() {
  std::vector<std::uint32_t> Perm(Arity);
  std::iota(Perm.begin(), Perm.end(), 0);
  const auto Tuples = randomTuples<Arity>(400, 9, 31 + Arity);
  do {
    interp::ArtIndex<Arity> Index{interp::Order(Perm)};
    interp::BTreeIndex<Arity> Reference{interp::Order(Perm)};
    for (const auto &T : Tuples) {
      EXPECT_EQ(Index.insert(T.data()), Reference.insert(T.data()));
    }
    ASSERT_EQ(Index.size(), Reference.size());
    // The adapters iterate encoded tuples; equal Order means equal
    // sequence, element for element.
    auto ItA = Index.begin(), EndA = Index.end();
    auto ItB = Reference.begin(), EndB = Reference.end();
    for (; ItA != EndA && ItB != EndB; ++ItA, ++ItB)
      ASSERT_EQ(*ItA, *ItB);
    EXPECT_EQ(ItA == EndA, ItB == EndB);
    // Bounded ranges agree for every prefix length.
    for (std::size_t PrefixLen = 0; PrefixLen <= Arity; ++PrefixLen) {
      for (const auto &Key : randomTuples<Arity>(40, 9, 77)) {
        Tuple<Arity> Encoded;
        interp::Order(Perm).encode(Key.data(), Encoded.data());
        auto [ABegin, AEnd] = Index.range(Encoded.data(), PrefixLen);
        auto [BBegin, BEnd] = Reference.range(Encoded.data(), PrefixLen);
        for (; ABegin != AEnd && BBegin != BEnd; ++ABegin, ++BBegin)
          ASSERT_EQ(*ABegin, *BBegin);
        ASSERT_EQ(ABegin == AEnd, BBegin == BEnd)
            << "prefix " << PrefixLen;
        EXPECT_EQ(Index.containsRange(Encoded.data(), PrefixLen),
                  Reference.containsRange(Encoded.data(), PrefixLen));
      }
    }
  } while (std::next_permutation(Perm.begin(), Perm.end()));
}

TEST(ArtIndex, OrderContractArity1) { checkAllPermutations<1>(); }
TEST(ArtIndex, OrderContractArity2) { checkAllPermutations<2>(); }
TEST(ArtIndex, OrderContractArity3) { checkAllPermutations<3>(); }
TEST(ArtIndex, OrderContractArity4) { checkAllPermutations<4>(); }

} // namespace
