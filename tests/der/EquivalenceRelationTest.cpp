//===- tests/der/EquivalenceRelationTest.cpp - Eqrel tests ---------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "der/EquivalenceRelation.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <thread>
#include <vector>

using namespace stird;

namespace {

TEST(EquivalenceRelationTest, ReflexiveOnInsert) {
  EquivalenceRelation Rel;
  EXPECT_TRUE(Rel.insert(1, 2));
  EXPECT_TRUE(Rel.contains(1, 1));
  EXPECT_TRUE(Rel.contains(2, 2));
  EXPECT_TRUE(Rel.contains(1, 2));
  EXPECT_TRUE(Rel.contains(2, 1)); // symmetry
}

TEST(EquivalenceRelationTest, TransitivityThroughUnions) {
  EquivalenceRelation Rel;
  Rel.insert(1, 2);
  Rel.insert(3, 4);
  EXPECT_FALSE(Rel.contains(1, 3));
  Rel.insert(2, 3);
  EXPECT_TRUE(Rel.contains(1, 4));
  EXPECT_TRUE(Rel.contains(4, 1));
}

TEST(EquivalenceRelationTest, SizeIsSumOfSquaredClassSizes) {
  EquivalenceRelation Rel;
  Rel.insert(1, 1);
  EXPECT_EQ(Rel.size(), 1u); // {1}: 1 pair
  Rel.insert(1, 2);
  EXPECT_EQ(Rel.size(), 4u); // {1,2}: 4 pairs
  Rel.insert(3, 4);
  EXPECT_EQ(Rel.size(), 8u); // + {3,4}: 4 pairs
  Rel.insert(2, 3);
  EXPECT_EQ(Rel.size(), 16u); // {1,2,3,4}: 16 pairs
}

TEST(EquivalenceRelationTest, InsertReturnValueTracksGrowth) {
  EquivalenceRelation Rel;
  EXPECT_TRUE(Rel.insert(1, 2));
  EXPECT_FALSE(Rel.insert(1, 2));
  EXPECT_FALSE(Rel.insert(2, 1));
  EXPECT_TRUE(Rel.insert(2, 3));
  EXPECT_FALSE(Rel.insert(1, 3)); // already implied transitively
  EXPECT_TRUE(Rel.insert(9, 9));
  EXPECT_FALSE(Rel.insert(9, 9));
}

TEST(EquivalenceRelationTest, IterationYieldsSortedClosure) {
  EquivalenceRelation Rel;
  Rel.insert(2, 1);
  Rel.insert(5, 5);
  std::vector<Tuple<2>> Pairs;
  for (auto It = Rel.begin(), End = Rel.end(); It != End; ++It)
    Pairs.push_back(*It);
  std::vector<Tuple<2>> Expected = {
      {1, 1}, {1, 2}, {2, 1}, {2, 2}, {5, 5}};
  EXPECT_EQ(Pairs, Expected);
}

TEST(EquivalenceRelationTest, MembersOfReturnsSortedClass) {
  EquivalenceRelation Rel;
  Rel.insert(7, 3);
  Rel.insert(3, 11);
  EXPECT_EQ(Rel.membersOf(7), (std::vector<RamDomain>{3, 7, 11}));
  EXPECT_EQ(Rel.membersOf(3), (std::vector<RamDomain>{3, 7, 11}));
  EXPECT_TRUE(Rel.membersOf(99).empty());
}

TEST(EquivalenceRelationTest, ContainsFirst) {
  EquivalenceRelation Rel;
  Rel.insert(1, 2);
  EXPECT_TRUE(Rel.containsFirst(1));
  EXPECT_TRUE(Rel.containsFirst(2));
  EXPECT_FALSE(Rel.containsFirst(3));
}

TEST(EquivalenceRelationTest, ClearAndSwap) {
  EquivalenceRelation A, B;
  A.insert(1, 2);
  B.insert(8, 9);
  B.insert(9, 10);
  A.swapData(B);
  EXPECT_TRUE(A.contains(8, 10));
  EXPECT_TRUE(B.contains(1, 2));
  A.clear();
  EXPECT_TRUE(A.empty());
  EXPECT_EQ(A.begin(), A.end());
  EXPECT_FALSE(A.contains(8, 10));
}

TEST(EquivalenceRelationTest, RandomUnionsMatchBruteForceClosure) {
  std::mt19937 Rng(77);
  std::uniform_int_distribution<RamDomain> Dist(0, 40);
  EquivalenceRelation Rel;
  // Brute-force reference: class label per element.
  std::map<RamDomain, int> Label;
  int NextLabel = 0;
  auto Ensure = [&](RamDomain V) {
    if (!Label.count(V))
      Label[V] = NextLabel++;
  };
  for (int I = 0; I < 500; ++I) {
    RamDomain A = Dist(Rng), B = Dist(Rng);
    Rel.insert(A, B);
    Ensure(A);
    Ensure(B);
    int From = Label[A], To = Label[B];
    if (From != To)
      for (auto &Entry : Label)
        if (Entry.second == From)
          Entry.second = To;
  }
  // Every pair agrees with the reference closure.
  std::size_t Pairs = 0;
  for (const auto &[ValueA, LabelA] : Label)
    for (const auto &[ValueB, LabelB] : Label) {
      EXPECT_EQ(Rel.contains(ValueA, ValueB), LabelA == LabelB);
      if (LabelA == LabelB)
        ++Pairs;
    }
  EXPECT_EQ(Rel.size(), Pairs);
}

TEST(EquivalenceRelationTest, MutationInvalidatesLazyListsCorrectly) {
  EquivalenceRelation Rel;
  Rel.insert(1, 2);
  EXPECT_EQ(Rel.membersOf(1).size(), 2u);
  Rel.insert(2, 3);
  EXPECT_EQ(Rel.membersOf(1).size(), 3u); // refreshed after mutation
  Rel.insert(10, 11);
  std::size_t Count = 0;
  for (auto It = Rel.begin(), End = Rel.end(); It != End; ++It)
    ++Count;
  EXPECT_EQ(Count, 9u + 4u);
}

TEST(EquivalenceRelationTest, ConcurrentReadsWithPathCompression) {
  // The parallel evaluator's read contract: once unions stop (parallel
  // sections buffer inserts until the barrier), any number of threads may
  // call contains/membersOf/iterate concurrently. findRoot's relaxed
  // path compression and the double-checked refresh are the
  // ThreadSanitizer targets here (`sanitize` ctest label).
  EquivalenceRelation Rel;
  constexpr RamDomain NumValues = 240;
  // Long chains first so the forest is deep and compression has work.
  for (RamDomain I = 0; I + 1 < NumValues; ++I)
    if (I % 8 != 7)
      Rel.insert(I, I + 1);
  const std::size_t ExpectedSize = Rel.size();
  constexpr int NumThreads = 4;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&Rel, T] {
      for (RamDomain I = 0; I < NumValues; ++I) {
        // Same-class queries from different entry points race their
        // parent-pointer updates; all must agree.
        EXPECT_TRUE(Rel.contains(I, I));
        EXPECT_EQ(Rel.contains(I, (I / 8) * 8),
                  I / 8 == ((I / 8) * 8) / 8);
        const auto Members = Rel.membersOf(I);
        EXPECT_EQ(Members.size(), 8u);
        std::size_t Count = 0;
        if (T == 0 && I == 0)
          for (auto It = Rel.begin(), End = Rel.end(); It != End; ++It)
            ++Count;
        if (T == 0 && I == 0)
          EXPECT_EQ(Count, Rel.size());
      }
    });
  for (auto &Thread : Threads)
    Thread.join();
  EXPECT_EQ(Rel.size(), ExpectedSize);
}

TEST(EquivalenceRelationTest, SortedValuesAccessor) {
  EquivalenceRelation Rel;
  Rel.insert(9, 2);
  Rel.insert(2, 4);
  Rel.insert(30, 31);
  EXPECT_EQ(Rel.sortedValues(), (std::vector<RamDomain>{2, 4, 9, 30, 31}));
  Rel.insert(1, 9);
  EXPECT_EQ(Rel.sortedValues(),
            (std::vector<RamDomain>{1, 2, 4, 9, 30, 31}));
}

TEST(EquivalenceRelationTest, NegativeValues) {
  EquivalenceRelation Rel;
  Rel.insert(-5, 5);
  EXPECT_TRUE(Rel.contains(5, -5));
  EXPECT_EQ(Rel.membersOf(5), (std::vector<RamDomain>{-5, 5}));
  auto It = Rel.begin();
  EXPECT_EQ(*It, (Tuple<2>{-5, -5}));
}

} // namespace
