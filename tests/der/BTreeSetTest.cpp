//===- tests/der/BTreeSetTest.cpp - B-tree set tests --------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "der/BTreeSet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

using namespace stird;

namespace {

/// Deterministic random tuple generator.
template <std::size_t Arity>
std::vector<Tuple<Arity>> randomTuples(std::size_t Count, RamDomain Range,
                                       unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<RamDomain> Dist(-Range, Range);
  std::vector<Tuple<Arity>> Tuples(Count);
  for (auto &Tuple : Tuples)
    for (auto &Cell : Tuple)
      Cell = Dist(Rng);
  return Tuples;
}

template <typename ArityConstant>
class BTreeSetTypedTest : public ::testing::Test {};

using TestedArities =
    ::testing::Types<std::integral_constant<std::size_t, 1>,
                     std::integral_constant<std::size_t, 2>,
                     std::integral_constant<std::size_t, 3>,
                     std::integral_constant<std::size_t, 4>,
                     std::integral_constant<std::size_t, 7>,
                     std::integral_constant<std::size_t, 16>>;
TYPED_TEST_SUITE(BTreeSetTypedTest, TestedArities);

TYPED_TEST(BTreeSetTypedTest, InsertAndContainsMatchStdSet) {
  constexpr std::size_t Arity = TypeParam::value;
  BTreeSet<Arity> Set;
  std::set<Tuple<Arity>> Reference;
  // Small value range forces duplicate inserts.
  for (const auto &Tuple : randomTuples<Arity>(2000, 5, 42)) {
    EXPECT_EQ(Set.insert(Tuple), Reference.insert(Tuple).second);
    EXPECT_EQ(Set.size(), Reference.size());
  }
  for (const auto &Tuple : randomTuples<Arity>(500, 5, 43))
    EXPECT_EQ(Set.contains(Tuple), Reference.count(Tuple) != 0);
}

TYPED_TEST(BTreeSetTypedTest, IterationIsSortedAndComplete) {
  constexpr std::size_t Arity = TypeParam::value;
  BTreeSet<Arity> Set;
  std::set<Tuple<Arity>> Reference;
  for (const auto &Tuple : randomTuples<Arity>(3000, 100, 7)) {
    Set.insert(Tuple);
    Reference.insert(Tuple);
  }
  std::vector<Tuple<Arity>> FromTree;
  for (auto It = Set.begin(), End = Set.end(); It != End; ++It)
    FromTree.push_back(*It);
  std::vector<Tuple<Arity>> FromReference(Reference.begin(),
                                          Reference.end());
  EXPECT_EQ(FromTree, FromReference);
}

TYPED_TEST(BTreeSetTypedTest, BoundsMatchStdSet) {
  constexpr std::size_t Arity = TypeParam::value;
  BTreeSet<Arity> Set;
  std::set<Tuple<Arity>> Reference;
  for (const auto &Tuple : randomTuples<Arity>(1000, 20, 11)) {
    Set.insert(Tuple);
    Reference.insert(Tuple);
  }
  for (const auto &Key : randomTuples<Arity>(300, 25, 12)) {
    auto RefLower = Reference.lower_bound(Key);
    auto TreeLower = Set.lowerBound(Key);
    if (RefLower == Reference.end())
      EXPECT_EQ(TreeLower, Set.end());
    else
      EXPECT_EQ(*TreeLower, *RefLower);

    auto RefUpper = Reference.upper_bound(Key);
    auto TreeUpper = Set.upperBound(Key);
    if (RefUpper == Reference.end())
      EXPECT_EQ(TreeUpper, Set.end());
    else
      EXPECT_EQ(*TreeUpper, *RefUpper);
  }
}

TYPED_TEST(BTreeSetTypedTest, PrefixRangeEqualsBruteForceFilter) {
  constexpr std::size_t Arity = TypeParam::value;
  BTreeSet<Arity> Set;
  std::vector<Tuple<Arity>> All = randomTuples<Arity>(1500, 8, 21);
  for (const auto &Tuple : All)
    Set.insert(Tuple);

  for (std::size_t PrefixLen = 0; PrefixLen <= Arity; ++PrefixLen) {
    for (const auto &Key : randomTuples<Arity>(40, 8, 22)) {
      Tuple<Arity> Low = Key, High = Key;
      for (std::size_t J = PrefixLen; J < Arity; ++J) {
        Low[J] = std::numeric_limits<RamDomain>::min();
        High[J] = std::numeric_limits<RamDomain>::max();
      }
      std::set<Tuple<Arity>> Expected;
      for (const auto &Tuple : All) {
        bool Match = true;
        for (std::size_t J = 0; J < PrefixLen; ++J)
          Match &= Tuple[J] == Key[J];
        if (Match)
          Expected.insert(Tuple);
      }
      std::vector<Tuple<Arity>> Got;
      for (auto It = Set.lowerBound(Low), End = Set.upperBound(High);
           It != End; ++It)
        Got.push_back(*It);
      EXPECT_EQ(Got.size(), Expected.size());
      EXPECT_TRUE(std::is_sorted(Got.begin(), Got.end()));
      for (const auto &Tuple : Got)
        EXPECT_TRUE(Expected.count(Tuple));
    }
  }
}

TYPED_TEST(BTreeSetTypedTest, ClearAndReuse) {
  constexpr std::size_t Arity = TypeParam::value;
  BTreeSet<Arity> Set;
  for (const auto &Tuple : randomTuples<Arity>(500, 50, 31))
    Set.insert(Tuple);
  EXPECT_FALSE(Set.empty());
  Set.clear();
  EXPECT_TRUE(Set.empty());
  EXPECT_EQ(Set.size(), 0u);
  EXPECT_EQ(Set.begin(), Set.end());
  Tuple<Arity> One{};
  EXPECT_TRUE(Set.insert(One));
  EXPECT_TRUE(Set.contains(One));
  EXPECT_EQ(Set.size(), 1u);
}

TYPED_TEST(BTreeSetTypedTest, SwapDataExchangesContents) {
  constexpr std::size_t Arity = TypeParam::value;
  BTreeSet<Arity> A, B;
  Tuple<Arity> TupleA{}, TupleB{};
  TupleA[0] = 1;
  TupleB[0] = 2;
  A.insert(TupleA);
  B.insert(TupleB);
  B.insert(TupleA);
  A.swapData(B);
  EXPECT_EQ(A.size(), 2u);
  EXPECT_EQ(B.size(), 1u);
  EXPECT_TRUE(A.contains(TupleB));
  EXPECT_TRUE(B.contains(TupleA));
  EXPECT_FALSE(B.contains(TupleB));
}

TYPED_TEST(BTreeSetTypedTest, MoveConstructionTransfersOwnership) {
  constexpr std::size_t Arity = TypeParam::value;
  BTreeSet<Arity> Source;
  for (const auto &Tuple : randomTuples<Arity>(200, 50, 33))
    Source.insert(Tuple);
  std::size_t Size = Source.size();
  BTreeSet<Arity> Target(std::move(Source));
  EXPECT_EQ(Target.size(), Size);
  EXPECT_EQ(Source.size(), 0u);
}

TEST(BTreeSetTest, NegativeValuesOrderCorrectly) {
  BTreeSet<1> Set;
  for (RamDomain Value : {5, -3, 0, -100, 100, -1, 1})
    Set.insert({Value});
  std::vector<RamDomain> Got;
  for (auto It = Set.begin(), End = Set.end(); It != End; ++It)
    Got.push_back((*It)[0]);
  EXPECT_EQ(Got, (std::vector<RamDomain>{-100, -3, -1, 0, 1, 5, 100}));
}

TEST(BTreeSetTest, ExtremeValues) {
  BTreeSet<2> Set;
  const RamDomain Min = std::numeric_limits<RamDomain>::min();
  const RamDomain Max = std::numeric_limits<RamDomain>::max();
  EXPECT_TRUE(Set.insert({Min, Max}));
  EXPECT_TRUE(Set.insert({Max, Min}));
  EXPECT_TRUE(Set.insert({Min, Min}));
  EXPECT_TRUE(Set.insert({Max, Max}));
  EXPECT_FALSE(Set.insert({Min, Max}));
  EXPECT_EQ(Set.size(), 4u);
  EXPECT_TRUE(Set.contains({Min, Min}));
  auto It = Set.begin();
  EXPECT_EQ(*It, (Tuple<2>{Min, Min}));
}

TEST(BTreeSetTest, SequentialInsertAscendingAndDescending) {
  BTreeSet<1> Ascending, Descending;
  const int N = 10000;
  for (int I = 0; I < N; ++I) {
    EXPECT_TRUE(Ascending.insert({I}));
    EXPECT_TRUE(Descending.insert({N - I}));
  }
  EXPECT_EQ(Ascending.size(), static_cast<std::size_t>(N));
  EXPECT_EQ(Descending.size(), static_cast<std::size_t>(N));
  RamDomain Prev = std::numeric_limits<RamDomain>::min();
  std::size_t Count = 0;
  for (auto It = Ascending.begin(), End = Ascending.end(); It != End;
       ++It) {
    EXPECT_GT((*It)[0], Prev);
    Prev = (*It)[0];
    ++Count;
  }
  EXPECT_EQ(Count, static_cast<std::size_t>(N));
}

TEST(BTreeSetRuntimeCompareTest, StoresUnderPermutedOrder) {
  // The legacy comparator: order (1, 0) over arity-2 tuples stored in
  // source order.
  static const std::uint32_t OrderArray[2] = {1, 0};
  RuntimeOrderCompare<16> Cmp;
  Cmp.Order = OrderArray;
  Cmp.Length = 2;
  BTreeSet<16, RuntimeOrderCompare<16>> Set(Cmp);

  auto MakeWide = [](RamDomain A, RamDomain B) {
    Tuple<16> Wide{};
    Wide[0] = A;
    Wide[1] = B;
    return Wide;
  };
  EXPECT_TRUE(Set.insert(MakeWide(1, 9)));
  EXPECT_TRUE(Set.insert(MakeWide(2, 3)));
  EXPECT_TRUE(Set.insert(MakeWide(3, 5)));
  // Same (second, first) key as an existing tuple: duplicate under the
  // comparator's projection of the first two columns.
  EXPECT_FALSE(Set.insert(MakeWide(2, 3)));

  // Iteration is ordered by column 1 first.
  std::vector<RamDomain> SecondColumns;
  for (auto It = Set.begin(), End = Set.end(); It != End; ++It)
    SecondColumns.push_back((*It)[1]);
  EXPECT_EQ(SecondColumns, (std::vector<RamDomain>{3, 5, 9}));
}

TEST(BTreeSetRuntimeCompareTest, RandomAgainstReferenceWithOrder) {
  static const std::uint32_t OrderArray[3] = {2, 0, 1};
  RuntimeOrderCompare<16> Cmp;
  Cmp.Order = OrderArray;
  Cmp.Length = 3;
  BTreeSet<16, RuntimeOrderCompare<16>> Set(Cmp);

  auto Project = [](const Tuple<16> &Wide) {
    return std::array<RamDomain, 3>{Wide[2], Wide[0], Wide[1]};
  };
  std::set<std::array<RamDomain, 3>> Reference;
  std::mt19937 Rng(5);
  std::uniform_int_distribution<RamDomain> Dist(-4, 4);
  for (int I = 0; I < 1000; ++I) {
    Tuple<16> Wide{};
    for (int J = 0; J < 3; ++J)
      Wide[J] = Dist(Rng);
    EXPECT_EQ(Set.insert(Wide), Reference.insert(Project(Wide)).second);
  }
  EXPECT_EQ(Set.size(), Reference.size());
}

} // namespace
