//===- tests/der/PartitionTest.cpp - Scan partitioning properties --------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Properties of the partition() APIs backing parallel scans: the
/// concatenation of the returned ranges must equal the full in-order scan
/// (which implies disjointness, since elements arrive in strictly
/// increasing order), the number of ranges never exceeds the request, and
/// the degenerate cases (empty set, MaxParts == 1, MaxParts > size)
/// behave.
///
//===----------------------------------------------------------------------===//

#include "der/BTreeSet.h"
#include "der/Brie.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

using namespace stird;

namespace {

template <std::size_t Arity>
std::vector<Tuple<Arity>> randomTuples(std::size_t Count, RamDomain Range,
                                       unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<RamDomain> Dist(-Range, Range);
  std::vector<Tuple<Arity>> Tuples(Count);
  for (auto &Tuple : Tuples)
    for (auto &Cell : Tuple)
      Cell = Dist(Rng);
  return Tuples;
}

/// Concatenates the tuples of a partition list in order.
template <typename SetT>
std::vector<typename SetT::TupleType>
concatenate(const std::vector<std::pair<typename SetT::iterator,
                                        typename SetT::iterator>> &Parts) {
  std::vector<typename SetT::TupleType> Result;
  for (const auto &[First, Last] : Parts)
    for (auto It = First; It != Last; ++It)
      Result.push_back(*It);
  return Result;
}

template <typename SetT>
std::vector<typename SetT::TupleType> fullScan(const SetT &Set) {
  std::vector<typename SetT::TupleType> Result;
  for (auto It = Set.begin(), End = Set.end(); It != End; ++It)
    Result.push_back(*It);
  return Result;
}

/// The partition contract, checked for one (set, MaxParts) combination.
template <typename SetT>
void checkPartition(const SetT &Set, std::size_t MaxParts) {
  auto Parts = Set.partition(MaxParts);
  if (Set.size() == 0) {
    EXPECT_TRUE(Parts.empty());
    return;
  }
  EXPECT_FALSE(Parts.empty());
  EXPECT_LE(Parts.size(), std::max<std::size_t>(MaxParts, 1));
  // Concatenation == full scan. The scan is strictly increasing, so
  // equality also proves no element appears in two partitions and no
  // partition overlaps another.
  EXPECT_EQ(concatenate<SetT>(Parts), fullScan(Set));
}

template <typename ArityConstant>
class PartitionTypedTest : public ::testing::Test {};

using TestedArities =
    ::testing::Types<std::integral_constant<std::size_t, 1>,
                     std::integral_constant<std::size_t, 2>,
                     std::integral_constant<std::size_t, 3>,
                     std::integral_constant<std::size_t, 4>>;
TYPED_TEST_SUITE(PartitionTypedTest, TestedArities);

TYPED_TEST(PartitionTypedTest, BTreeCoverageAndDisjointness) {
  constexpr std::size_t Arity = TypeParam::value;
  for (std::size_t Count : {0u, 1u, 2u, 7u, 100u, 5000u}) {
    BTreeSet<Arity> Set;
    for (const auto &Tuple : randomTuples<Arity>(Count, 50, 7 + Count))
      Set.insert(Tuple);
    for (std::size_t MaxParts : {1u, 2u, 3u, 4u, 8u, 64u})
      checkPartition(Set, MaxParts);
  }
}

TYPED_TEST(PartitionTypedTest, BrieCoverageAndDisjointness) {
  constexpr std::size_t Arity = TypeParam::value;
  for (std::size_t Count : {0u, 1u, 2u, 7u, 100u, 5000u}) {
    Brie<Arity> Set;
    for (const auto &Tuple : randomTuples<Arity>(Count, 50, 11 + Count))
      Set.insert(Tuple);
    for (std::size_t MaxParts : {1u, 2u, 3u, 4u, 8u, 64u})
      checkPartition(Set, MaxParts);
  }
}

TEST(PartitionTest, BTreeMorePartsThanElements) {
  BTreeSet<2> Set;
  Set.insert({1, 2});
  Set.insert({3, 4});
  auto Parts = Set.partition(16);
  EXPECT_LE(Parts.size(), 16u);
  EXPECT_EQ(concatenate<BTreeSet<2>>(Parts),
            (std::vector<Tuple<2>>{{1, 2}, {3, 4}}));
}

TEST(PartitionTest, BrieMorePartsThanElements) {
  Brie<1> Set;
  Set.insert({5});
  auto Parts = Set.partition(16);
  ASSERT_EQ(concatenate<Brie<1>>(Parts), (std::vector<Tuple<1>>{{5}}));
}

TEST(PartitionTest, BTreeSingletonAndSinglePart) {
  BTreeSet<1> Set;
  Set.insert({42});
  auto Parts = Set.partition(1);
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(concatenate<BTreeSet<1>>(Parts), (std::vector<Tuple<1>>{{42}}));
}

/// partitionRange must reproduce the [lowerBound(Low), upperBound(High))
/// enumeration for arbitrary bounds, including bounds that are absent,
/// below the minimum or above the maximum.
TEST(PartitionTest, BTreePartitionRangeMatchesBoundsScan) {
  BTreeSet<2> Set;
  std::set<Tuple<2>> Reference;
  for (const auto &Tuple : randomTuples<2>(3000, 40, 21)) {
    Set.insert(Tuple);
    Reference.insert(Tuple);
  }
  std::mt19937 Rng(22);
  std::uniform_int_distribution<RamDomain> Dist(-45, 45);
  for (int Trial = 0; Trial < 50; ++Trial) {
    Tuple<2> Low{Dist(Rng), Dist(Rng)};
    Tuple<2> High{Dist(Rng), Dist(Rng)};
    if (High < Low)
      std::swap(Low, High);
    std::vector<Tuple<2>> Expected;
    for (auto It = Reference.lower_bound(Low),
              End = Reference.upper_bound(High);
         It != End; ++It)
      Expected.push_back(*It);
    for (std::size_t MaxParts : {1u, 2u, 4u, 9u}) {
      auto Parts = Set.partitionRange(Low, High, MaxParts);
      EXPECT_EQ(concatenate<BTreeSet<2>>(Parts), Expected)
          << "MaxParts=" << MaxParts;
      if (Expected.empty())
        EXPECT_TRUE(Parts.empty());
    }
  }
}

TEST(PartitionTest, BTreeEmptySetHasNoPartitions) {
  BTreeSet<3> Set;
  EXPECT_TRUE(Set.partition(4).empty());
  EXPECT_TRUE(Set.partitionRange({0, 0, 0}, {9, 9, 9}, 4).empty());
}

TEST(PartitionTest, BrieEmptySetHasNoPartitions) {
  Brie<2> Set;
  EXPECT_TRUE(Set.partition(4).empty());
}

/// Large sequential inserts actually produce multiple partitions (the
/// split-point supply of the top two tree levels is ample).
TEST(PartitionTest, BTreeLargeSetYieldsRequestedParts) {
  BTreeSet<1> Set;
  for (RamDomain I = 0; I < 10000; ++I)
    Set.insert({I});
  for (std::size_t MaxParts : {2u, 4u, 8u}) {
    auto Parts = Set.partition(MaxParts);
    EXPECT_EQ(Parts.size(), MaxParts);
    checkPartition(Set, MaxParts);
  }
}

TEST(PartitionTest, BrieLargeSetYieldsMultipleParts) {
  Brie<2> Set;
  for (RamDomain I = 0; I < 5000; ++I)
    Set.insert({I, I * 3});
  for (std::size_t MaxParts : {2u, 4u, 8u}) {
    auto Parts = Set.partition(MaxParts);
    EXPECT_GT(Parts.size(), 1u);
    EXPECT_LE(Parts.size(), MaxParts);
    checkPartition(Set, MaxParts);
  }
}

} // namespace
