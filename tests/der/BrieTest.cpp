//===- tests/der/BrieTest.cpp - Brie trie tests --------------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "der/Brie.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

using namespace stird;

namespace {

template <std::size_t Arity>
std::vector<Tuple<Arity>> randomTuples(std::size_t Count, RamDomain Range,
                                       unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<RamDomain> Dist(-Range, Range);
  std::vector<Tuple<Arity>> Tuples(Count);
  for (auto &Tuple : Tuples)
    for (auto &Cell : Tuple)
      Cell = Dist(Rng);
  return Tuples;
}

template <typename ArityConstant> class BrieTypedTest : public ::testing::Test {
};

using TestedArities =
    ::testing::Types<std::integral_constant<std::size_t, 1>,
                     std::integral_constant<std::size_t, 2>,
                     std::integral_constant<std::size_t, 3>,
                     std::integral_constant<std::size_t, 5>,
                     std::integral_constant<std::size_t, 8>>;
TYPED_TEST_SUITE(BrieTypedTest, TestedArities);

TYPED_TEST(BrieTypedTest, InsertAndContainsMatchStdSet) {
  constexpr std::size_t Arity = TypeParam::value;
  Brie<Arity> Set;
  std::set<Tuple<Arity>> Reference;
  for (const auto &Tuple : randomTuples<Arity>(2000, 5, 101)) {
    EXPECT_EQ(Set.insert(Tuple), Reference.insert(Tuple).second);
    EXPECT_EQ(Set.size(), Reference.size());
  }
  for (const auto &Tuple : randomTuples<Arity>(500, 5, 102))
    EXPECT_EQ(Set.contains(Tuple), Reference.count(Tuple) != 0);
}

TYPED_TEST(BrieTypedTest, IterationIsSortedAndComplete) {
  constexpr std::size_t Arity = TypeParam::value;
  Brie<Arity> Set;
  std::set<Tuple<Arity>> Reference;
  for (const auto &Tuple : randomTuples<Arity>(3000, 70, 103)) {
    Set.insert(Tuple);
    Reference.insert(Tuple);
  }
  std::vector<Tuple<Arity>> FromTrie;
  for (auto It = Set.begin(), End = Set.end(); It != End; ++It)
    FromTrie.push_back(*It);
  std::vector<Tuple<Arity>> FromReference(Reference.begin(),
                                          Reference.end());
  EXPECT_EQ(FromTrie, FromReference);
}

TYPED_TEST(BrieTypedTest, PrefixRangesEqualBruteForceFilter) {
  constexpr std::size_t Arity = TypeParam::value;
  Brie<Arity> Set;
  std::vector<Tuple<Arity>> All = randomTuples<Arity>(1200, 6, 104);
  for (const auto &Tuple : All)
    Set.insert(Tuple);

  for (std::size_t PrefixLen = 0; PrefixLen <= Arity; ++PrefixLen) {
    for (const auto &Key : randomTuples<Arity>(40, 6, 105)) {
      std::set<Tuple<Arity>> Expected;
      for (const auto &Tuple : All) {
        bool Match = true;
        for (std::size_t J = 0; J < PrefixLen; ++J)
          Match &= Tuple[J] == Key[J];
        if (Match)
          Expected.insert(Tuple);
      }
      std::vector<Tuple<Arity>> Got;
      for (auto It = Set.prefixBegin(Key, PrefixLen), End = Set.end();
           It != End; ++It)
        Got.push_back(*It);
      EXPECT_TRUE(std::is_sorted(Got.begin(), Got.end()));
      ASSERT_EQ(Got.size(), Expected.size())
          << "prefix length " << PrefixLen;
      for (const auto &Tuple : Got)
        EXPECT_TRUE(Expected.count(Tuple));
      EXPECT_EQ(Set.containsPrefix(Key, PrefixLen), !Expected.empty());
    }
  }
}

TYPED_TEST(BrieTypedTest, DenseSequentialValues) {
  constexpr std::size_t Arity = TypeParam::value;
  Brie<Arity> Set;
  // Dense last column: the sweet spot of the bitmap leaves.
  for (RamDomain I = 0; I < 1000; ++I) {
    Tuple<Arity> Tuple{};
    Tuple[Arity - 1] = I;
    EXPECT_TRUE(Set.insert(Tuple));
  }
  EXPECT_EQ(Set.size(), 1000u);
  RamDomain Expected = 0;
  for (auto It = Set.begin(), End = Set.end(); It != End; ++It)
    EXPECT_EQ((*It)[Arity - 1], Expected++);
}

TYPED_TEST(BrieTypedTest, ClearAndReuse) {
  constexpr std::size_t Arity = TypeParam::value;
  Brie<Arity> Set;
  for (const auto &Tuple : randomTuples<Arity>(400, 30, 106))
    Set.insert(Tuple);
  Set.clear();
  EXPECT_TRUE(Set.empty());
  EXPECT_EQ(Set.begin(), Set.end());
  Tuple<Arity> One{};
  EXPECT_TRUE(Set.insert(One));
  EXPECT_EQ(Set.size(), 1u);
}

TYPED_TEST(BrieTypedTest, SwapDataExchangesContents) {
  constexpr std::size_t Arity = TypeParam::value;
  Brie<Arity> A, B;
  Tuple<Arity> TupleA{}, TupleB{};
  TupleA[0] = 1;
  TupleB[0] = 2;
  A.insert(TupleA);
  B.insert(TupleB);
  A.swapData(B);
  EXPECT_TRUE(A.contains(TupleB));
  EXPECT_TRUE(B.contains(TupleA));
  EXPECT_FALSE(A.contains(TupleA));
}

TEST(BrieTest, NegativeValuesIterateInSignedOrder) {
  Brie<1> Set;
  for (RamDomain Value : {63, -64, -1, 0, -65, 64, 1})
    Set.insert({Value});
  std::vector<RamDomain> Got;
  for (auto It = Set.begin(), End = Set.end(); It != End; ++It)
    Got.push_back((*It)[0]);
  EXPECT_EQ(Got, (std::vector<RamDomain>{-65, -64, -1, 0, 1, 63, 64}));
}

TEST(BrieTest, ChunkBoundaryValues) {
  Brie<1> Set;
  // Values straddling the 64-bit chunk boundaries.
  for (RamDomain Value : {0, 63, 64, 127, 128, -1, -63, -64, -128})
    EXPECT_TRUE(Set.insert({Value}));
  for (RamDomain Value : {0, 63, 64, 127, 128, -1, -63, -64, -128})
    EXPECT_TRUE(Set.contains({Value}));
  EXPECT_FALSE(Set.contains({1}));
  EXPECT_FALSE(Set.contains({-2}));
  EXPECT_EQ(Set.size(), 9u);
}

TEST(BrieTest, FullyBoundRangeYieldsExactlyOneTuple) {
  Brie<2> Set;
  Set.insert({1, 2});
  Set.insert({1, 3});
  Set.insert({2, 2});
  std::size_t Count = 0;
  for (auto It = Set.prefixBegin({1, 2}, 2), End = Set.end(); It != End;
       ++It) {
    EXPECT_EQ(*It, (Tuple<2>{1, 2}));
    ++Count;
  }
  EXPECT_EQ(Count, 1u);
  // Absent tuple: empty range.
  EXPECT_EQ(Set.prefixBegin({5, 5}, 2), Set.end());
}

} // namespace
