//===- tests/obs/ProfileSinkTest.cpp - Profile document & counters -------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Engine-level tests of the observability counters and the JSON profile
/// sink. The load-bearing contract: per-relation aggregate counters are
/// *identical* at every thread count on both the dynamic and the static
/// engines, because workers count into private blocks merged at the
/// partition barrier and thread-order-dependent quantities (index-scan
/// hits, new-insert growth) are computed on the main thread after it.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "interp/Engine.h"
#include "obs/Json.h"
#include "obs/Profile.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace stird;
using namespace stird::interp;

namespace {

constexpr const char *TcSource = R"(
.decl edge(a:number, b:number)
.decl path(a:number, b:number)
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
)";

/// Keeps the program alive for as long as the engine that references its
/// RAM and symbol table. Members destroy in reverse order: engine first.
struct TcRun {
  std::unique_ptr<core::Program> Prog;
  std::unique_ptr<Engine> E;
  Engine *operator->() const { return E.get(); }
  explicit operator bool() const { return E != nullptr; }
};

TcRun runTc(Backend TheBackend, std::size_t NumThreads,
            RamDomain ChainLength = 40) {
  TcRun Run;
  Run.Prog = core::Program::fromSource(TcSource);
  EXPECT_NE(Run.Prog, nullptr);
  if (!Run.Prog)
    return Run;
  EngineOptions Options;
  Options.TheBackend = TheBackend;
  Options.NumThreads = NumThreads;
  Run.E = Run.Prog->makeEngine(Options);
  std::vector<DynTuple> Edges;
  for (RamDomain I = 0; I < ChainLength; ++I)
    Edges.push_back({I, I + 1});
  Run.E->insertTuples("edge", Edges);
  Run.E->run();
  return Run;
}

/// Flattens the engine's stats into name → counter list for comparison.
std::map<std::string, std::vector<std::uint64_t>>
statsByName(const Engine &E) {
  std::map<std::string, std::vector<std::uint64_t>> Out;
  const obs::StatsBlock &Stats = E.getStats();
  const auto &Rels = E.getStatsRelations();
  for (std::size_t I = 0; I < Rels.size(); ++I) {
    const obs::RelationStats &RS = Stats[I];
    Out[Rels[I]->getName()] = {RS.Inserts,        RS.InsertsNew,
                               RS.Contains,       RS.Scans,
                               RS.ScanTuples,     RS.IndexScans,
                               RS.IndexScanHits,  RS.IndexScanTuples,
                               RS.Reorders,       RS.PeakSize};
  }
  return Out;
}

TEST(ProfileSinkTest, CountersReflectTheRun) {
  auto E = runTc(Backend::DynamicAdapter, 1);
  ASSERT_TRUE(E);
  auto Stats = statsByName(*E.E);
  ASSERT_TRUE(Stats.count("edge"));
  ASSERT_TRUE(Stats.count("path"));
  // 40-edge chain: path reaches 40*41/2 tuples; its counters saw that
  // growth and the semi-naive loop probed it for dedup.
  const auto &Path = Stats["path"];
  EXPECT_EQ(Path[1], 40u * 41u / 2u) << "inserts_new != final size";
  EXPECT_GE(Path[0], Path[1]) << "inserts < inserts that grew";
  EXPECT_GT(Path[2], 0u) << "no contains despite semi-naive guard";
  EXPECT_EQ(Path[9], 40u * 41u / 2u) << "peak size";
  // edge is only read: scanned by the base rule, range-searched by the
  // recursive join, never written after load.
  const auto &Edge = Stats["edge"];
  EXPECT_GT(Edge[5], 0u) << "edge index scans";
  EXPECT_GT(Edge[6], 0u) << "edge index-scan hits";
  EXPECT_GE(Edge[5], Edge[6]) << "hits cannot exceed initiations";
  EXPECT_GT(Edge[7], 0u) << "edge index-scan tuples";
  EXPECT_EQ(Edge[9], 40u) << "edge peak size";
}

/// The thread-invariance contract, on both engine families. PeakSize,
/// IndexScanHits and InsertsNew are the delicate ones: they are computed
/// from set-semantic quantities on the main thread, never per-partition.
TEST(ProfileSinkTest, CountersAreThreadCountInvariant) {
  for (Backend TheBackend :
       {Backend::StaticLambda, Backend::StaticPlain, Backend::DynamicAdapter,
        Backend::Legacy}) {
    auto Reference = runTc(TheBackend, 1);
    ASSERT_TRUE(Reference);
    auto Expected = statsByName(*Reference.E);
    for (std::size_t NumThreads : {2u, 4u}) {
      auto E = runTc(TheBackend, NumThreads);
      ASSERT_TRUE(E);
      EXPECT_EQ(statsByName(*E.E), Expected)
          << "backend " << static_cast<int>(TheBackend) << " at -j"
          << NumThreads;
    }
  }
}

TEST(ProfileSinkTest, CollectStatsOffLeavesCountersZero) {
  auto Prog = core::Program::fromSource(TcSource);
  ASSERT_NE(Prog, nullptr);
  EngineOptions Options;
  Options.CollectStats = false;
  auto E = Prog->makeEngine(Options);
  E->insertTuples("edge", {{1, 2}, {2, 3}});
  E->run();
  for (const obs::RelationStats &RS : E->getStats()) {
    EXPECT_EQ(RS.Inserts, 0u);
    EXPECT_EQ(RS.Scans, 0u);
    EXPECT_EQ(RS.IndexScans, 0u);
  }
  EXPECT_EQ(E->getTuples("path").size(), 3u);
}

/// The JSON document carries every schema-required key with the right
/// shape (docs/profile-schema.md).
TEST(ProfileSinkTest, ProfileDocumentHasSchemaShape) {
  auto E = runTc(Backend::StaticLambda, 4);
  ASSERT_TRUE(E);
  obs::ProfileContext Ctx;
  Ctx.Program = "tc.dl";
  Ctx.Backend = "sti";
  Ctx.Threads = 4;
  Ctx.TotalSeconds = 0.5;
  obs::json::Value Doc = obs::buildProfile(*E.E, Ctx);

  // Serialize and re-parse: the document the CLI writes must survive its
  // own reader.
  std::string Error;
  std::optional<obs::json::Value> Parsed =
      obs::json::parse(Doc.dump(2), &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;

  ASSERT_NE(Parsed->find("schema"), nullptr);
  EXPECT_EQ(Parsed->find("schema")->asString(), obs::ProfileSchemaVersion);
  EXPECT_EQ(Parsed->find("program")->asString(), "tc.dl");
  EXPECT_EQ(Parsed->find("backend")->asString(), "sti");
  EXPECT_EQ(Parsed->find("threads")->asUint(), 4u);
  EXPECT_GT(Parsed->find("dispatches")->asUint(), 0u);

  const obs::json::Value *Strata = Parsed->find("strata");
  ASSERT_NE(Strata, nullptr);
  ASSERT_TRUE(Strata->isArray());
  ASSERT_FALSE(Strata->asArray().empty());
  bool SawRecursiveRule = false;
  for (const obs::json::Value &Stratum : Strata->asArray()) {
    ASSERT_NE(Stratum.find("id"), nullptr);
    ASSERT_NE(Stratum.find("seconds"), nullptr);
    ASSERT_NE(Stratum.find("recursive"), nullptr);
    const obs::json::Value *Rules = Stratum.find("rules");
    ASSERT_NE(Rules, nullptr);
    for (const obs::json::Value &Rule : Rules->asArray()) {
      for (const char *Key :
           {"label", "relation", "stratum", "version", "recursive",
            "seconds", "invocations", "dispatches", "delta_tuples",
            "iterations"})
        EXPECT_NE(Rule.find(Key), nullptr) << Key;
      if (Rule.find("recursive")->asBool()) {
        SawRecursiveRule = true;
        const obs::json::Value *Iters = Rule.find("iterations");
        ASSERT_TRUE(Iters->isArray());
        // A 40-chain needs many semi-naive rounds; each carries a sample.
        EXPECT_GT(Iters->asArray().size(), 10u);
        std::uint64_t Delta = 0;
        for (const obs::json::Value &Sample : Iters->asArray()) {
          ASSERT_NE(Sample.find("seconds"), nullptr);
          ASSERT_NE(Sample.find("dispatches"), nullptr);
          ASSERT_NE(Sample.find("delta_tuples"), nullptr);
          Delta += Sample.find("delta_tuples")->asUint();
        }
        EXPECT_EQ(Delta, Rule.find("delta_tuples")->asUint())
            << "iteration deltas must sum to the rule total";
      }
    }
  }
  EXPECT_TRUE(SawRecursiveRule);

  const obs::json::Value *Relations = Parsed->find("relations");
  ASSERT_NE(Relations, nullptr);
  ASSERT_TRUE(Relations->isArray());
  bool SawPath = false;
  for (const obs::json::Value &Rel : Relations->asArray()) {
    for (const char *Key :
         {"name", "arity", "kind", "indexes", "final_size", "peak_size",
          "inserts", "inserts_new", "contains", "scans", "scan_tuples",
          "index_scans", "index_scan_hits", "index_scan_tuples", "reorders"})
      EXPECT_NE(Rel.find(Key), nullptr) << Key;
    if (Rel.find("name")->asString() == "path") {
      SawPath = true;
      EXPECT_EQ(Rel.find("final_size")->asUint(), 40u * 41u / 2u);
      EXPECT_EQ(Rel.find("arity")->asUint(), 2u);
      EXPECT_EQ(Rel.find("kind")->asString(), "btree");
    }
  }
  EXPECT_TRUE(SawPath);
}

/// The text report sorts rules by descending time, ends the rule table
/// with a totals row, and keeps the rule label last on each line.
TEST(ProfileSinkTest, TextReportIsSortedWithTotals) {
  auto E = runTc(Backend::DynamicAdapter, 1);
  ASSERT_TRUE(E);
  const std::string Report = obs::renderTextReport(*E.E);

  // Header, one line per rule, a totals row, then the relation table.
  std::vector<std::string> Lines;
  std::size_t Start = 0;
  while (Start < Report.size()) {
    std::size_t End = Report.find('\n', Start);
    if (End == std::string::npos)
      End = Report.size();
    Lines.push_back(Report.substr(Start, End - Start));
    Start = End + 1;
  }
  ASSERT_GE(Lines.size(), 4u);
  EXPECT_NE(Lines[0].find("seconds"), std::string::npos);
  EXPECT_NE(Lines[0].find("rule"), std::string::npos);

  double Prev = 1e30;
  std::size_t RuleLines = 0;
  bool SawTotal = false;
  for (std::size_t I = 1; I < Lines.size() && !Lines[I].empty(); ++I) {
    double Seconds = 0;
    if (std::sscanf(Lines[I].c_str(), "%lf", &Seconds) != 1)
      continue;
    if (Lines[I].find("  total") != std::string::npos ||
        Lines[I].rfind("total") == Lines[I].size() - 5) {
      SawTotal = true;
      break;
    }
    EXPECT_LE(Seconds, Prev) << "report not sorted by descending seconds";
    Prev = Seconds;
    ++RuleLines;
  }
  EXPECT_GE(RuleLines, 2u);
  EXPECT_TRUE(SawTotal);
  // The relation table follows after a blank line.
  EXPECT_NE(Report.find("relation"), std::string::npos);
  EXPECT_NE(Report.find("\n\n"), std::string::npos);

  // Top-N truncation notes what it dropped.
  const std::string Truncated = obs::renderTextReport(*E.E, 1);
  EXPECT_NE(Truncated.find("more rules"), std::string::npos);
}

} // namespace
