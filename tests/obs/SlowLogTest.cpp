//===- tests/obs/SlowLogTest.cpp - Slow-query log tests ------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSONL slow-query log: append-only records parse back line by line,
/// size-based rotation keeps exactly one prior generation, a disabled log
/// swallows records, and concurrent recorders interleave whole lines.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/SlowLog.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace stird;
using obs::SlowQueryLog;

namespace {

/// A unique temp path removed (with its .1 sibling) on destruction.
struct TempLog {
  std::string Path;
  TempLog() {
    Path = ::testing::TempDir() + "stird-slowlog-" +
           std::to_string(::getpid()) + "-" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".jsonl";
    std::remove(Path.c_str());
    std::remove((Path + ".1").c_str());
  }
  ~TempLog() {
    std::remove(Path.c_str());
    std::remove((Path + ".1").c_str());
  }
};

std::vector<std::string> readLines(const std::string &Path) {
  std::ifstream In(Path);
  std::vector<std::string> Lines;
  std::string Line;
  while (std::getline(In, Line))
    Lines.push_back(Line);
  return Lines;
}

obs::json::Value record(std::uint64_t Micros, const std::string &Cmd) {
  obs::json::Object O;
  O.emplace_back("command", Cmd);
  O.emplace_back("total_micros", Micros);
  return obs::json::Value(std::move(O));
}

TEST(SlowLogTest, RecordsAppendAsParseableJsonLines) {
  TempLog Tmp;
  SlowQueryLog Log;
  SlowQueryLog::Options O;
  O.Path = Tmp.Path;
  O.ThresholdMicros = 100;
  ASSERT_TRUE(Log.open(O));
  EXPECT_TRUE(Log.enabled());
  EXPECT_EQ(Log.thresholdMicros(), 100u);
  Log.record(record(150, "query"));
  Log.record(record(2500, "load"));
  EXPECT_EQ(Log.written(), 2u);

  const std::vector<std::string> Lines = readLines(Tmp.Path);
  ASSERT_EQ(Lines.size(), 2u);
  for (const std::string &Line : Lines) {
    std::optional<obs::json::Value> Doc = obs::json::parse(Line);
    ASSERT_TRUE(Doc.has_value()) << Line;
    EXPECT_NE(Doc->find("command"), nullptr);
    EXPECT_NE(Doc->find("total_micros"), nullptr);
  }
  EXPECT_EQ(*readLines(Tmp.Path)[1].c_str(), '{');
}

TEST(SlowLogTest, ReopeningAppendsToTheExistingFile) {
  TempLog Tmp;
  SlowQueryLog::Options O;
  O.Path = Tmp.Path;
  {
    SlowQueryLog Log;
    ASSERT_TRUE(Log.open(O));
    Log.record(record(1, "a"));
  }
  {
    SlowQueryLog Log;
    ASSERT_TRUE(Log.open(O));
    Log.record(record(2, "b"));
  }
  EXPECT_EQ(readLines(Tmp.Path).size(), 2u);
}

TEST(SlowLogTest, RotationKeepsOnePriorGeneration) {
  TempLog Tmp;
  SlowQueryLog Log;
  SlowQueryLog::Options O;
  O.Path = Tmp.Path;
  O.MaxBytes = 256; // a few records per generation
  ASSERT_TRUE(Log.open(O));
  for (int I = 0; I < 50; ++I)
    Log.record(record(static_cast<std::uint64_t>(1000 + I), "query"));
  EXPECT_EQ(Log.written(), 50u);

  const std::vector<std::string> Current = readLines(Tmp.Path);
  const std::vector<std::string> Rotated = readLines(Tmp.Path + ".1");
  ASSERT_FALSE(Rotated.empty()) << "rotation never happened";
  // Rotation drops older generations, so only the most recent records
  // survive across the two files — and every surviving line still parses.
  EXPECT_LT(Current.size() + Rotated.size(), 50u);
  for (const std::string &Line : Current)
    EXPECT_TRUE(obs::json::parse(Line).has_value()) << Line;
  for (const std::string &Line : Rotated)
    EXPECT_TRUE(obs::json::parse(Line).has_value()) << Line;
}

TEST(SlowLogTest, DisabledLogSwallowsRecords) {
  SlowQueryLog Log;
  EXPECT_FALSE(Log.enabled());
  Log.record(record(1, "query")); // must not crash or write anywhere
  EXPECT_EQ(Log.written(), 0u);
}

TEST(SlowLogTest, OpenFailsOnAnUnwritablePath) {
  SlowQueryLog Log;
  SlowQueryLog::Options O;
  O.Path = "/nonexistent-dir-for-stird-tests/slow.jsonl";
  EXPECT_FALSE(Log.open(O));
  EXPECT_FALSE(Log.enabled());
}

TEST(SlowLogTest, ConcurrentRecordersInterleaveWholeLines) {
  TempLog Tmp;
  SlowQueryLog Log;
  SlowQueryLog::Options O;
  O.Path = Tmp.Path;
  ASSERT_TRUE(Log.open(O));
  constexpr int NumThreads = 4, PerThread = 200;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&Log, T] {
      for (int I = 0; I < PerThread; ++I)
        Log.record(record(static_cast<std::uint64_t>(T * 1000 + I),
                          "cmd" + std::to_string(T)));
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Log.written(),
            static_cast<std::uint64_t>(NumThreads) * PerThread);
  const std::vector<std::string> Lines = readLines(Tmp.Path);
  ASSERT_EQ(Lines.size(), static_cast<std::size_t>(NumThreads) * PerThread);
  for (const std::string &Line : Lines)
    ASSERT_TRUE(obs::json::parse(Line).has_value()) << Line;
}

} // namespace
