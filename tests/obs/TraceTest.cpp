//===- tests/obs/TraceTest.cpp - Chrome trace-event output tests ---------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural tests of the Chrome trace-event sink: the emitted document
/// must parse as JSON, carry per-track thread-name metadata, keep begin/end
/// phases balanced on every track, and stamp non-decreasing timestamps —
/// the invariants chrome://tracing and Perfetto rely on. Morsel jobs record
/// into private buffers appended at the job barrier, so a -j4 run must
/// trace without racing (the suite carries the `sanitize` label for
/// ThreadSanitizer builds). Tracks are scheduler slots: under work-stealing
/// any slot 0..N may execute a morsel — including only slot 0, when the
/// submitting thread drains the whole queue before a worker wakes — so the
/// tests bound the track set rather than demand one track per worker.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "interp/Engine.h"
#include "obs/Json.h"
#include "obs/Trace.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

using namespace stird;
using namespace stird::interp;
using stird::obs::json::Value;

namespace {

constexpr const char *TcSource = R"(
.decl edge(a:number, b:number)
.decl path(a:number, b:number)
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
)";

std::string traceOf(Backend TheBackend, std::size_t NumThreads) {
  auto Prog = core::Program::fromSource(TcSource);
  EXPECT_NE(Prog, nullptr);
  if (!Prog)
    return {};
  EngineOptions Options;
  Options.TheBackend = TheBackend;
  Options.NumThreads = NumThreads;
  Options.EnableTrace = true;
  auto E = Prog->makeEngine(Options);
  std::vector<DynTuple> Edges;
  for (RamDomain I = 0; I < 64; ++I)
    Edges.push_back({I, I + 1});
  E->insertTuples("edge", Edges);
  E->run();
  const obs::TraceRecorder *Trace = E->getTrace();
  EXPECT_NE(Trace, nullptr);
  EXPECT_GT(Trace->size(), 0u);
  return Trace->toJson();
}

/// Validates the trace-format invariants and returns the set of span
/// tracks (tids of B/E events) seen.
std::set<std::uint64_t> checkTrace(const std::string &Text) {
  std::string Error;
  std::optional<Value> Doc = stird::obs::json::parse(Text, &Error);
  EXPECT_TRUE(Doc.has_value()) << Error;
  if (!Doc)
    return {};
  EXPECT_EQ(Doc->find("displayTimeUnit")->asString(), "ms");
  const Value *Events = Doc->find("traceEvents");
  EXPECT_NE(Events, nullptr);
  if (!Events || !Events->isArray())
    return {};

  std::map<std::uint64_t, int> Depth;          // open spans per track
  std::map<std::uint64_t, std::uint64_t> Last; // last ts per track
  std::set<std::uint64_t> SpanTids, NamedTids;
  bool SawProcessName = false;
  std::uint64_t PrevTs = 0;
  bool FirstTs = true;
  for (const Value &E : Events->asArray()) {
    const Value *Ph = E.find("ph");
    EXPECT_NE(Ph, nullptr) << "event without ph";
    if (!Ph)
      continue;
    const std::string Phase = Ph->asString();
    if (Phase == "M") {
      const std::string Name = E.find("name")->asString();
      if (Name == "process_name")
        SawProcessName = true;
      if (Name == "thread_name")
        NamedTids.insert(E.find("tid")->asUint());
      continue;
    }
    EXPECT_TRUE(Phase == "B" || Phase == "E") << Phase;
    if (Phase != "B" && Phase != "E")
      continue;
    const std::uint64_t Tid = E.find("tid")->asUint();
    const std::uint64_t Ts = E.find("ts")->asUint();
    SpanTids.insert(Tid);
    // Emission order is sorted by timestamp (Perfetto-friendly).
    if (!FirstTs)
      EXPECT_GE(Ts, PrevTs);
    FirstTs = false;
    PrevTs = Ts;
    if (Last.count(Tid))
      EXPECT_GE(Ts, Last[Tid]) << "track " << Tid << " went backwards";
    Last[Tid] = Ts;
    if (Phase == "B") {
      EXPECT_NE(E.find("name"), nullptr);
      ++Depth[Tid];
    } else {
      --Depth[Tid];
      EXPECT_GE(Depth[Tid], 0) << "E without B on track " << Tid;
    }
  }
  EXPECT_TRUE(SawProcessName);
  for (const auto &[Tid, D] : Depth)
    EXPECT_EQ(D, 0) << "unbalanced spans on track " << Tid;
  // Every span track has thread-name metadata.
  for (std::uint64_t Tid : SpanTids)
    EXPECT_TRUE(NamedTids.count(Tid)) << "unnamed track " << Tid;
  return SpanTids;
}

TEST(TraceTest, SequentialRunUsesOneTrack) {
  const std::string Text = traceOf(Backend::DynamicAdapter, 1);
  ASSERT_FALSE(Text.empty());
  std::set<std::uint64_t> Tids = checkTrace(Text);
  EXPECT_EQ(Tids, std::set<std::uint64_t>{0});
  // The top-level phases and the rule spans land on the main track.
  EXPECT_NE(Text.find("\"generate tree\""), std::string::npos);
  EXPECT_NE(Text.find("\"execute\""), std::string::npos);
  EXPECT_NE(Text.find("path(x, z) :- path(x, y), edge(y, z)."),
            std::string::npos);
}

TEST(TraceTest, ParallelRunTracksAreSchedulerSlots) {
  for (Backend TheBackend :
       {Backend::DynamicAdapter, Backend::StaticLambda}) {
    const std::string Text = traceOf(TheBackend, 4);
    ASSERT_FALSE(Text.empty());
    std::set<std::uint64_t> Tids = checkTrace(Text);
    EXPECT_TRUE(Tids.count(0)) << "no main track";
    // Morsel spans land on the slot that executed (or stole) the morsel:
    // any of slots 0..4 at -j4, never beyond. On a loaded machine the
    // submitting thread may drain every morsel itself, so a single track
    // is legal — which tracks appear is the one trace property that is
    // not thread-count-invariant.
    for (std::uint64_t Tid : Tids)
      EXPECT_LE(Tid, 4u);
    // Morsel spans carry the morsel's tuple count; barrier spans mark
    // where buffered inserts and counters merge.
    EXPECT_NE(Text.find("\"tuples\":"), std::string::npos);
    EXPECT_NE(Text.find("\"merge "), std::string::npos);
  }
}

TEST(TraceTest, TraceOffByDefault) {
  auto Prog = core::Program::fromSource(TcSource);
  ASSERT_NE(Prog, nullptr);
  auto E = Prog->makeEngine();
  E->insertTuples("edge", {{1, 2}});
  E->run();
  EXPECT_EQ(E->getTrace(), nullptr);
}

} // namespace
