//===- tests/obs/StatsInvarianceTest.cpp - Counter thread-invariance -----------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observability attribution under work-stealing: morsel and rule jobs
/// record into job-private StatsBlocks and delta samples that merge at the
/// job barrier, so every counter total must be identical no matter how many
/// threads ran or which thread executed (or stole) which morsel. The tests
/// run a skewed transitive closure — a hub vertex owning most edges, the
/// shape that maximizes stealing — at -j1 and -j8 (morsel size 1, so a
/// -j8 run really cuts hundreds of morsels) and demand equality of every
/// RelationStats field and every per-rule profile total on both executors.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "interp/Engine.h"
#include "obs/Stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace stird;
using namespace stird::interp;

namespace {

/// Skewed TC plus an independent same-stratum relation: `near` reads only
/// edge, so the generator may group its rule with path's as concurrent
/// jobs — covering the rule-job merge path as well as the morsel one.
constexpr const char *SkewedTcSource = R"(
.decl edge(a:number, b:number)
.decl path(a:number, b:number)
.decl near(a:number, b:number)
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
near(x, z) :- edge(x, y), edge(y, z).
)";

/// A finished run. The program must outlive the engine (the engine
/// references its RAM relations), so both ride together.
struct TcRun {
  std::unique_ptr<core::Program> Prog;
  std::unique_ptr<Engine> E;
};

TcRun runSkewedTc(Backend TheBackend, std::size_t NumThreads) {
  TcRun R;
  R.Prog = core::Program::fromSource(SkewedTcSource);
  EXPECT_NE(R.Prog, nullptr);
  if (!R.Prog)
    return R;
  EngineOptions Options;
  Options.TheBackend = TheBackend;
  Options.NumThreads = NumThreads;
  Options.MorselSize = 1; // maximize morsel count and steal opportunities
  Options.EchoPrintSize = false;
  R.E = R.Prog->makeEngine(Options);
  std::vector<DynTuple> Edges;
  for (RamDomain I = 1; I <= 90; ++I)
    Edges.push_back({0, I}); // the hub owns ~90% of the edges
  for (RamDomain I = 1; I <= 10; ++I)
    Edges.push_back({I, I + 1});
  R.E->insertTuples("edge", Edges);
  R.E->run();
  return R;
}

/// Relation name -> counters, so the comparison is independent of StatsId
/// assignment order.
std::map<std::string, obs::RelationStats> statsByName(const Engine &E) {
  std::map<std::string, obs::RelationStats> Out;
  const obs::StatsBlock &Stats = E.getStats();
  const auto &Rels = E.getStatsRelations();
  for (std::size_t I = 0; I < Rels.size() && I < Stats.size(); ++I)
    Out[Rels[I]->getName()] = Stats[I];
  return Out;
}

void expectEqualStats(const std::string &Rel, const obs::RelationStats &A,
                      const obs::RelationStats &B) {
  EXPECT_EQ(A.Inserts, B.Inserts) << Rel;
  EXPECT_EQ(A.InsertsNew, B.InsertsNew) << Rel;
  EXPECT_EQ(A.Contains, B.Contains) << Rel;
  EXPECT_EQ(A.Scans, B.Scans) << Rel;
  EXPECT_EQ(A.ScanTuples, B.ScanTuples) << Rel;
  EXPECT_EQ(A.IndexScans, B.IndexScans) << Rel;
  EXPECT_EQ(A.IndexScanHits, B.IndexScanHits) << Rel;
  EXPECT_EQ(A.IndexScanTuples, B.IndexScanTuples) << Rel;
  EXPECT_EQ(A.Reorders, B.Reorders) << Rel;
  EXPECT_EQ(A.PeakSize, B.PeakSize) << Rel;
  // v2 access-pattern counters: classified once per search initiation on
  // the issuing thread, so they are exactly thread-count-invariant even
  // though the scans themselves fan out across morsels.
  EXPECT_EQ(A.PointLookups, B.PointLookups) << Rel;
  EXPECT_EQ(A.RangeScans, B.RangeScans) << Rel;
}

TEST(StatsInvarianceTest, CountersMatchAcrossThreadCounts) {
  for (Backend TheBackend :
       {Backend::DynamicAdapter, Backend::StaticLambda}) {
    const TcRun Seq = runSkewedTc(TheBackend, 1);
    const TcRun Par = runSkewedTc(TheBackend, 8);
    ASSERT_NE(Seq.E, nullptr);
    ASSERT_NE(Par.E, nullptr);
    const Engine &Sequential = *Seq.E;
    const Engine &Parallel = *Par.E;

    // Same answers first — counter equality over diverged relations would
    // be meaningless.
    for (const char *Rel : {"path", "near"}) {
      std::vector<DynTuple> A = Sequential.getTuples(Rel);
      std::vector<DynTuple> B = Parallel.getTuples(Rel);
      std::sort(A.begin(), A.end());
      std::sort(B.begin(), B.end());
      EXPECT_EQ(A, B) << Rel;
    }

    const auto SeqStats = statsByName(Sequential);
    const auto ParStats = statsByName(Parallel);
    ASSERT_EQ(SeqStats.size(), ParStats.size());
    for (const auto &[Rel, A] : SeqStats) {
      ASSERT_TRUE(ParStats.count(Rel)) << Rel;
      expectEqualStats(Rel, A, ParStats.at(Rel));
    }
    // The workload actually exercised the counters being compared. The
    // recursive rule probes path with a bounded prefix (range scans) and
    // the counters never exceed the searches that initiated them.
    EXPECT_GT(SeqStats.at("path").InsertsNew, 100u);
    EXPECT_GT(SeqStats.at("near").InsertsNew, 0u);
    EXPECT_GT(SeqStats.at("edge").RangeScans, 0u);
    for (const auto &[Rel, A] : SeqStats)
      EXPECT_LE(A.PointLookups + A.RangeScans, A.IndexScans + A.Contains)
          << Rel;
  }
}

TEST(StatsInvarianceTest, RuleProfilesMatchAcrossThreadCounts) {
  for (Backend TheBackend :
       {Backend::DynamicAdapter, Backend::StaticLambda}) {
    const TcRun SeqRun = runSkewedTc(TheBackend, 1);
    const TcRun ParRun = runSkewedTc(TheBackend, 8);
    ASSERT_NE(SeqRun.E, nullptr);
    ASSERT_NE(ParRun.E, nullptr);

    const auto SeqRules = SeqRun.E->getProfiler().rules();
    ASSERT_FALSE(SeqRules.empty());
    for (const RuleProfile &Seq : SeqRules) {
      const std::optional<RuleProfile> Par =
          ParRun.E->getProfiler().find(Seq.Label);
      ASSERT_TRUE(Par.has_value()) << Seq.Label;
      // Delta samples merge to the same totals regardless of which thread
      // produced which tuples; wall time is the one legitimate variance.
      EXPECT_EQ(Seq.Invocations, Par->Invocations) << Seq.Label;
      EXPECT_EQ(Seq.DeltaTuples, Par->DeltaTuples) << Seq.Label;
      EXPECT_EQ(Seq.Iterations.size(), Par->Iterations.size()) << Seq.Label;
      for (std::size_t I = 0; I < Seq.Iterations.size() &&
                              I < Par->Iterations.size();
           ++I)
        EXPECT_EQ(Seq.Iterations[I].DeltaTuples,
                  Par->Iterations[I].DeltaTuples)
            << Seq.Label << " iteration " << I;
    }
  }
}

} // namespace
