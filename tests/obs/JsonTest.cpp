//===- tests/obs/JsonTest.cpp - JSON value/writer/parser tests -----------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the dependency-free JSON library behind the observability
/// sinks: construction, deterministic order-preserving emission, string
/// escaping, and parse round-trips including malformed-input diagnostics.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <gtest/gtest.h>

using namespace stird::obs::json;

namespace {

TEST(JsonTest, DumpScalars) {
  EXPECT_EQ(Value().dump(), "null");
  EXPECT_EQ(Value(nullptr).dump(), "null");
  EXPECT_EQ(Value(true).dump(), "true");
  EXPECT_EQ(Value(false).dump(), "false");
  EXPECT_EQ(Value(42).dump(), "42");
  EXPECT_EQ(Value(std::uint64_t(0)).dump(), "0");
  EXPECT_EQ(Value("hi").dump(), "\"hi\"");
}

TEST(JsonTest, IntegralNumbersDumpWithoutExponent) {
  // Counter values must stay readable (and parseable by the checker
  // script) — no 1e+06 notation for integers that fit a double exactly.
  EXPECT_EQ(Value(std::uint64_t(1000000)).dump(), "1000000");
  EXPECT_EQ(Value(std::int64_t(-25)).dump(), "-25");
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  Object O;
  O.emplace_back("zebra", Value(1));
  O.emplace_back("apple", Value(2));
  O.emplace_back("mango", Value(3));
  EXPECT_EQ(Value(std::move(O)).dump(),
            "{\"zebra\":1,\"apple\":2,\"mango\":3}");
}

TEST(JsonTest, EscapeControlCharactersAndQuotes) {
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(Value(std::string("\x01")).dump(), "\"\\u0001\"");
}

TEST(JsonTest, PrettyPrintIndents) {
  Object O;
  O.emplace_back("k", Value(Array{Value(1), Value(2)}));
  const std::string Dumped = Value(std::move(O)).dump(2);
  EXPECT_NE(Dumped.find("{\n  \"k\": [\n"), std::string::npos);
  EXPECT_EQ(Dumped.find("\t"), std::string::npos);
}

TEST(JsonTest, ParseRoundTrip) {
  const std::string Text =
      R"({"schema":"v1","n":3,"neg":-2.5,"ok":true,"none":null,)"
      R"("list":[1,"two",{"three":3}]})";
  std::optional<Value> Doc = parse(Text);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("schema")->asString(), "v1");
  EXPECT_EQ(Doc->find("n")->asUint(), 3u);
  EXPECT_DOUBLE_EQ(Doc->find("neg")->asNumber(), -2.5);
  EXPECT_TRUE(Doc->find("ok")->asBool());
  EXPECT_TRUE(Doc->find("none")->isNull());
  const Array &List = Doc->find("list")->asArray();
  ASSERT_EQ(List.size(), 3u);
  EXPECT_EQ(List[1].asString(), "two");
  EXPECT_EQ(List[2].find("three")->asUint(), 3u);
  // Re-emitting the parsed document reproduces the input byte-for-byte
  // (orders are preserved, numbers stay canonical).
  EXPECT_EQ(Doc->dump(), Text);
}

TEST(JsonTest, ParseEscapes) {
  std::optional<Value> Doc = parse(R"(["a\"b\\c\n\t\u0041"])");
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->asArray()[0].asString(), "a\"b\\c\n\tA");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  for (const char *Bad :
       {"", "{", "[1,]", "{\"k\":}", "nul", "\"open", "{\"a\" 1}",
        "[1] trailing"}) {
    std::string Error;
    EXPECT_FALSE(parse(Bad, &Error).has_value()) << Bad;
    EXPECT_FALSE(Error.empty()) << Bad;
  }
}

TEST(JsonTest, ErrorsCarryByteOffsets) {
  std::string Error;
  EXPECT_FALSE(parse("[1, 2, x]", &Error).has_value());
  EXPECT_NE(Error.find("7"), std::string::npos) << Error;
}

TEST(JsonTest, FindOnNonObjectIsNull) {
  EXPECT_EQ(Value(5).find("k"), nullptr);
  EXPECT_EQ(Value(Array{}).find("k"), nullptr);
  Object O;
  O.emplace_back("present", Value(1));
  Value V(std::move(O));
  EXPECT_NE(V.find("present"), nullptr);
  EXPECT_EQ(V.find("absent"), nullptr);
}

} // namespace
