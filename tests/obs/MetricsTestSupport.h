//===- tests/obs/MetricsTestSupport.h - Exposition validator ----*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Prometheus text-exposition validator shared by the obs-level writer
/// tests and the srv-level endpoint tests: checks HELP/TYPE grouping,
/// sample syntax, non-negative counters, and cumulative ascending
/// histogram buckets closed by +Inf. Returns "" when the document is
/// well-formed, else a one-line diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_TESTS_OBS_METRICSTESTSUPPORT_H
#define STIRD_TESTS_OBS_METRICSTESTSUPPORT_H

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <utility>

namespace stird::obs::prom {

inline std::string validatePrometheusText(const std::string &Text) {
  std::istringstream In(Text);
  std::string Line;
  std::map<std::string, std::string> TypeOf; // family -> declared type
  std::string CurrentFamily;
  // Per histogram series (family + labels sans le): last le threshold and
  // cumulative count.
  std::map<std::string, std::pair<double, double>> HistState;
  std::size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    const std::string Where = " (line " + std::to_string(LineNo) + ")";
    if (Line.empty())
      continue;
    if (Line.rfind("# HELP ", 0) == 0)
      continue;
    if (Line.rfind("# TYPE ", 0) == 0) {
      std::istringstream Fields(Line.substr(7));
      std::string Family, Type;
      Fields >> Family >> Type;
      if (Family.empty() || Type.empty())
        return "malformed TYPE line" + Where;
      if (Type != "counter" && Type != "gauge" && Type != "histogram")
        return "unknown type '" + Type + "'" + Where;
      if (TypeOf.count(Family))
        return "family '" + Family + "' declared twice" + Where;
      TypeOf[Family] = Type;
      CurrentFamily = Family;
      continue;
    }
    if (Line[0] == '#')
      return "unexpected comment" + Where;

    // A sample: name{labels} value | name value.
    const std::size_t Brace = Line.find('{');
    const std::size_t Space = Line.find(' ');
    if (Space == std::string::npos)
      return "sample without a value" + Where;
    const std::string Name = Line.substr(
        0, Brace == std::string::npos ? Space : std::min(Brace, Space));
    if (Name.empty())
      return "empty metric name" + Where;
    // _bucket/_sum/_count samples belong to their histogram family.
    std::string Family = Name;
    for (const char *Suffix : {"_bucket", "_sum", "_count"}) {
      const std::string S(Suffix);
      if (Family.size() > S.size() &&
          Family.compare(Family.size() - S.size(), S.size(), S) == 0) {
        const std::string Base = Family.substr(0, Family.size() - S.size());
        if (TypeOf.count(Base) && TypeOf[Base] == "histogram") {
          Family = Base;
          break;
        }
      }
    }
    if (!TypeOf.count(Family))
      return "sample '" + Name + "' has no TYPE header" + Where;
    if (Family != CurrentFamily)
      return "sample '" + Name + "' is outside its family group" + Where;

    const std::string ValueText = Line.substr(Line.rfind(' ') + 1);
    char *End = nullptr;
    const double Value = std::strtod(ValueText.c_str(), &End);
    if (End == ValueText.c_str() || *End != '\0')
      return "unparseable value '" + ValueText + "'" + Where;
    if ((TypeOf[Family] == "counter" || TypeOf[Family] == "histogram") &&
        Value < 0)
      return "negative counter sample" + Where;

    // Histogram bucket discipline: per series, le thresholds ascend and
    // cumulative counts are monotone, closing with +Inf.
    if (TypeOf[Family] == "histogram" && Name == Family + "_bucket") {
      if (Brace == std::string::npos)
        return "bucket sample without labels" + Where;
      const std::size_t LePos = Line.find("le=\"");
      if (LePos == std::string::npos)
        return "bucket sample without le" + Where;
      const std::size_t LeEnd = Line.find('"', LePos + 4);
      const std::string LeText = Line.substr(LePos + 4, LeEnd - LePos - 4);
      // Key the series by everything up to the le label.
      const std::string SeriesKey = Name + Line.substr(Brace, LePos - Brace);
      const double Le = LeText == "+Inf"
                            ? std::numeric_limits<double>::infinity()
                            : std::strtod(LeText.c_str(), nullptr);
      auto It = HistState.find(SeriesKey);
      if (It != HistState.end()) {
        if (Le <= It->second.first)
          return "bucket thresholds not ascending" + Where;
        if (Value < It->second.second)
          return "bucket counts not cumulative" + Where;
      }
      HistState[SeriesKey] = {Le, Value};
    }
  }
  for (const auto &[SeriesKey, State] : HistState)
    if (State.first != std::numeric_limits<double>::infinity())
      return "histogram series '" + SeriesKey + "' never closed with +Inf";
  return "";
}

} // namespace stird::obs::prom

#endif // STIRD_TESTS_OBS_METRICSTESTSUPPORT_H
