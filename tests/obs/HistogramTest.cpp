//===- tests/obs/HistogramTest.cpp - Log-bucketed histogram tests --------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving histograms: bucket geometry invariants, quantiles against a
/// sorted-vector oracle on random workloads, merge laws (a merged
/// histogram must be indistinguishable from one fed the union of the
/// samples), concurrent lock-free recording, the per-command aggregator,
/// and the LatencySummary mean staying a double.
///
//===----------------------------------------------------------------------===//

#include "obs/Histogram.h"
#include "obs/Serve.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

using namespace stird;
using obs::AtomicHistogram;
using obs::Histogram;
using obs::HistogramBuckets;
using obs::LatencyAggregator;
using obs::ShardedHistogram;

namespace {

TEST(HistogramBucketsTest, EveryValueLandsInsideItsBucket) {
  std::mt19937_64 Rng(7);
  std::vector<std::uint64_t> Values = {0, 1, 31, 32, 33, 63, 64, 1000,
                                       HistogramBuckets::MaxValue};
  for (int I = 0; I < 10000; ++I)
    Values.push_back(Rng() % HistogramBuckets::MaxValue);
  for (std::uint64_t V : Values) {
    const std::size_t I = HistogramBuckets::index(V);
    ASSERT_LT(I, HistogramBuckets::NumBuckets);
    EXPECT_LE(HistogramBuckets::lowerBound(I), V) << "value " << V;
    EXPECT_GE(HistogramBuckets::upperBound(I), V) << "value " << V;
  }
}

TEST(HistogramBucketsTest, BucketsTileTheRangeWithoutGaps) {
  // Consecutive buckets must be adjacent: no value can fall between the
  // upper bound of one bucket and the lower bound of the next.
  for (std::size_t I = 0; I + 1 < HistogramBuckets::NumBuckets; ++I)
    ASSERT_EQ(HistogramBuckets::upperBound(I) + 1,
              HistogramBuckets::lowerBound(I + 1))
        << "gap after bucket " << I;
  EXPECT_EQ(HistogramBuckets::lowerBound(0), 0u);
  EXPECT_GE(HistogramBuckets::upperBound(HistogramBuckets::NumBuckets - 1),
            HistogramBuckets::MaxValue);
}

TEST(HistogramBucketsTest, IndexIsMonotoneInTheValue) {
  std::mt19937_64 Rng(11);
  for (int I = 0; I < 5000; ++I) {
    const std::uint64_t A = Rng() % HistogramBuckets::MaxValue;
    const std::uint64_t B = Rng() % HistogramBuckets::MaxValue;
    if (A <= B)
      EXPECT_LE(HistogramBuckets::index(A), HistogramBuckets::index(B));
    else
      EXPECT_GE(HistogramBuckets::index(A), HistogramBuckets::index(B));
  }
}

TEST(HistogramBucketsTest, RelativeErrorIsBoundedBySubBucketWidth) {
  // A bucket's width relative to its lower bound never exceeds
  // 1/SubBucketCount, the histogram's advertised resolution.
  for (std::size_t I = HistogramBuckets::SubBucketCount;
       I < HistogramBuckets::NumBuckets; ++I) {
    const double Lower =
        static_cast<double>(HistogramBuckets::lowerBound(I));
    const double Width = static_cast<double>(
        HistogramBuckets::upperBound(I) - HistogramBuckets::lowerBound(I));
    EXPECT_LE(Width / Lower,
              1.0 / static_cast<double>(HistogramBuckets::SubBucketCount))
        << "bucket " << I;
  }
}

/// Nearest-rank quantile on a sorted vector — the oracle the histogram is
/// checked against.
std::uint64_t oracleQuantile(std::vector<std::uint64_t> Sorted, double Q) {
  std::sort(Sorted.begin(), Sorted.end());
  std::size_t Rank = static_cast<std::size_t>(
      std::ceil(Q * static_cast<double>(Sorted.size())));
  if (Rank == 0)
    Rank = 1;
  return Sorted[Rank - 1];
}

void expectQuantileWithinBucket(const Histogram &H,
                                const std::vector<std::uint64_t> &Values,
                                double Q) {
  const std::uint64_t Oracle = oracleQuantile(Values, Q);
  const std::uint64_t Got = H.quantile(Q);
  // The histogram reports the inclusive upper bound of the oracle's
  // bucket (tightened by the exact max), so the report is never below the
  // true value and never beyond its bucket.
  EXPECT_GE(Got, Oracle) << "q=" << Q;
  EXPECT_LE(Got, HistogramBuckets::upperBound(
                     HistogramBuckets::index(Oracle)))
      << "q=" << Q;
}

TEST(HistogramTest, QuantilesMatchSortedOracleOnRandomWorkloads) {
  const double Quantiles[] = {0.5, 0.9, 0.99, 0.999, 1.0};
  std::mt19937_64 Rng(23);
  for (int Workload = 0; Workload < 8; ++Workload) {
    Histogram H;
    std::vector<std::uint64_t> Values;
    const int N = 100 + static_cast<int>(Rng() % 5000);
    for (int I = 0; I < N; ++I) {
      // Mix uniform with a long lognormal-ish tail, the shape of real
      // latency distributions.
      std::uint64_t V = Rng() % 1000;
      if (Rng() % 10 == 0)
        V = 1000 + Rng() % 1000000;
      Values.push_back(V);
      H.record(V);
    }
    ASSERT_EQ(H.count(), Values.size());
    for (double Q : Quantiles)
      expectQuantileWithinBucket(H, Values, Q);
  }
}

TEST(HistogramTest, ExactExtremesTightenTheTailQuantiles) {
  Histogram H;
  H.record(100);
  H.record(1000000);
  // With two samples, p999 is the max sample; the exact max must be
  // reported, not its bucket's (larger) upper bound.
  EXPECT_EQ(H.quantile(0.999), 1000000u);
  EXPECT_EQ(H.quantile(0.0), 100u);
  EXPECT_EQ(H.min(), 100u);
  EXPECT_EQ(H.max(), 1000000u);
}

TEST(HistogramTest, EmptyHistogramIsAllZeros) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.quantile(0.5), 0u);
  EXPECT_EQ(H.mean(), 0.0);
}

void expectSameHistogram(const Histogram &A, const Histogram &B) {
  ASSERT_EQ(A.count(), B.count());
  ASSERT_EQ(A.sum(), B.sum());
  ASSERT_EQ(A.min(), B.min());
  ASSERT_EQ(A.max(), B.max());
  for (std::size_t I = 0; I < HistogramBuckets::NumBuckets; ++I)
    ASSERT_EQ(A.bucketCount(I), B.bucketCount(I)) << "bucket " << I;
}

TEST(HistogramTest, MergeIsAssociativeCommutativeAndUnionEquivalent) {
  std::mt19937_64 Rng(42);
  Histogram Parts[3];
  Histogram Union;
  for (int P = 0; P < 3; ++P)
    for (int I = 0; I < 500; ++I) {
      const std::uint64_t V = Rng() % 100000;
      Parts[P].record(V);
      Union.record(V);
    }

  Histogram LeftFold; // (A + B) + C
  LeftFold.merge(Parts[0]);
  LeftFold.merge(Parts[1]);
  LeftFold.merge(Parts[2]);
  Histogram RightFold; // C + (B + A)
  Histogram BA;
  BA.merge(Parts[1]);
  BA.merge(Parts[0]);
  RightFold.merge(Parts[2]);
  RightFold.merge(BA);

  expectSameHistogram(LeftFold, Union);
  expectSameHistogram(RightFold, Union);
  EXPECT_EQ(LeftFold.quantile(0.99), Union.quantile(0.99));
}

TEST(HistogramTest, JsonCarriesSummaryAndQuantileKeys) {
  Histogram H;
  for (std::uint64_t V : {10u, 20u, 30u})
    H.record(V);
  const obs::json::Value J = H.toJson();
  EXPECT_EQ(J.find("count")->asNumber(), 3);
  EXPECT_EQ(J.find("total_micros")->asNumber(), 60);
  EXPECT_EQ(J.find("min_micros")->asNumber(), 10);
  EXPECT_EQ(J.find("max_micros")->asNumber(), 30);
  EXPECT_DOUBLE_EQ(J.find("mean_micros")->asNumber(), 20.0);
  EXPECT_NE(J.find("p50_micros"), nullptr);
  EXPECT_NE(J.find("p90_micros"), nullptr);
  EXPECT_NE(J.find("p99_micros"), nullptr);
  EXPECT_NE(J.find("p999_micros"), nullptr);
}

TEST(AtomicHistogramTest, ConcurrentRecordsLoseNothing) {
  AtomicHistogram H;
  constexpr int NumThreads = 8;
  constexpr int PerThread = 20000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&H, T] {
      std::mt19937_64 Rng(100 + T);
      for (int I = 0; I < PerThread; ++I)
        H.record(Rng() % 50000);
    });
  for (std::thread &T : Threads)
    T.join();
  Histogram Merged;
  H.mergeInto(Merged);
  EXPECT_EQ(Merged.count(),
            static_cast<std::uint64_t>(NumThreads) * PerThread);
  std::uint64_t BucketTotal = 0;
  for (std::size_t I = 0; I < HistogramBuckets::NumBuckets; ++I)
    BucketTotal += Merged.bucketCount(I);
  EXPECT_EQ(BucketTotal, Merged.count());
  EXPECT_LT(Merged.max(), 50000u);
}

TEST(ShardedHistogramTest, MergedViewEqualsSingleWriterResult) {
  ShardedHistogram Sharded;
  Histogram Reference;
  constexpr int NumThreads = 6;
  constexpr int PerThread = 5000;
  std::vector<std::vector<std::uint64_t>> PerThreadValues(NumThreads);
  for (int T = 0; T < NumThreads; ++T) {
    std::mt19937_64 Rng(7 * T + 1);
    for (int I = 0; I < PerThread; ++I)
      PerThreadValues[T].push_back(Rng() % 200000);
  }
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&Sharded, &Values = PerThreadValues[T]] {
      for (std::uint64_t V : Values)
        Sharded.record(V);
    });
  for (std::thread &T : Threads)
    T.join();
  for (const auto &Values : PerThreadValues)
    for (std::uint64_t V : Values)
      Reference.record(V);
  expectSameHistogram(Sharded.merged(), Reference);
}

TEST(LatencyAggregatorTest, ConcurrentCommandsAggregateExactly) {
  LatencyAggregator Agg;
  constexpr int NumThreads = 8;
  constexpr int PerThread = 10000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&Agg, T] {
      const std::string Command = (T % 2 == 0) ? "query" : "load";
      for (int I = 0; I < PerThread; ++I)
        Agg.record(Command, static_cast<std::uint64_t>(I % 1000));
    });
  for (std::thread &T : Threads)
    T.join();
  const Histogram Query = Agg.merged("query");
  const Histogram Load = Agg.merged("load");
  EXPECT_EQ(Query.count(),
            static_cast<std::uint64_t>(NumThreads / 2) * PerThread);
  EXPECT_EQ(Load.count(),
            static_cast<std::uint64_t>(NumThreads / 2) * PerThread);
  EXPECT_EQ(Query.max(), 999u);
  EXPECT_EQ(Agg.merged("never-seen").count(), 0u);
}

TEST(LatencyAggregatorTest, OverflowCommandsFoldIntoOther) {
  LatencyAggregator Agg;
  // Far more distinct names than table slots: the excess must fold into
  // the shared "(other)" entry instead of being dropped.
  for (int I = 0; I < 40; ++I)
    Agg.record("cmd" + std::to_string(I), 5);
  const auto Snapshot = Agg.snapshot();
  ASSERT_EQ(Snapshot.size(), LatencyAggregator::MaxCommands);
  EXPECT_EQ(Snapshot.back().first, "(other)");
  std::uint64_t Total = 0;
  for (const auto &[Name, Hist] : Snapshot)
    Total += Hist.count();
  EXPECT_EQ(Total, 40u);
}

TEST(LatencySummaryTest, MeanStaysADoubleUnderTruncatingInputs) {
  obs::LatencySummary S;
  S.record(3);
  S.record(3);
  S.record(4);
  const obs::json::Value J = S.toJson();
  // 10/3 truncated would read 3; the schema promises the exact double.
  EXPECT_DOUBLE_EQ(J.find("mean_micros")->asNumber(), 10.0 / 3.0);
  EXPECT_EQ(J.find("count")->asNumber(), 3);
  EXPECT_EQ(J.find("total_micros")->asNumber(), 10);
}

} // namespace
