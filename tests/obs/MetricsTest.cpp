//===- tests/obs/MetricsTest.cpp - Prometheus exposition tests -----------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Prometheus text-exposition writer: golden documents, label
/// escaping, and a format validator (every sample sits in one contiguous
/// group under its family's HELP/TYPE header; histogram buckets are
/// cumulative with ascending thresholds and a closing +Inf) that the
/// server-level metrics tests reuse via validatePrometheusText().
///
//===----------------------------------------------------------------------===//

#include "MetricsTestSupport.h"
#include "obs/Histogram.h"
#include "obs/Metrics.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace stird;
using obs::Histogram;
using obs::prom::Labels;
using obs::prom::Writer;

namespace {

TEST(PromEscapeTest, EscapesTheThreeSpecialCharacters) {
  EXPECT_EQ(obs::prom::escapeLabelValue("plain"), "plain");
  EXPECT_EQ(obs::prom::escapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::prom::escapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::prom::escapeLabelValue("a\nb"), "a\\nb");
  EXPECT_EQ(obs::prom::escapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
}

TEST(PromWriterTest, GoldenCounterAndGauge) {
  Writer W;
  W.header("stird_requests_total", "Requests handled.", "counter");
  W.sample("stird_requests_total", {}, std::uint64_t(42));
  W.sample("stird_requests_total", {{"tenant", "a"}, {"command", "query"}},
           std::uint64_t(7));
  W.header("stird_queue_depth", "Queued entries.", "gauge");
  W.sample("stird_queue_depth", {}, std::uint64_t(3));
  EXPECT_EQ(W.text(),
            "# HELP stird_requests_total Requests handled.\n"
            "# TYPE stird_requests_total counter\n"
            "stird_requests_total 42\n"
            "stird_requests_total{tenant=\"a\",command=\"query\"} 7\n"
            "# HELP stird_queue_depth Queued entries.\n"
            "# TYPE stird_queue_depth gauge\n"
            "stird_queue_depth 3\n");
  EXPECT_EQ(obs::prom::validatePrometheusText(W.text()), "");
}

TEST(PromWriterTest, LabelValuesAreEscapedInPlace) {
  Writer W;
  W.header("stird_test", "Escaping.", "gauge");
  W.sample("stird_test", {{"pattern", "[1,\"a\\b\"]"}}, std::uint64_t(1));
  EXPECT_NE(W.text().find("pattern=\"[1,\\\"a\\\\b\\\"]\""),
            std::string::npos)
      << W.text();
  EXPECT_EQ(obs::prom::validatePrometheusText(W.text()), "");
}

TEST(PromWriterTest, HistogramRendersCumulativeBuckets) {
  Histogram H;
  for (std::uint64_t V : {3u, 3u, 40u, 500u})
    H.record(V);
  Writer W;
  W.header("stird_lat", "Latency.", "histogram");
  W.histogram("stird_lat", {{"command", "query"}}, H);
  const std::string &Text = W.text();
  // Bucket thresholds are the geometry's inclusive upper bounds; the
  // values 3, 40 and 500 sit in buckets with those exact bounds.
  EXPECT_NE(Text.find("stird_lat_bucket{command=\"query\",le=\"3\"} 2\n"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("le=\"+Inf\"} 4\n"), std::string::npos) << Text;
  EXPECT_NE(Text.find("stird_lat_sum{command=\"query\"} 546\n"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("stird_lat_count{command=\"query\"} 4\n"),
            std::string::npos)
      << Text;
  EXPECT_EQ(obs::prom::validatePrometheusText(Text), "");
}

TEST(PromWriterTest, EmptyHistogramStillClosesWithInf) {
  Histogram H;
  Writer W;
  W.header("stird_lat", "Latency.", "histogram");
  W.histogram("stird_lat", {}, H);
  EXPECT_NE(W.text().find("stird_lat_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos)
      << W.text();
  EXPECT_EQ(obs::prom::validatePrometheusText(W.text()), "");
}

TEST(PromValidatorTest, CatchesFormatViolations) {
  using obs::prom::validatePrometheusText;
  // Sample before any header.
  EXPECT_NE(validatePrometheusText("orphan 1\n"), "");
  // Sample outside its family group.
  EXPECT_NE(validatePrometheusText("# HELP a A.\n# TYPE a counter\n"
                                   "# HELP b B.\n# TYPE b counter\n"
                                   "a 1\n"),
            "");
  // Negative counter.
  EXPECT_NE(validatePrometheusText("# HELP a A.\n# TYPE a counter\n"
                                   "a -1\n"),
            "");
  // Non-cumulative buckets.
  EXPECT_NE(validatePrometheusText(
                "# HELP h H.\n# TYPE h histogram\n"
                "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n"
                "h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n"),
            "");
  // Histogram never closed with +Inf.
  EXPECT_NE(validatePrometheusText("# HELP h H.\n# TYPE h histogram\n"
                                   "h_bucket{le=\"1\"} 5\n"),
            "");
  // A well-formed document passes.
  EXPECT_EQ(validatePrometheusText(
                "# HELP h H.\n# TYPE h histogram\n"
                "h_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 5\n"
                "h_sum 9\nh_count 5\n"),
            "");
}

} // namespace
