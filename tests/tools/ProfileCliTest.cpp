//===- tests/tools/ProfileCliTest.cpp - Profile/trace CLI tests ----------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests of the observability sinks from the command line:
/// `stird --profile=<file>` / `--trace=<file>` write schema-valid JSON, and
/// the `stird-profile` analyzer reads the profile back and prints the
/// hot-rule, relation-growth and convergence tables.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/Profile.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifndef STIRD_TOOL_PATH
#error "STIRD_TOOL_PATH must point at the stird driver binary"
#endif
#ifndef STIRD_PROFILE_TOOL_PATH
#error "STIRD_PROFILE_TOOL_PATH must point at the stird-profile binary"
#endif

namespace {

struct CommandResult {
  int ExitCode = 0;
  std::string Output; // stdout + stderr
};

CommandResult runCommand(const std::string &Binary, const std::string &Args,
                         const std::string &Dir) {
  const std::string OutPath = Dir + "/cli.out";
  const std::string Command = Binary + " " + Args + " > " + OutPath + " 2>&1";
  CommandResult Result;
  Result.ExitCode = std::system(Command.c_str());
  std::ifstream In(OutPath);
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Result.Output = Buffer.str();
  return Result;
}

/// A scratch directory with a transitive-closure program over a chain long
/// enough to exercise multiple fixpoint iterations and -j4 partitioning.
std::string makeFixture(const std::string &Name) {
  const std::string Dir = ::testing::TempDir() + "/obs_cli_" + Name;
  std::filesystem::create_directories(Dir);
  std::ofstream(Dir + "/tc.dl") << ".decl edge(a:number, b:number)\n"
                                   ".decl path(a:number, b:number)\n"
                                   ".input edge\n.output path\n"
                                   "path(x, y) :- edge(x, y).\n"
                                   "path(x, z) :- path(x, y), edge(y, z).\n";
  std::ofstream Facts(Dir + "/edge.facts");
  for (int I = 1; I <= 24; ++I)
    Facts << I << "\t" << I + 1 << "\n";
  return Dir;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

TEST(ProfileCliTest, ProfileFileIsSchemaValidJson) {
  std::string Dir = makeFixture("profile_json");
  CommandResult Result = runCommand(
      STIRD_TOOL_PATH,
      Dir + "/tc.dl -F " + Dir + " -D " + Dir + " -j 4 --profile=" + Dir +
          "/p.json --trace=" + Dir + "/t.json",
      Dir);
  ASSERT_EQ(Result.ExitCode, 0) << Result.Output;
  EXPECT_NE(Result.Output.find("profile written to"), std::string::npos);
  EXPECT_NE(Result.Output.find("trace written to"), std::string::npos);

  std::string Error;
  std::optional<stird::obs::json::Value> Profile =
      stird::obs::json::parse(readFile(Dir + "/p.json"), &Error);
  ASSERT_TRUE(Profile.has_value()) << Error;
  EXPECT_EQ(Profile->find("schema")->asString(),
            stird::obs::ProfileSchemaVersion);
  EXPECT_EQ(Profile->find("backend")->asString(), "sti");
  EXPECT_EQ(Profile->find("threads")->asUint(), 4u);
  ASSERT_NE(Profile->find("strata"), nullptr);
  ASSERT_NE(Profile->find("relations"), nullptr);

  std::optional<stird::obs::json::Value> Trace =
      stird::obs::json::parse(readFile(Dir + "/t.json"), &Error);
  ASSERT_TRUE(Trace.has_value()) << Error;
  ASSERT_NE(Trace->find("traceEvents"), nullptr);
  EXPECT_GT(Trace->find("traceEvents")->asArray().size(), 4u);
}

TEST(ProfileCliTest, BareProfileFlagPrintsSortedReport) {
  std::string Dir = makeFixture("profile_text");
  CommandResult Result = runCommand(
      STIRD_TOOL_PATH, Dir + "/tc.dl -F " + Dir + " -D " + Dir + " --profile",
      Dir);
  ASSERT_EQ(Result.ExitCode, 0) << Result.Output;
  // Rule table with a totals row, then the relation counter table.
  EXPECT_NE(Result.Output.find("  total"), std::string::npos)
      << Result.Output;
  EXPECT_NE(Result.Output.find("  path"), std::string::npos);
  EXPECT_NE(Result.Output.find("idx-scans"), std::string::npos);
}

TEST(ProfileCliTest, AnalyzerPrintsTables) {
  std::string Dir = makeFixture("analyzer");
  CommandResult Run = runCommand(
      STIRD_TOOL_PATH,
      Dir + "/tc.dl -F " + Dir + " -D " + Dir + " --profile=" + Dir +
          "/p.json",
      Dir);
  ASSERT_EQ(Run.ExitCode, 0) << Run.Output;

  CommandResult Analyzed =
      runCommand(STIRD_PROFILE_TOOL_PATH, Dir + "/p.json", Dir);
  ASSERT_EQ(Analyzed.ExitCode, 0) << Analyzed.Output;
  EXPECT_NE(Analyzed.Output.find("program:"), std::string::npos);
  EXPECT_NE(Analyzed.Output.find("Hot rules"), std::string::npos);
  EXPECT_NE(Analyzed.Output.find("Relations:"), std::string::npos);
  EXPECT_NE(Analyzed.Output.find("Convergence"), std::string::npos);
  EXPECT_NE(
      Analyzed.Output.find("path(x, z) :- path(x, y), edge(y, z). [v0]"),
      std::string::npos)
      << Analyzed.Output;
  // The convergence table lists the per-iteration fixpoint drain; a
  // 24-edge chain needs a two-digit iteration count.
  EXPECT_NE(Analyzed.Output.find("    10 "), std::string::npos)
      << Analyzed.Output;

  CommandResult Top =
      runCommand(STIRD_PROFILE_TOOL_PATH, Dir + "/p.json --top 1", Dir);
  ASSERT_EQ(Top.ExitCode, 0);
  EXPECT_NE(Top.Output.find("top 1 of"), std::string::npos) << Top.Output;
}

TEST(ProfileCliTest, AnalyzerRejectsBadInput) {
  std::string Dir = makeFixture("analyzer_bad");
  CommandResult Missing =
      runCommand(STIRD_PROFILE_TOOL_PATH, Dir + "/nope.json", Dir);
  EXPECT_NE(Missing.ExitCode, 0);
  EXPECT_NE(Missing.Output.find("cannot read"), std::string::npos);

  std::ofstream(Dir + "/garbage.json") << "{not json";
  CommandResult Garbage =
      runCommand(STIRD_PROFILE_TOOL_PATH, Dir + "/garbage.json", Dir);
  EXPECT_NE(Garbage.ExitCode, 0);
  EXPECT_NE(Garbage.Output.find("malformed JSON"), std::string::npos);

  std::ofstream(Dir + "/wrong.json") << "{\"schema\":\"other-v9\"}";
  CommandResult Wrong =
      runCommand(STIRD_PROFILE_TOOL_PATH, Dir + "/wrong.json", Dir);
  EXPECT_NE(Wrong.ExitCode, 0);
  EXPECT_NE(Wrong.Output.find("unsupported profile schema"),
            std::string::npos);
}

} // namespace
