//===- tests/tools/CliTest.cpp - Command-line driver tests ---------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests of the `stird` driver binary: runs it as a subprocess
/// over real .dl and fact files and checks outputs, dumps and exit codes.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifndef STIRD_TOOL_PATH
#error "STIRD_TOOL_PATH must point at the stird driver binary"
#endif

namespace {

struct CommandResult {
  int ExitCode = 0;
  std::string Output; // stdout + stderr
};

CommandResult runTool(const std::string &Args, const std::string &Dir) {
  const std::string OutPath = Dir + "/cli.out";
  const std::string Command =
      std::string(STIRD_TOOL_PATH) + " " + Args + " > " + OutPath + " 2>&1";
  CommandResult Result;
  Result.ExitCode = std::system(Command.c_str());
  std::ifstream In(OutPath);
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Result.Output = Buffer.str();
  return Result;
}

/// A scratch directory with the transitive-closure program and facts.
std::string makeFixture(const std::string &Name) {
  const std::string Dir = ::testing::TempDir() + "/cli_" + Name;
  std::filesystem::create_directories(Dir);
  std::ofstream(Dir + "/tc.dl") << ".decl edge(a:number, b:number)\n"
                                   ".decl path(a:number, b:number)\n"
                                   ".input edge\n.output path\n"
                                   ".printsize path\n"
                                   "path(x, y) :- edge(x, y).\n"
                                   "path(x, z) :- path(x, y), edge(y, z).\n";
  std::ofstream(Dir + "/edge.facts") << "1\t2\n2\t3\n3\t4\n";
  return Dir;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

TEST(CliTest, RunsProgramAndWritesOutputs) {
  std::string Dir = makeFixture("run");
  CommandResult Result =
      runTool(Dir + "/tc.dl -F " + Dir + " -D " + Dir, Dir);
  EXPECT_EQ(Result.ExitCode, 0) << Result.Output;
  EXPECT_NE(Result.Output.find("path\t6"), std::string::npos)
      << Result.Output;
  EXPECT_EQ(readFile(Dir + "/path.csv"),
            "1\t2\n1\t3\n1\t4\n2\t3\n2\t4\n3\t4\n");
}

TEST(CliTest, AllBackendsAgree) {
  for (const char *Backend : {"sti", "sti-plain", "dynamic", "legacy"}) {
    std::string Dir = makeFixture(std::string("backend_") + Backend);
    CommandResult Result = runTool(Dir + "/tc.dl -F " + Dir + " -D " + Dir +
                                       " --backend " + Backend,
                                   Dir);
    EXPECT_EQ(Result.ExitCode, 0) << Backend << ": " << Result.Output;
    EXPECT_EQ(readFile(Dir + "/path.csv"),
              "1\t2\n1\t3\n1\t4\n2\t3\n2\t4\n3\t4\n")
        << Backend;
  }
}

TEST(CliTest, DumpRamAndDumpTree) {
  std::string Dir = makeFixture("dumps");
  CommandResult Ram = runTool(Dir + "/tc.dl --dump-ram", Dir);
  EXPECT_EQ(Ram.ExitCode, 0);
  EXPECT_NE(Ram.Output.find("LOOP"), std::string::npos);
  EXPECT_NE(Ram.Output.find("SWAP (delta_path, new_path)"),
            std::string::npos);

  CommandResult Tree = runTool(Dir + "/tc.dl --dump-tree", Dir);
  EXPECT_EQ(Tree.ExitCode, 0);
  EXPECT_NE(Tree.Output.find("IndexScan_Btree_2"), std::string::npos);

  CommandResult DynTree =
      runTool(Dir + "/tc.dl --dump-tree --backend dynamic", Dir);
  EXPECT_NE(DynTree.Output.find("GenericIndexScan"), std::string::npos);
}

TEST(CliTest, ProfileReportsRules) {
  std::string Dir = makeFixture("profile");
  CommandResult Result =
      runTool(Dir + "/tc.dl -F " + Dir + " -D " + Dir + " --profile", Dir);
  EXPECT_EQ(Result.ExitCode, 0);
  EXPECT_NE(Result.Output.find("path(x, z) :- path(x, y), edge(y, z). [v0]"),
            std::string::npos)
      << Result.Output;
}

TEST(CliTest, SynthesizeWritesCompilableSource) {
  std::string Dir = makeFixture("synth");
  CommandResult Result =
      runTool(Dir + "/tc.dl --synthesize " + Dir + "/gen.cpp", Dir);
  EXPECT_EQ(Result.ExitCode, 0) << Result.Output;
  std::string Generated = readFile(Dir + "/gen.cpp");
  EXPECT_NE(Generated.find("stird::BTreeSet<2>"), std::string::npos);
  EXPECT_NE(Generated.find("int main("), std::string::npos);
}

TEST(CliTest, ErrorsExitNonZero) {
  std::string Dir = makeFixture("errors");
  CommandResult Missing = runTool("/nonexistent/prog.dl", Dir);
  EXPECT_NE(Missing.ExitCode, 0);

  std::ofstream(Dir + "/bad.dl") << ".decl a(x:number)\na(y) :- a(x).\n";
  CommandResult Semantic = runTool(Dir + "/bad.dl", Dir);
  EXPECT_NE(Semantic.ExitCode, 0);
  EXPECT_NE(Semantic.Output.find("ungrounded"), std::string::npos);

  CommandResult BadFlag = runTool(Dir + "/bad.dl --backend warp", Dir);
  EXPECT_NE(BadFlag.ExitCode, 0);
}

TEST(CliTest, ThreadCountFlagVariants) {
  // -j N, -j 0 and -j auto all run to completion with identical output;
  // 0 and "auto" expand to the hardware thread count, make-style.
  for (const char *Jobs : {"1", "4", "0", "auto"}) {
    std::string Dir = makeFixture(std::string("jobs_") + Jobs);
    CommandResult Result = runTool(
        Dir + "/tc.dl -F " + Dir + " -D " + Dir + " -j " + Jobs, Dir);
    EXPECT_EQ(Result.ExitCode, 0) << "-j " << Jobs << ": " << Result.Output;
    EXPECT_EQ(readFile(Dir + "/path.csv"),
              "1\t2\n1\t3\n1\t4\n2\t3\n2\t4\n3\t4\n")
        << "-j " << Jobs;
  }
}

TEST(CliTest, ThreadCountFlagRejectsGarbage) {
  std::string Dir = makeFixture("jobs_bad");
  for (const char *Jobs : {"-3", "two", "4x", ""}) {
    CommandResult Result = runTool(
        Dir + "/tc.dl -F " + Dir + " -j '" + Jobs + "'", Dir);
    EXPECT_NE(Result.ExitCode, 0) << "-j '" << Jobs << "' was accepted";
    EXPECT_NE(Result.Output.find("invalid thread count"), std::string::npos)
        << "-j '" << Jobs << "': " << Result.Output;
    EXPECT_NE(Result.Output.find("usage:"), std::string::npos);
  }
}

TEST(CliTest, AblationFlagsAccepted) {
  std::string Dir = makeFixture("flags");
  CommandResult Result = runTool(
      Dir + "/tc.dl -F " + Dir + " -D " + Dir +
          " --no-super --no-reorder --fuse-conditions",
      Dir);
  EXPECT_EQ(Result.ExitCode, 0) << Result.Output;
  EXPECT_EQ(readFile(Dir + "/path.csv"),
            "1\t2\n1\t3\n1\t4\n2\t3\n2\t4\n3\t4\n");
}

TEST(CliTest, SipsStrategiesProduceIdenticalOutput) {
  const std::string Expected = "1\t2\n1\t3\n1\t4\n2\t3\n2\t4\n3\t4\n";
  for (const char *Sips : {"source", "max-bound"}) {
    std::string Dir = makeFixture(std::string("sips_") + Sips);
    CommandResult Result = runTool(
        Dir + "/tc.dl -F " + Dir + " -D " + Dir + " --sips=" + Sips, Dir);
    EXPECT_EQ(Result.ExitCode, 0) << "--sips=" << Sips << ": "
                                  << Result.Output;
    EXPECT_EQ(readFile(Dir + "/path.csv"), Expected) << "--sips=" << Sips;
  }
}

TEST(CliTest, SipsRejectsUnknownStrategy) {
  std::string Dir = makeFixture("sips_bad");
  CommandResult Result =
      runTool(Dir + "/tc.dl -F " + Dir + " --sips=random", Dir);
  EXPECT_NE(Result.ExitCode, 0);
  EXPECT_NE(Result.Output.find("unknown sips strategy"), std::string::npos)
      << Result.Output;
}

TEST(CliTest, FeedbackRoundTripsThroughProfile) {
  // A profiled run's JSON feeds the next run's planner (--feedback
  // implies --sips=profile); the results must be identical.
  std::string Dir = makeFixture("feedback");
  CommandResult First =
      runTool(Dir + "/tc.dl -F " + Dir + " -D " + Dir + " --profile=" +
                  Dir + "/profile.json",
              Dir);
  EXPECT_EQ(First.ExitCode, 0) << First.Output;
  const std::string Baseline = readFile(Dir + "/path.csv");

  CommandResult Second =
      runTool(Dir + "/tc.dl -F " + Dir + " -D " + Dir + " --feedback=" +
                  Dir + "/profile.json",
              Dir);
  EXPECT_EQ(Second.ExitCode, 0) << Second.Output;
  EXPECT_EQ(readFile(Dir + "/path.csv"), Baseline);
  // No fallback warning: the document is fresh and covers the program.
  EXPECT_EQ(Second.Output.find("falling back"), std::string::npos)
      << Second.Output;
}

TEST(CliTest, MalformedFeedbackWarnsAndFallsBack) {
  // Malformed or stale --feedback documents must degrade to max-bound
  // with a warning — never abort the run.
  std::string Dir = makeFixture("feedback_bad");
  std::ofstream(Dir + "/broken.json") << "{this is not json";
  std::ofstream(Dir + "/stale.json")
      << R"({"schema": "stird-profile-v1", "relations": [)"
      << R"({"name": "someone_elses_relation", "peak_size": 9}]})";
  const std::string Expected = "1\t2\n1\t3\n1\t4\n2\t3\n2\t4\n3\t4\n";

  for (const char *Doc : {"broken.json", "stale.json"}) {
    CommandResult Result =
        runTool(Dir + "/tc.dl -F " + Dir + " -D " + Dir + " --feedback=" +
                    Dir + "/" + Doc,
                Dir);
    EXPECT_EQ(Result.ExitCode, 0)
        << Doc << " aborted the run: " << Result.Output;
    EXPECT_NE(Result.Output.find("warning:"), std::string::npos) << Doc;
    EXPECT_NE(Result.Output.find("falling back to --sips=max-bound"),
              std::string::npos)
        << Doc << ": " << Result.Output;
    EXPECT_EQ(readFile(Dir + "/path.csv"), Expected) << Doc;
  }
}

} // namespace
