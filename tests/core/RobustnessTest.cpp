//===- tests/core/RobustnessTest.cpp - Failure injection -----------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Failure-injection tests: malformed fact files, missing inputs and API
/// misuse must fail loudly (fatal diagnostics), never corrupt results.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "util/Csv.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace stird;

namespace {

std::unique_ptr<core::Program> ioProgram() {
  return core::Program::fromSource(
      ".decl e(a:number, b:number)\n.decl p(a:number, b:number)\n"
      ".input e\n"
      "p(x, y) :- e(x, y).");
}

TEST(RobustnessDeathTest, MissingFactFileIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto Prog = ioProgram();
  interp::EngineOptions Options;
  Options.FactDir = ::testing::TempDir() + "/definitely_missing_dir";
  auto Engine = Prog->makeEngine(Options);
  EXPECT_DEATH(Engine->run(), "cannot open fact file");
}

TEST(RobustnessTest, MalformedNumberColumnIsSkippedAndReported) {
  // Malformed rows no longer abort the run: they are skipped and reported
  // with file, line and column via Engine::getIoErrors().
  const std::string Dir = ::testing::TempDir() + "/badnum";
  std::filesystem::create_directories(Dir);
  {
    std::ofstream Out(Dir + "/e.facts");
    Out << "1\t2\n";
    Out << "1\tnot_a_number\n";
    Out << "3\t4\n";
  }
  auto Prog = ioProgram();
  interp::EngineOptions Options;
  Options.FactDir = Dir;
  auto Engine = Prog->makeEngine(Options);
  Engine->run();
  EXPECT_EQ(Engine->getTuples("p"),
            (std::vector<DynTuple>{{1, 2}, {3, 4}}));
  ASSERT_EQ(Engine->getIoErrors().size(), 1u);
  const FactError &Err = Engine->getIoErrors()[0];
  EXPECT_EQ(Err.Line, 2u);
  EXPECT_EQ(Err.Column, 2u);
  EXPECT_NE(Err.Message.find("malformed number column"), std::string::npos);
  EXPECT_NE(Err.File.find("e.facts"), std::string::npos);
}

TEST(RobustnessTest, TruncatedFactLineIsSkippedAndReported) {
  const std::string Dir = ::testing::TempDir() + "/trunc";
  std::filesystem::create_directories(Dir);
  {
    std::ofstream Out(Dir + "/e.facts");
    Out << "1\n"; // needs two columns
    Out << "5\t6\n";
  }
  auto Prog = ioProgram();
  interp::EngineOptions Options;
  Options.FactDir = Dir;
  auto Engine = Prog->makeEngine(Options);
  Engine->run();
  EXPECT_EQ(Engine->getTuples("p"), (std::vector<DynTuple>{{5, 6}}));
  ASSERT_EQ(Engine->getIoErrors().size(), 1u);
  EXPECT_EQ(Engine->getIoErrors()[0].Line, 1u);
  EXPECT_NE(Engine->getIoErrors()[0].Message.find("row has 1 columns"),
            std::string::npos);
}

TEST(RobustnessDeathTest, UnknownRelationAccessIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto Prog = core::Program::fromSource(".decl a(x:number)\na(1).");
  auto Engine = Prog->makeEngine();
  EXPECT_DEATH(Engine->insertTuples("nosuch", {{1}}), "unknown relation");
}

TEST(RobustnessTest, EmptyFactFileIsFine) {
  const std::string Dir = ::testing::TempDir() + "/emptyfacts";
  std::filesystem::create_directories(Dir);
  std::ofstream(Dir + "/e.facts") << "";
  auto Prog = ioProgram();
  interp::EngineOptions Options;
  Options.FactDir = Dir;
  auto Engine = Prog->makeEngine(Options);
  Engine->run();
  EXPECT_TRUE(Engine->getTuples("p").empty());
}

TEST(RobustnessTest, RerunningAnEngineIsIdempotentOnSets) {
  // Running twice re-executes the program; set semantics make the result
  // identical (facts re-derived into the same sets).
  auto Prog = core::Program::fromSource(
      ".decl e(a:number, b:number)\n.decl p(a:number, b:number)\n"
      "p(x, y) :- e(x, y).\np(x, z) :- p(x, y), e(y, z).");
  auto Engine = Prog->makeEngine();
  Engine->insertTuples("e", {{1, 2}, {2, 3}});
  Engine->run();
  auto First = Engine->getTuples("p");
  Engine->run();
  EXPECT_EQ(Engine->getTuples("p"), First);
}

TEST(RobustnessTest, LargeArityRelationEndToEnd) {
  // Arity 16 — the edge of the pre-compiled portfolio.
  std::string Decl = ".decl wide(";
  std::string HeadArgs, BodyArgs;
  for (int I = 0; I < 16; ++I) {
    if (I) {
      Decl += ", ";
      HeadArgs += ", ";
      BodyArgs += ", ";
    }
    Decl += "c" + std::to_string(I) + ":number";
    HeadArgs += "x" + std::to_string((I + 1) % 16);
    BodyArgs += "x" + std::to_string(I);
  }
  std::string Source = Decl + ")\n.decl out(" +
                       Decl.substr(std::string(".decl wide(").size()) +
                       ")\nout(" + HeadArgs + ") :- wide(" + BodyArgs +
                       ").";
  auto Prog = core::Program::fromSource(Source);
  ASSERT_NE(Prog, nullptr);
  auto Engine = Prog->makeEngine();
  DynTuple Wide(16);
  for (int I = 0; I < 16; ++I)
    Wide[static_cast<std::size_t>(I)] = I * 10;
  Engine->insertTuples("wide", {Wide});
  Engine->run();
  auto Out = Engine->getTuples("out");
  ASSERT_EQ(Out.size(), 1u);
  // Head rotates the columns by one.
  EXPECT_EQ(Out[0][0], 10);
  EXPECT_EQ(Out[0][15], 0);
}

TEST(RobustnessTest, DeepRuleChainStratifies) {
  // 200 strata in a chain: exercises the iterative SCC code.
  std::string Source = ".decl r0(x:number)\nr0(1).\n";
  for (int I = 1; I <= 200; ++I)
    Source += ".decl r" + std::to_string(I) + "(x:number)\nr" +
              std::to_string(I) + "(x) :- r" + std::to_string(I - 1) +
              "(x).\n";
  auto Prog = core::Program::fromSource(Source);
  ASSERT_NE(Prog, nullptr);
  auto Engine = Prog->makeEngine();
  Engine->run();
  EXPECT_EQ(Engine->getTuples("r200"), (std::vector<DynTuple>{{1}}));
}

} // namespace
