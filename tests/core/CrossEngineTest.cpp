//===- tests/core/CrossEngineTest.cpp - Cross-backend equivalence --------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Invariant 1 of DESIGN.md: the STI (both register variants), the
/// dynamic-adapter interpreter and the legacy interpreter must compute
/// identical relation contents for every program in the corpus. The
/// synthesized-code path is covered by tests/synth.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "interp/Engine.h"

#include <gtest/gtest.h>

#include <random>

using namespace stird;
using namespace stird::interp;

namespace {

struct CorpusEntry {
  const char *Name;
  const char *Source;
  /// Relations whose contents are compared.
  std::vector<const char *> Outputs;
  /// Input relation -> tuples.
  std::vector<std::pair<const char *, std::vector<DynTuple>>> Inputs;
};

std::vector<DynTuple> randomPairs(std::size_t Count, RamDomain Range,
                                  unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<RamDomain> Dist(0, Range);
  std::vector<DynTuple> Result;
  for (std::size_t I = 0; I < Count; ++I)
    Result.push_back({Dist(Rng), Dist(Rng)});
  return Result;
}

const CorpusEntry *corpus() {
  static const std::vector<CorpusEntry> Entries = [] {
    std::vector<CorpusEntry> Result;
    Result.push_back(
        {"transitive_closure",
         ".decl e(a:number, b:number)\n.decl p(a:number, b:number)\n"
         "p(x, y) :- e(x, y).\np(x, z) :- p(x, y), e(y, z).",
         {"p"},
         {{"e", randomPairs(60, 25, 1)}}});
    Result.push_back(
        {"negation_and_filters",
         ".decl e(a:number, b:number)\n.decl blocked(a:number)\n"
         ".decl r(a:number, b:number)\n"
         "r(x, y) :- e(x, y), !blocked(y), x < y + 5, x != 7.",
         {"r"},
         {{"e", randomPairs(80, 30, 2)},
          {"blocked", {{1}, {5}, {9}, {13}}}}});
    Result.push_back(
        {"multi_index_join",
         ".decl e(a:number, b:number)\n.decl f(a:number, b:number)\n"
         ".decl j(a:number, b:number, c:number)\n"
         "j(x, y, z) :- e(x, y), f(z, y), e(y, z).",
         {"j"},
         {{"e", randomPairs(50, 12, 3)}, {"f", randomPairs(50, 12, 4)}}});
    Result.push_back(
        {"aggregates",
         ".decl e(a:number, b:number)\n.decl n(a:number)\n"
         ".decl deg(a:number, c:number, s:number)\n"
         "n(x) :- e(x, _).\n"
         "deg(x, c, s) :- n(x), c = count : { e(x, _) }, "
         "s = sum y : { e(x, y) }.",
         {"deg"},
         {{"e", randomPairs(70, 15, 5)}}});
    Result.push_back(
        {"mutual_recursion",
         ".decl s(a:number, b:number)\n.decl ev(x:number)\n"
         ".decl od(x:number)\n"
         "ev(0).\nod(y) :- ev(x), s(x, y).\nev(y) :- od(x), s(x, y).",
         {"ev", "od"},
         {{"s", [] {
            auto Pairs = randomPairs(100, 40, 6);
            // Guarantee the fixpoint leaves the seed fact.
            Pairs.push_back({0, 1});
            Pairs.push_back({1, 2});
            return Pairs;
          }()}}});
    Result.push_back(
        {"eqrel_closure",
         ".decl link(a:number, b:number)\n"
         ".decl same(a:number, b:number) eqrel\n"
         ".decl rep(a:number, b:number)\n"
         "same(a, b) :- link(a, b).\n"
         "rep(a, b) :- same(a, b), a < b.",
         {"same", "rep"},
         {{"link", randomPairs(40, 20, 7)}}});
    Result.push_back(
        {"brie_backed",
         ".decl e(a:number, b:number) brie\n"
         ".decl p(a:number, b:number) brie\n"
         "p(x, y) :- e(x, y).\np(x, z) :- p(x, y), e(y, z).",
         {"p"},
         {{"e", randomPairs(50, 20, 8)}}});
    Result.push_back(
        {"arithmetic_heavy",
         ".decl v(a:number, b:number)\n.decl w(a:number, b:number)\n"
         "w(x * 2 + 1, y) :- v(x, y), (x band 7) != 3, "
         "x * x + y * y < 900.",
         {"w"},
         {{"v", randomPairs(90, 28, 9)}}});
    return Result;
  }();
  return Entries.data();
}
constexpr std::size_t CorpusSize = 8;

class CrossEngineTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

Backend backendOf(int Index) {
  switch (Index) {
  case 0:
    return Backend::StaticLambda;
  case 1:
    return Backend::StaticPlain;
  case 2:
    return Backend::DynamicAdapter;
  default:
    return Backend::Legacy;
  }
}

const char *backendName(int Index) {
  switch (Index) {
  case 0:
    return "StaticLambda";
  case 1:
    return "StaticPlain";
  case 2:
    return "DynamicAdapter";
  default:
    return "Legacy";
  }
}

std::vector<std::vector<DynTuple>> runOn(const CorpusEntry &Entry,
                                         Backend TheBackend) {
  std::vector<std::string> Errors;
  auto Prog = core::Program::fromSource(Entry.Source, &Errors);
  EXPECT_NE(Prog, nullptr)
      << Entry.Name << ": " << (Errors.empty() ? "" : Errors[0]);
  if (!Prog)
    return {};
  EngineOptions Options;
  Options.TheBackend = TheBackend;
  auto E = Prog->makeEngine(Options);
  for (const auto &[Rel, Tuples] : Entry.Inputs)
    E->insertTuples(Rel, Tuples);
  E->run();
  std::vector<std::vector<DynTuple>> Result;
  for (const char *Rel : Entry.Outputs)
    Result.push_back(E->getTuples(Rel));
  return Result;
}

TEST_P(CrossEngineTest, BackendMatchesReferenceSti) {
  auto [ProgramIndex, BackendIndex] = GetParam();
  const CorpusEntry &Entry = corpus()[ProgramIndex];
  auto Reference = runOn(Entry, Backend::StaticLambda);
  for (const auto &Tuples : Reference)
    EXPECT_FALSE(Tuples.empty())
        << Entry.Name << ": corpus entry produced no tuples";
  auto Other = runOn(Entry, backendOf(BackendIndex));
  ASSERT_EQ(Reference.size(), Other.size());
  for (std::size_t I = 0; I < Reference.size(); ++I)
    EXPECT_EQ(Reference[I], Other[I])
        << Entry.Name << " relation " << Entry.Outputs[I] << " differs on "
        << backendName(BackendIndex);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CrossEngineTest,
    ::testing::Combine(::testing::Range(0, static_cast<int>(CorpusSize)),
                       ::testing::Range(1, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>> &Info) {
      return std::string(corpus()[std::get<0>(Info.param)].Name) + "_vs_" +
             backendName(std::get<1>(Info.param));
    });

/// Random-program sweep: random chain/filter rule sets over random edges
/// must agree between the STI and the dynamic adapter.
class RandomProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramTest, RandomRuleSetsAgreeAcrossBackends) {
  const unsigned Seed = static_cast<unsigned>(GetParam());
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<int> Pick(0, 2);
  std::uniform_int_distribution<RamDomain> Const(0, 9);

  std::string Source =
      ".decl e(a:number, b:number)\n.decl r0(a:number, b:number)\n"
      "r0(x, y) :- e(x, y).\n";
  int NumRels = 1 + static_cast<int>(Rng() % 4);
  for (int I = 1; I <= NumRels; ++I) {
    std::string Rel = "r" + std::to_string(I);
    std::string Prev = "r" + std::to_string(I - 1);
    Source += ".decl " + Rel + "(a:number, b:number)\n";
    switch (Pick(Rng)) {
    case 0: // join with e
      Source += Rel + "(x, z) :- " + Prev + "(x, y), e(y, z).\n";
      break;
    case 1: // filter
      Source += Rel + "(x, y) :- " + Prev + "(x, y), x + y > " +
                std::to_string(Const(Rng)) + ".\n";
      break;
    default: // arithmetic head
      Source += Rel + "(y, x + " + std::to_string(Const(Rng)) + ") :- " +
                Prev + "(x, y).\n";
      break;
    }
  }
  std::string Last = "r" + std::to_string(NumRels);

  auto Tuples = randomPairs(60, 20, Seed * 31 + 5);
  auto Run = [&](Backend TheBackend) {
    std::vector<std::string> Errors;
    auto Prog = core::Program::fromSource(Source, &Errors);
    EXPECT_NE(Prog, nullptr) << (Errors.empty() ? "" : Errors[0]);
    if (!Prog)
      return std::vector<DynTuple>{};
    EngineOptions Options;
    Options.TheBackend = TheBackend;
    auto E = Prog->makeEngine(Options);
    E->insertTuples("e", Tuples);
    E->run();
    return E->getTuples(Last);
  };

  auto Sti = Run(Backend::StaticLambda);
  auto Dynamic = Run(Backend::DynamicAdapter);
  auto Legacy = Run(Backend::Legacy);
  EXPECT_EQ(Sti, Dynamic);
  EXPECT_EQ(Sti, Legacy);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomProgramTest,
                         ::testing::Range(0, 15));

} // namespace
