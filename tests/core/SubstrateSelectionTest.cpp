//===- tests/core/SubstrateSelectionTest.cpp - Substrate selection ------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profile-driven per-relation substrate selection and the --substrate
/// forcing path: golden decisions over synthetic stird-profile-v2
/// documents (point-lookup-heavy dense keys select ART, range-scan-heavy
/// and sparse-keyed relations keep the B-tree), decision surfacing in
/// --dump-ram and getSubstrateDecisions(), and every degradation path —
/// malformed, stale and v1 feedback, unknown relations/kinds, eqrel and
/// over-arity targets — warning without ever failing the compile.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "translate/Sips.h"

#include <gtest/gtest.h>

#include <string>

using namespace stird;

namespace {

constexpr const char *TcSource = R"(
.decl edge(a:number, b:number)
.decl path(a:number, b:number)
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
)";

/// A v2 profile document with one relation record per call argument set.
std::string v2Profile(double EdgePoints, double EdgeRanges,
                      double PathPoints, double PathRanges,
                      long PathCol0Min = 0, long PathCol0Max = 999,
                      double PathSize = 1000) {
  return std::string("{\"schema\": \"stird-profile-v2\", \"relations\": [") +
         "{\"name\": \"edge\", \"final_size\": 500, \"peak_size\": 500, " +
         "\"col0_min\": 0, \"col0_max\": 499, " +
         "\"point_lookups\": " + std::to_string(EdgePoints) +
         ", \"range_scans\": " + std::to_string(EdgeRanges) + "}," +
         "{\"name\": \"path\", \"final_size\": " + std::to_string(PathSize) +
         ", \"peak_size\": " + std::to_string(PathSize) +
         ", \"col0_min\": " + std::to_string(PathCol0Min) +
         ", \"col0_max\": " + std::to_string(PathCol0Max) +
         ", \"point_lookups\": " + std::to_string(PathPoints) +
         ", \"range_scans\": " + std::to_string(PathRanges) + "}]}";
}

std::unique_ptr<core::Program>
compileWithFeedback(const std::string &ProfileJson,
                    core::CompileOptions Options = {}) {
  std::string Error;
  auto Feedback = translate::ProfileFeedback::fromJson(ProfileJson, &Error);
  EXPECT_NE(Feedback, nullptr) << Error;
  Options.Feedback = Feedback.get();
  std::vector<std::string> Errors;
  auto Prog = core::Program::fromSource(TcSource, &Errors, Options);
  EXPECT_NE(Prog, nullptr) << (Errors.empty() ? "" : Errors[0]);
  return Prog;
}

//===----------------------------------------------------------------------===//
// Golden selections
//===----------------------------------------------------------------------===//

TEST(SubstrateSelection, PointLookupHeavyDenseKeysSelectArt) {
  // path: 10000 point lookups vs 10 range scans, 1000 tuples over a
  // [0, 999] col0 span — the ART profile.
  auto Prog = compileWithFeedback(v2Profile(0, 5000, 10000, 10));
  ASSERT_NE(Prog, nullptr);
  const auto &Decisions = Prog->getSubstrateDecisions();
  ASSERT_EQ(Decisions.count("path"), 1u);
  EXPECT_NE(Decisions.at("path").find("art"), std::string::npos);
  EXPECT_NE(Decisions.at("path").find("feedback"), std::string::npos);
  // Range-scan-heavy edge keeps the B-tree.
  EXPECT_EQ(Decisions.count("edge"), 0u);
  // The decision reaches the RAM program (and so --dump-ram), aux
  // relations included.
  const std::string Ram = Prog->dumpRam();
  EXPECT_NE(Ram.find("RELATION path arity 2 orders [0 1] structure art"),
            std::string::npos)
      << Ram;
  EXPECT_NE(Ram.find("delta_path arity 2 orders [0 1] structure art"),
            std::string::npos)
      << Ram;
  EXPECT_NE(Ram.find("RELATION edge arity 2 orders [0 1] structure btree"),
            std::string::npos)
      << Ram;
}

TEST(SubstrateSelection, RangeScanHeavySelectsBtree) {
  auto Prog = compileWithFeedback(v2Profile(0, 5000, 100, 10000));
  ASSERT_NE(Prog, nullptr);
  EXPECT_TRUE(Prog->getSubstrateDecisions().empty());
  EXPECT_NE(Prog->dumpRam().find(
                "RELATION path arity 2 orders [0 1] structure btree"),
            std::string::npos);
}

TEST(SubstrateSelection, SparseKeysStayOnBtree) {
  // Point-lookup-heavy but only 1000 tuples across a [0, 10^8] span: the
  // density gate keeps the B-tree.
  auto Prog =
      compileWithFeedback(v2Profile(0, 5000, 10000, 10, 0, 100000000));
  ASSERT_NE(Prog, nullptr);
  EXPECT_TRUE(Prog->getSubstrateDecisions().empty());
}

TEST(SubstrateSelection, FewLookupsStayOnBtree) {
  // The ratio alone is not enough: a relation probed ten times total is
  // not worth re-substrating.
  auto Prog = compileWithFeedback(v2Profile(0, 5000, 10, 0));
  ASSERT_NE(Prog, nullptr);
  EXPECT_TRUE(Prog->getSubstrateDecisions().empty());
}

TEST(SubstrateSelection, EmptyObservedRelationStaysOnBtree) {
  // col0_max < col0_min encodes "finished empty": no density signal, no
  // switch.
  auto Prog = compileWithFeedback(v2Profile(0, 5000, 10000, 10, 0, -1));
  ASSERT_NE(Prog, nullptr);
  EXPECT_TRUE(Prog->getSubstrateDecisions().empty());
}

TEST(SubstrateSelection, OptOutDisablesFeedbackSelection) {
  core::CompileOptions Options;
  Options.SubstrateFromFeedback = false;
  auto Prog = compileWithFeedback(v2Profile(0, 5000, 10000, 10), Options);
  ASSERT_NE(Prog, nullptr);
  EXPECT_TRUE(Prog->getSubstrateDecisions().empty());
}

//===----------------------------------------------------------------------===//
// Explicit forcing and its precedence
//===----------------------------------------------------------------------===//

TEST(SubstrateSelection, ExplicitOverrideForces) {
  core::CompileOptions Options;
  Options.SubstrateOverrides["edge"] = "art";
  Options.SubstrateOverrides["path"] = "brie";
  auto Prog = core::Program::fromSource(TcSource, nullptr, Options);
  ASSERT_NE(Prog, nullptr);
  const std::string Ram = Prog->dumpRam();
  EXPECT_NE(Ram.find("RELATION edge arity 2 orders [0 1] structure art"),
            std::string::npos);
  EXPECT_NE(Ram.find("RELATION path arity 2 orders [0 1] structure brie"),
            std::string::npos);
  const auto &Decisions = Prog->getSubstrateDecisions();
  ASSERT_EQ(Decisions.count("edge"), 1u);
  EXPECT_NE(Decisions.at("edge").find("forced"), std::string::npos);
}

TEST(SubstrateSelection, ExplicitOverrideBeatsFeedback) {
  // Feedback says art; the user says brie. The user wins.
  core::CompileOptions Options;
  Options.SubstrateOverrides["path"] = "brie";
  auto Prog = compileWithFeedback(v2Profile(0, 5000, 10000, 10), Options);
  ASSERT_NE(Prog, nullptr);
  EXPECT_NE(Prog->dumpRam().find(
                "RELATION path arity 2 orders [0 1] structure brie"),
            std::string::npos);
  EXPECT_NE(Prog->getSubstrateDecisions().at("path").find("brie"),
            std::string::npos);
}

TEST(SubstrateSelection, RedundantOverrideRecordsNoDecision) {
  core::CompileOptions Options;
  Options.SubstrateOverrides["edge"] = "btree";
  auto Prog = core::Program::fromSource(TcSource, nullptr, Options);
  ASSERT_NE(Prog, nullptr);
  EXPECT_TRUE(Prog->getSubstrateDecisions().empty());
}

//===----------------------------------------------------------------------===//
// Degradations: warn, never abort
//===----------------------------------------------------------------------===//

TEST(SubstrateSelection, UnknownRelationOrKindIsIgnored) {
  core::CompileOptions Options;
  Options.SubstrateOverrides["nosuch"] = "art";
  Options.SubstrateOverrides["edge"] = "rope";
  auto Prog = core::Program::fromSource(TcSource, nullptr, Options);
  ASSERT_NE(Prog, nullptr);
  EXPECT_TRUE(Prog->getSubstrateDecisions().empty());
  EXPECT_NE(Prog->dumpRam().find(
                "RELATION edge arity 2 orders [0 1] structure btree"),
            std::string::npos);
}

TEST(SubstrateSelection, EqrelIsNeverResubstrated) {
  constexpr const char *EqrelSource = R"(
.decl link(a:number, b:number)
.decl same(a:number, b:number) eqrel
same(x, y) :- link(x, y).
)";
  core::CompileOptions Options;
  Options.SubstrateOverrides["same"] = "art";
  auto Prog = core::Program::fromSource(EqrelSource, nullptr, Options);
  ASSERT_NE(Prog, nullptr);
  EXPECT_TRUE(Prog->getSubstrateDecisions().empty());
  EXPECT_NE(Prog->dumpRam().find("structure eqrel"), std::string::npos);
}

TEST(SubstrateSelection, OverArityTargetsAreRefused) {
  constexpr const char *WideSource =
      ".decl wide(a:number, b:number, c:number, d:number, e:number, "
      "f:number, g:number, h:number, i:number)\n"
      ".decl out(a:number)\n"
      "out(a) :- wide(a, _, _, _, _, _, _, _, _).\n";
  core::CompileOptions Options;
  Options.SubstrateOverrides["wide"] = "art"; // arity 9 > portfolio limit 8
  auto Prog = core::Program::fromSource(WideSource, nullptr, Options);
  ASSERT_NE(Prog, nullptr);
  EXPECT_TRUE(Prog->getSubstrateDecisions().empty());
  EXPECT_NE(Prog->dumpRam().find("structure btree"), std::string::npos);
}

TEST(SubstrateSelection, V1FeedbackSeedsSipsButSelectsNothing) {
  const std::string V1 =
      "{\"schema\": \"stird-profile-v1\", \"relations\": ["
      "{\"name\": \"edge\", \"final_size\": 500, \"peak_size\": 500},"
      "{\"name\": \"path\", \"final_size\": 1000, \"peak_size\": 1000}]}";
  std::string Error;
  auto Feedback = translate::ProfileFeedback::fromJson(V1, &Error);
  ASSERT_NE(Feedback, nullptr) << Error;
  EXPECT_FALSE(Feedback->hasAccessPatterns());
  core::CompileOptions Options;
  Options.Sips = translate::SipsStrategy::Profile;
  Options.Feedback = Feedback.get();
  auto Prog = core::Program::fromSource(TcSource, nullptr, Options);
  ASSERT_NE(Prog, nullptr);
  EXPECT_TRUE(Prog->getSubstrateDecisions().empty());
}

TEST(SubstrateSelection, MalformedFeedbackFileDegradesToMaxBound) {
  core::CompileOptions Options;
  Options.Sips = translate::SipsStrategy::Profile;
  Options.FeedbackPath = "/nonexistent/profile.json";
  auto Prog = core::Program::fromSource(TcSource, nullptr, Options);
  ASSERT_NE(Prog, nullptr); // warned, never aborted
  EXPECT_TRUE(Prog->getSubstrateDecisions().empty());
}

TEST(SubstrateSelection, StaleFeedbackSelectsNothing) {
  // A v2 document covering none of this program's relations: the sips
  // degradation nulls the feedback, so substrate selection sees none.
  const std::string Stale =
      "{\"schema\": \"stird-profile-v2\", \"relations\": ["
      "{\"name\": \"other\", \"final_size\": 1000, \"peak_size\": 1000, "
      "\"col0_min\": 0, \"col0_max\": 999, "
      "\"point_lookups\": 10000, \"range_scans\": 1}]}";
  std::string Error;
  auto Feedback = translate::ProfileFeedback::fromJson(Stale, &Error);
  ASSERT_NE(Feedback, nullptr) << Error;
  core::CompileOptions Options;
  Options.Sips = translate::SipsStrategy::Profile;
  Options.Feedback = Feedback.get();
  auto Prog = core::Program::fromSource(TcSource, nullptr, Options);
  ASSERT_NE(Prog, nullptr);
  EXPECT_TRUE(Prog->getSubstrateDecisions().empty());
}

//===----------------------------------------------------------------------===//
// The selected substrate actually runs
//===----------------------------------------------------------------------===//

TEST(SubstrateSelection, SelectedArtProgramComputesTheSameClosure) {
  auto Reference = core::Program::fromSource(TcSource);
  ASSERT_NE(Reference, nullptr);
  auto Selected = compileWithFeedback(v2Profile(0, 5000, 10000, 10));
  ASSERT_NE(Selected, nullptr);
  ASSERT_EQ(Selected->getSubstrateDecisions().count("path"), 1u);

  std::vector<DynTuple> Edges;
  for (RamDomain I = 0; I < 50; ++I)
    Edges.push_back({I, (I + 1) % 50});
  auto run = [&](core::Program &Prog) {
    interp::EngineOptions Opts;
    Opts.EchoPrintSize = false;
    auto Engine = Prog.makeEngine(Opts);
    Engine->insertTuples("edge", Edges);
    Engine->run();
    auto Tuples = Engine->getTuples("path");
    std::sort(Tuples.begin(), Tuples.end());
    return Tuples;
  };
  EXPECT_EQ(run(*Reference), run(*Selected));
}

} // namespace
