//===- tests/core/ProgramTest.cpp - Facade tests -------------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "core/Program.h"

#include <gtest/gtest.h>

#include <fstream>

using namespace stird;
using namespace stird::core;

namespace {

TEST(ProgramTest, FromSourceCompiles) {
  auto Prog = Program::fromSource(
      ".decl a(x:number)\n.decl b(x:number)\nb(x) :- a(x).");
  ASSERT_NE(Prog, nullptr);
  EXPECT_NE(Prog->getRam().findRelation("a"), nullptr);
  EXPECT_NE(Prog->getRam().findRelation("b"), nullptr);
}

TEST(ProgramTest, ParseErrorsReported) {
  std::vector<std::string> Errors;
  auto Prog = Program::fromSource(".decl a(x:number\n", &Errors);
  EXPECT_EQ(Prog, nullptr);
  EXPECT_FALSE(Errors.empty());
}

TEST(ProgramTest, SemanticErrorsReported) {
  std::vector<std::string> Errors;
  auto Prog =
      Program::fromSource(".decl a(x:number)\na(y) :- a(x).", &Errors);
  EXPECT_EQ(Prog, nullptr);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("ungrounded"), std::string::npos);
}

TEST(ProgramTest, FromFile) {
  const std::string Path = ::testing::TempDir() + "/prog_test.dl";
  {
    std::ofstream Out(Path);
    Out << ".decl a(x:number)\na(7).\n";
  }
  auto Prog = Program::fromFile(Path);
  ASSERT_NE(Prog, nullptr);
  auto E = Prog->makeEngine();
  E->run();
  EXPECT_EQ(E->getTuples("a"), (std::vector<DynTuple>{{7}}));
}

TEST(ProgramTest, FromFileMissing) {
  std::vector<std::string> Errors;
  auto Prog = Program::fromFile("/nonexistent/prog.dl", &Errors);
  EXPECT_EQ(Prog, nullptr);
  EXPECT_FALSE(Errors.empty());
}

TEST(ProgramTest, DumpRamRendersProgram) {
  auto Prog = Program::fromSource(
      ".decl e(a:number, b:number)\n.decl p(a:number, b:number)\n"
      "p(x, y) :- e(x, y).\np(x, z) :- p(x, y), e(y, z).");
  ASSERT_NE(Prog, nullptr);
  std::string Text = Prog->dumpRam();
  EXPECT_NE(Text.find("RELATION p"), std::string::npos);
  EXPECT_NE(Text.find("LOOP"), std::string::npos);
}

TEST(ProgramTest, MultipleEnginesFromOneProgram) {
  auto Prog = Program::fromSource(
      ".decl a(x:number)\n.decl b(x:number)\nb(x + 1) :- a(x).");
  ASSERT_NE(Prog, nullptr);
  auto E1 = Prog->makeEngine();
  E1->insertTuples("a", {{1}});
  E1->run();
  auto E2 = Prog->makeEngine();
  E2->insertTuples("a", {{10}, {20}});
  E2->run();
  EXPECT_EQ(E1->getTuples("b"), (std::vector<DynTuple>{{2}}));
  EXPECT_EQ(E2->getTuples("b"), (std::vector<DynTuple>{{11}, {21}}));
}

TEST(ProgramTest, SymbolTableSharedAcrossPhases) {
  auto Prog =
      Program::fromSource(".decl a(s:symbol)\na(\"compiled-in\").");
  ASSERT_NE(Prog, nullptr);
  auto E = Prog->makeEngine();
  E->run();
  auto Tuples = E->getTuples("a");
  ASSERT_EQ(Tuples.size(), 1u);
  EXPECT_EQ(Prog->getSymbolTable().resolve(Tuples[0][0]), "compiled-in");
}

} // namespace
