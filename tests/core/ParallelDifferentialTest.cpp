//===- tests/core/ParallelDifferentialTest.cpp - Thread-count invariance -------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel evaluator's correctness contract: for every program —
/// the example programs of examples/ and miniature instances of the
/// vpc/ddisasm/doop workload suites — every backend must produce exactly
/// the same sorted relation contents at -j1, -j2 and -j4, and -j1 must
/// match the sequential seed engine (thread count unset) bit for bit.
/// On a single-core container this is the headline deliverable: verified
/// correctness under concurrency, not speedup.
///
/// Symbol columns are compared by *resolved string*, not by raw ordinal:
/// when workers intern concurrently the ordinal a string receives is
/// interleaving-dependent, so two correct runs may disagree on the raw
/// RamDomain values while agreeing on every fact. The same applies to
/// `$`-generated ids, whose subjects therefore observe only
/// interleaving-invariant projections (the dense id *set* and counts).
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "interp/Engine.h"
#include "workloads/Harness.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

using namespace stird;
using namespace stird::interp;

namespace {

/// One differential subject: a program, its observed relations, and an
/// input builder (which may intern symbols through the program's table).
struct Subject {
  std::string Name;
  std::string Source;
  std::vector<std::string> Outputs;
  std::function<std::vector<std::pair<std::string, std::vector<DynTuple>>>(
      core::Program &)>
      MakeInputs;
  /// Fact directory for programs with .input directives ("" = none).
  std::string FactDir;
};

//===----------------------------------------------------------------------===//
// The example programs (examples/*.cpp), at their original or small scale
//===----------------------------------------------------------------------===//

Subject quickstartSubject() {
  Subject S;
  S.Name = "quickstart";
  S.Source = R"(
    .decl parent(child:symbol, parent:symbol)
    .decl ancestor(person:symbol, ancestor:symbol)
    ancestor(c, p) :- parent(c, p).
    ancestor(c, a) :- ancestor(c, p), parent(p, a).
  )";
  S.Outputs = {"ancestor"};
  S.MakeInputs = [](core::Program &Prog) {
    SymbolTable &Symbols = Prog.getSymbolTable();
    std::vector<DynTuple> Parents;
    // A generation chain plus a second family joining it halfway.
    for (int I = 0; I + 1 < 24; ++I)
      Parents.push_back({Symbols.intern("p" + std::to_string(I)),
                         Symbols.intern("p" + std::to_string(I + 1))});
    for (int I = 0; I < 8; ++I)
      Parents.push_back({Symbols.intern("q" + std::to_string(I)),
                         Symbols.intern(I == 7 ? "p12"
                                               : "q" + std::to_string(I + 1))});
    return std::vector<std::pair<std::string, std::vector<DynTuple>>>{
        {"parent", Parents}};
  };
  return S;
}

Subject reachabilitySubject() {
  Subject S;
  S.Name = "reachability";
  S.Source = R"(
    .decl in_subnet(inst:number, subnet:number)
    .decl subnet_link(a:number, b:number)
    .decl allows(inst:number, port:number)
    .decl listens(inst:number, port:number)

    .decl subnet_reach(a:number, b:number)
    subnet_reach(a, b) :- subnet_link(a, b).
    subnet_reach(a, c) :- subnet_reach(a, b), subnet_link(b, c).

    .decl can_talk(a:number, b:number, port:number)
    can_talk(a, b, p) :-
        in_subnet(a, sa), in_subnet(b, sb), subnet_reach(sa, sb),
        allows(a, p), listens(b, p), a != b.

    .decl exposed(b:number)
    exposed(b) :- can_talk(_, b, 22).
  )";
  S.Outputs = {"subnet_reach", "can_talk", "exposed"};
  S.MakeInputs = [](core::Program &) {
    std::vector<DynTuple> InSubnet, Links, Allows, Listens;
    constexpr RamDomain NumSubnets = 10, NumInstances = 60;
    for (RamDomain I = 0; I < NumInstances; ++I) {
      InSubnet.push_back({I, I % NumSubnets});
      Allows.push_back({I, 20 + I % 6});
      Listens.push_back({I, 20 + (I * 3) % 6});
    }
    for (RamDomain Sub = 0; Sub < NumSubnets; ++Sub) {
      Links.push_back({Sub, (Sub + 1) % NumSubnets});
      if (Sub % 3 == 0)
        Links.push_back({Sub, (Sub + 4) % NumSubnets});
    }
    return std::vector<std::pair<std::string, std::vector<DynTuple>>>{
        {"in_subnet", InSubnet},
        {"subnet_link", Links},
        {"allows", Allows},
        {"listens", Listens}};
  };
  return S;
}

Subject dataflowSubject() {
  Subject S;
  S.Name = "dataflow";
  S.Source = R"(
    .decl def(b:number, v:number)
    .decl use(b:number, v:number)
    .decl succ(a:number, b:number)

    .decl reach(d:number, v:number, b:number)
    reach(d, v, d) :- def(d, v).
    reach(d, v, b) :- reach(d, v, a), succ(a, b), !def(b, v).

    .decl live_use(b:number, v:number, d:number)
    live_use(b, v, d) :- use(b, v), reach(d, v, b).

    .decl undefined_use(b:number, v:number)
    undefined_use(b, v) :- use(b, v), !live_use(b, v, _).

    .decl fanin(b:number, v:number, n:number)
    fanin(b, v, n) :- use(b, v), n = count : { live_use(b, v, _) }.
  )";
  S.Outputs = {"reach", "live_use", "undefined_use", "fanin"};
  S.MakeInputs = [](core::Program &) {
    std::vector<DynTuple> Defs, Uses, Succs;
    constexpr RamDomain NumBlocks = 40, NumVars = 6;
    for (RamDomain B = 0; B + 1 < NumBlocks; ++B) {
      Succs.push_back({B, B + 1});
      if (B % 5 == 0 && B + 3 < NumBlocks)
        Succs.push_back({B, B + 3});
    }
    for (RamDomain B = 0; B < NumBlocks; ++B) {
      if (B % 3 == 0)
        Defs.push_back({B, B % NumVars});
      if (B % 2 == 0)
        Uses.push_back({B, (B + 1) % NumVars});
    }
    return std::vector<std::pair<std::string, std::vector<DynTuple>>>{
        {"def", Defs}, {"use", Uses}, {"succ", Succs}};
  };
  return S;
}

Subject pointstoSubject() {
  Subject S;
  S.Name = "pointsto";
  S.Source = R"(
    .decl new_(v:number, o:number)
    .decl assign(v:number, w:number)
    .decl store(v:number, f:number, w:number)
    .decl load(v:number, w:number, f:number)

    .decl vpt(v:number, o:number)
    .decl hpt(o:number, f:number, p:number)

    vpt(v, o) :- new_(v, o).
    vpt(v, o) :- assign(v, w), vpt(w, o).
    hpt(o, f, p) :- store(v, f, w), vpt(v, o), vpt(w, p).
    vpt(v, p) :- load(v, w, f), vpt(w, o), hpt(o, f, p).
  )";
  S.Outputs = {"vpt", "hpt"};
  S.MakeInputs = [](core::Program &) {
    std::vector<DynTuple> News, Assigns, Stores, Loads;
    constexpr RamDomain NumVars = 50;
    for (RamDomain V = 0; V < NumVars; V += 3)
      News.push_back({V, V / 3});
    for (RamDomain V = 0; V + 1 < NumVars; ++V)
      if (V % 4 != 0)
        Assigns.push_back({V + 1, V});
    for (RamDomain V = 0; V < NumVars; V += 7) {
      Stores.push_back({V, 0, (V + 5) % NumVars});
      Loads.push_back({(V + 9) % NumVars, V, 0});
    }
    return std::vector<std::pair<std::string, std::vector<DynTuple>>>{
        {"new_", News},
        {"assign", Assigns},
        {"store", Stores},
        {"load", Loads}};
  };
  return S;
}

Subject securitySubject() {
  Subject S;
  S.Name = "security_analysis";
  S.Source = R"(
    .decl Unsafe(b:symbol)
    .decl Edge(a:symbol, b:symbol)
    .decl Protect(b:symbol)
    .decl Vulnerable(b:symbol)
    .decl Violation(b:symbol)
    Unsafe("while").
    Unsafe(y) :- Unsafe(x), Edge(x, y), !Protect(y).
    Violation(x) :- Vulnerable(x), Unsafe(x).
  )";
  S.Outputs = {"Unsafe", "Violation"};
  S.MakeInputs = [](core::Program &Prog) {
    SymbolTable &Symbols = Prog.getSymbolTable();
    auto Block = [&](int I) {
      return Symbols.intern("block" + std::to_string(I));
    };
    constexpr int NumBlocks = 60;
    std::vector<DynTuple> Edges, Protects, Vulnerables;
    Edges.push_back({Symbols.intern("while"), Block(0)});
    for (int I = 0; I + 1 < NumBlocks; ++I) {
      Edges.push_back({Block(I), Block(I + 1)});
      if (I % 7 == 0 && I + 3 < NumBlocks)
        Edges.push_back({Block(I), Block(I + 3)});
      if (I % 11 == 5)
        Protects.push_back({Block(I)});
      if (I % 5 == 2)
        Vulnerables.push_back({Block(I)});
    }
    return std::vector<std::pair<std::string, std::vector<DynTuple>>>{
        {"Edge", Edges}, {"Protect", Protects}, {"Vulnerable", Vulnerables}};
  };
  return S;
}

//===----------------------------------------------------------------------===//
// Lifted-fallback subjects: programs the parallel evaluator used to run
// sequentially (interning functors, `$`, equivalence relations) and now
// partitions across workers.
//===----------------------------------------------------------------------===//

/// Workers intern new strings via `cat` inside a recursive parallel
/// section: path labels over a DAG. Exercises concurrent SymbolTable
/// intern/resolve; correctness is judged on resolved strings.
Subject internSubject() {
  Subject S;
  S.Name = "intern_path_labels";
  S.Source = R"(
    .decl edge(a:symbol, b:symbol)
    .decl path(a:symbol, b:symbol, label:symbol)
    path(a, b, cat(a, cat("->", b))) :- edge(a, b).
    path(a, c, cat(l, cat("->", c))) :- path(a, b, l), edge(b, c).
  )";
  S.Outputs = {"path"};
  S.MakeInputs = [](core::Program &Prog) {
    SymbolTable &Symbols = Prog.getSymbolTable();
    auto Node = [&](int I) { return Symbols.intern("n" + std::to_string(I)); };
    std::vector<DynTuple> Edges;
    // A chain with sparse shortcut edges: enough distinct paths that every
    // worker partition interns fresh labels.
    constexpr int NumNodes = 14;
    for (int I = 0; I + 1 < NumNodes; ++I) {
      Edges.push_back({Node(I), Node(I + 1)});
      if (I % 4 == 0 && I + 2 < NumNodes)
        Edges.push_back({Node(I), Node(I + 2)});
    }
    return std::vector<std::pair<std::string, std::vector<DynTuple>>>{
        {"edge", Edges}};
  };
  return S;
}

/// Workers draw `$` ids concurrently. Which row receives which id is
/// thread-order-dependent, so `tagged` itself is deliberately *not*
/// observed — only the id set (dense 0..N-1 regardless of interleaving)
/// and its count.
Subject counterSubject() {
  Subject S;
  S.Name = "counter_dense_ids";
  S.Source = R"(
    .decl item(x:number)
    .decl tagged(id:number, x:number)
    tagged($, x) :- item(x).
    .decl ids(i:number)
    ids(i) :- tagged(i, _).
    .decl num_ids(n:number)
    num_ids(n) :- n = count : { ids(_) }.
  )";
  S.Outputs = {"ids", "num_ids"};
  S.MakeInputs = [](core::Program &) {
    std::vector<DynTuple> Items;
    for (RamDomain I = 0; I < 64; ++I)
      Items.push_back({I * 3});
    return std::vector<std::pair<std::string, std::vector<DynTuple>>>{
        {"item", Items}};
  };
  return S;
}

/// A recursive equivalence relation plus a rule that scans it: exercises
/// the naive eqrel fixpoint under partitioned workers (concurrent
/// findRoot/path compression) and the eqrel partition streams.
Subject eqrelSubject() {
  Subject S;
  S.Name = "eqrel_components";
  S.Source = R"(
    .decl link(a:number, b:number)
    .decl seed(a:number, b:number)
    .decl same(a:number, b:number) eqrel
    same(a, b) :- link(a, b).
    same(b, c) :- same(a, b), seed(a, c).
    .decl rep(a:number, b:number)
    rep(a, b) :- same(a, b), a <= b.
    .decl class_size(a:number, n:number)
    class_size(a, n) :- same(a, a), n = count : { rep(a, _) }.
  )";
  S.Outputs = {"same", "rep", "class_size"};
  S.MakeInputs = [](core::Program &) {
    std::vector<DynTuple> Links, Seeds;
    // Three chains of ten values each, plus seed edges that splice the
    // second chain into the first during the fixpoint.
    for (RamDomain Base : {0, 100, 200})
      for (RamDomain I = 0; I < 9; ++I)
        Links.push_back({Base + I, Base + I + 1});
    Seeds.push_back({5, 100});
    Seeds.push_back({205, 207});
    return std::vector<std::pair<std::string, std::vector<DynTuple>>>{
        {"link", Links}, {"seed", Seeds}};
  };
  return S;
}

/// A symbol-flavored miniature doop: the pointsto kernel over interned
/// variable/object names, with a label rule that makes workers intern
/// during the recursive points-to fixpoint itself.
Subject doopSymbolSubject() {
  Subject S;
  S.Name = "doop_symbols";
  S.Source = R"(
    .decl new_(v:symbol, o:symbol)
    .decl assign(v:symbol, w:symbol)
    .decl store(v:symbol, f:symbol, w:symbol)
    .decl load(v:symbol, w:symbol, f:symbol)

    .decl vpt(v:symbol, o:symbol)
    .decl hpt(o:symbol, f:symbol, p:symbol)
    vpt(v, o) :- new_(v, o).
    vpt(v, o) :- assign(v, w), vpt(w, o).
    hpt(o, f, p) :- store(v, f, w), vpt(v, o), vpt(w, p).
    vpt(v, p) :- load(v, w, f), vpt(w, o), hpt(o, f, p).

    .decl alias(v:symbol, w:symbol, o:symbol)
    alias(v, w, o) :- vpt(v, o), vpt(w, o), v != w.
    .decl vpt_label(l:symbol)
    vpt_label(cat(v, cat("=>", o))) :- vpt(v, o).
  )";
  S.Outputs = {"vpt", "hpt", "alias", "vpt_label"};
  S.MakeInputs = [](core::Program &Prog) {
    SymbolTable &Symbols = Prog.getSymbolTable();
    auto Var = [&](int I) { return Symbols.intern("v" + std::to_string(I)); };
    auto Obj = [&](int I) { return Symbols.intern("o" + std::to_string(I)); };
    const RamDomain F = Symbols.intern("f");
    std::vector<DynTuple> News, Assigns, Stores, Loads;
    constexpr int NumVars = 40;
    for (int V = 0; V < NumVars; V += 3)
      News.push_back({Var(V), Obj(V / 3)});
    for (int V = 0; V + 1 < NumVars; ++V)
      if (V % 4 != 0)
        Assigns.push_back({Var(V + 1), Var(V)});
    for (int V = 0; V < NumVars; V += 7) {
      Stores.push_back({Var(V), F, Var((V + 5) % NumVars)});
      Loads.push_back({Var((V + 9) % NumVars), Var(V), F});
    }
    return std::vector<std::pair<std::string, std::vector<DynTuple>>>{
        {"new_", News},
        {"assign", Assigns},
        {"store", Stores},
        {"load", Loads}};
  };
  return S;
}

//===----------------------------------------------------------------------===//
// Miniature vpc/ddisasm/doop workloads (bench/workloads generators)
//===----------------------------------------------------------------------===//

/// Input-fact files for the tiny workloads, materialized once.
const bench::Workload &tinyWorkload(std::size_t Index) {
  static const std::vector<bench::Workload> Suites = bench::tinySuites();
  return Suites.at(Index);
}

Subject workloadSubject(std::size_t Index) {
  static bench::Harness SharedHarness("stird_bench_cache", /*Repetitions=*/1);
  const bench::Workload &W = tinyWorkload(Index);
  Subject S;
  S.Name = W.Suite + "_" + W.Name;
  for (char &C : S.Name)
    if (C == '-')
      C = '_';
  S.Source = W.Source;
  S.FactDir = SharedHarness.materializeFacts(W);
  // Observe every declared relation (the internal delta_/new_ temporaries
  // are cleared by the fixpoint epilogue and compare trivially).
  S.MakeInputs = [](core::Program &) {
    return std::vector<std::pair<std::string, std::vector<DynTuple>>>{};
  };
  return S;
}

std::vector<Subject> subjects() {
  std::vector<Subject> Result = {
      quickstartSubject(),  reachabilitySubject(), dataflowSubject(),
      pointstoSubject(),    securitySubject(),     internSubject(),
      counterSubject(),     eqrelSubject(),        doopSymbolSubject()};
  for (std::size_t I = 0; I < 3; ++I)
    Result.push_back(workloadSubject(I));
  return Result;
}

constexpr std::size_t NumSubjects = 12;

//===----------------------------------------------------------------------===//
// The differential harness
//===----------------------------------------------------------------------===//

struct RunResult {
  /// Relation name -> sorted contents, with symbol columns resolved to
  /// their strings (ordinal assignment is interleaving-dependent when
  /// workers intern concurrently; the strings are the ground truth).
  std::vector<std::pair<std::string, std::vector<std::vector<std::string>>>>
      Relations;
  /// .printsize results, in execution order.
  std::vector<std::pair<std::string, std::size_t>> PrintSizes;

  bool operator==(const RunResult &) const = default;
};

/// Renders a relation's tuples with symbol ordinals resolved, re-sorted
/// (string order need not match ordinal order).
std::vector<std::vector<std::string>>
resolveTuples(core::Program &Prog, const std::string &Name,
              const std::vector<DynTuple> &Tuples) {
  const ram::Relation *Rel = nullptr;
  for (const auto &Candidate : Prog.getRam().getRelations())
    if (Candidate->getName() == Name)
      Rel = Candidate.get();
  EXPECT_NE(Rel, nullptr) << "unknown relation " << Name;
  const SymbolTable &Symbols = Prog.getSymbolTable();
  std::vector<std::vector<std::string>> Result;
  Result.reserve(Tuples.size());
  for (const DynTuple &Tuple : Tuples) {
    std::vector<std::string> Row;
    Row.reserve(Tuple.size());
    for (std::size_t I = 0; I < Tuple.size(); ++I)
      if (Rel && Rel->getColumnTypes()[I] == ColumnTypeKind::Symbol)
        Row.push_back(Symbols.resolve(Tuple[I]));
      else
        Row.push_back(std::to_string(Tuple[I]));
    Result.push_back(std::move(Row));
  }
  std::sort(Result.begin(), Result.end());
  return Result;
}

/// Runs a subject once. NumThreads 0 means "leave EngineOptions at the
/// seed default" — the exact configuration the sequential engine shipped
/// with.
RunResult runSubject(const Subject &S, Backend TheBackend,
                     std::size_t NumThreads) {
  std::vector<std::string> Errors;
  auto Prog = core::Program::fromSource(S.Source, &Errors);
  EXPECT_NE(Prog, nullptr) << S.Name << ": "
                           << (Errors.empty() ? "" : Errors[0]);
  if (!Prog)
    return {};
  EngineOptions Options;
  Options.TheBackend = TheBackend;
  Options.NumThreads = NumThreads;
  Options.EchoPrintSize = false;
  if (!S.FactDir.empty())
    Options.FactDir = S.FactDir;
  auto Engine = Prog->makeEngine(Options);
  for (const auto &[Rel, Tuples] : S.MakeInputs(*Prog))
    Engine->insertTuples(Rel, Tuples);
  Engine->run();

  RunResult Result;
  if (!S.Outputs.empty()) {
    for (const std::string &Rel : S.Outputs)
      Result.Relations.emplace_back(
          Rel, resolveTuples(*Prog, Rel, Engine->getTuples(Rel)));
  } else {
    for (const auto &Rel : Prog->getRam().getRelations())
      Result.Relations.emplace_back(
          Rel->getName(), resolveTuples(*Prog, Rel->getName(),
                                        Engine->getTuples(Rel->getName())));
  }
  Result.PrintSizes = Engine->getPrintSizes();
  return Result;
}

class ParallelDifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

Backend backendOf(int Index) {
  switch (Index) {
  case 0:
    return Backend::StaticLambda;
  case 1:
    return Backend::StaticPlain;
  case 2:
    return Backend::DynamicAdapter;
  default:
    return Backend::Legacy;
  }
}

const char *backendName(int Index) {
  switch (Index) {
  case 0:
    return "StaticLambda";
  case 1:
    return "StaticPlain";
  case 2:
    return "DynamicAdapter";
  default:
    return "Legacy";
  }
}

TEST_P(ParallelDifferentialTest, ThreadCountsProduceIdenticalResults) {
  auto [SubjectIndex, BackendIndex] = GetParam();
  const Subject S = subjects()[SubjectIndex];
  const Backend TheBackend = backendOf(BackendIndex);

  // The seed configuration: thread count left unset.
  RunResult Seed = runSubject(S, TheBackend, 0);
  bool AnyTuples = false;
  for (const auto &[Rel, Tuples] : Seed.Relations)
    AnyTuples = AnyTuples || !Tuples.empty();
  EXPECT_TRUE(AnyTuples) << S.Name << " produced no tuples at all";

  for (std::size_t NumThreads : {1u, 2u, 4u}) {
    RunResult Parallel = runSubject(S, TheBackend, NumThreads);
    ASSERT_EQ(Parallel.Relations.size(), Seed.Relations.size());
    for (std::size_t I = 0; I < Seed.Relations.size(); ++I)
      EXPECT_EQ(Parallel.Relations[I], Seed.Relations[I])
          << S.Name << " relation " << Seed.Relations[I].first
          << " differs from the sequential seed at -j" << NumThreads
          << " on " << backendName(BackendIndex);
    EXPECT_EQ(Parallel.PrintSizes, Seed.PrintSizes)
        << S.Name << " printsize results differ at -j" << NumThreads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Subjects, ParallelDifferentialTest,
    ::testing::Combine(::testing::Range(0, static_cast<int>(NumSubjects)),
                       ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>> &Info) {
      static const std::vector<Subject> All = subjects();
      return All[std::get<0>(Info.param)].Name + "_" +
             backendName(std::get<1>(Info.param));
    });

/// Guards against the differential suite becoming vacuous: at -j4 the
/// generated interpreter trees must actually contain parallel scan nodes
/// for the recursive subjects.
TEST(ParallelDifferentialTest, ParallelNodesAreGenerated) {
  for (const Subject &S : subjects()) {
    auto Prog = core::Program::fromSource(S.Source);
    ASSERT_NE(Prog, nullptr) << S.Name;
    EngineOptions Options;
    Options.NumThreads = 4;
    auto Engine = Prog->makeEngine(Options);
    EXPECT_NE(Engine->dumpTree().find("ParallelScan"), std::string::npos)
        << S.Name << ": no scan was parallelized at -j4";
  }
}

/// core::Program's default thread count is substituted when the engine
/// options leave NumThreads unset, and must be just as invariant.
TEST(ParallelDifferentialTest, ProgramLevelThreadKnob) {
  const Subject S = reachabilitySubject();
  auto RunWithDefault = [&](std::size_t NumThreads) {
    auto Prog = core::Program::fromSource(S.Source);
    EXPECT_NE(Prog, nullptr);
    Prog->setNumThreads(NumThreads);
    EXPECT_EQ(Prog->getNumThreads(), NumThreads);
    EngineOptions Options;
    Options.EchoPrintSize = false;
    auto Engine = Prog->makeEngine(Options);
    for (const auto &[Rel, Tuples] : S.MakeInputs(*Prog))
      Engine->insertTuples(Rel, Tuples);
    Engine->run();
    return Engine->getTuples("can_talk");
  };
  auto Reference = RunWithDefault(1);
  EXPECT_FALSE(Reference.empty());
  EXPECT_EQ(RunWithDefault(2), Reference);
  EXPECT_EQ(RunWithDefault(4), Reference);
}

} // namespace
