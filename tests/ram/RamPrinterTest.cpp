//===- tests/ram/RamPrinterTest.cpp - RAM dump coverage ------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Round-trip coverage of the RAM printer: one kitchen-sink program whose
/// translation exercises every Statement, Operation, Expression and
/// Condition kind, asserted against the textual dump. Guards against a
/// newly added RAM construct silently printing nothing (the audit that
/// found the parallel interpreter nodes missing from early dumps).
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "ram/RamPrinter.h"

#include <gtest/gtest.h>

using namespace stird;

namespace {

/// Exercises: recursion (LOOP/BREAK/SWAP/MERGE/CLEAR), io directives
/// (LOAD/STORE/PRINTSIZE), `$` (autoinc), functors, negation, constraints,
/// aggregates (undef pattern columns) and an equivalence relation.
constexpr const char *KitchenSink = R"(
  .decl edge(a:number, b:number)
  .decl item(x:number)
  .decl path(a:number, b:number)
  .decl same(a:number, b:number) eqrel
  .decl tagged(id:number, x:number)
  .decl labeled(s:symbol)
  .decl blocked(x:number)
  .decl cnt(n:number)
  .input edge
  .output path
  .printsize path
  path(x, y) :- edge(x, y).
  path(x, z) :- path(x, y), edge(y, z).
  same(a, b) :- edge(a, b).
  tagged($, x) :- item(x).
  labeled(cat("p", to_string(x))) :- item(x).
  blocked(x) :- item(x), !edge(x, x), x < 50.
  cnt(n) :- n = count : { item(_) }.
)";

TEST(RamPrinterTest, EveryStatementKindPrints) {
  auto Prog = core::Program::fromSource(KitchenSink);
  ASSERT_NE(Prog, nullptr);
  const std::string Dump = Prog->dumpRam();

  // Relation headers (with declared index orders).
  EXPECT_NE(Dump.find("RELATION path arity 2"), std::string::npos);

  // Statement kinds. Sequence is implicit (no marker of its own).
  for (const char *Token :
       {"LOOP", "END LOOP", "BREAK", "QUERY", "CLEAR", "SWAP (", "MERGE ",
        "LOAD edge", "STORE path", "PRINTSIZE path", "TIMER \"",
        "END TIMER"})
    EXPECT_NE(Dump.find(Token), std::string::npos) << "missing " << Token;

  // Operation kinds.
  for (const char *Token :
       {"FOR t", " IN ", " ON INDEX ", "IF ", "INSERT ", " INTO ",
        "= AGGREGATE OVER "})
    EXPECT_NE(Dump.find(Token), std::string::npos) << "missing " << Token;

  // Expression kinds: constants, tuple elements, intrinsics, autoinc and
  // the undef wildcard inside the aggregate pattern.
  for (const char *Token : {"t0.0", "cat(", "to_string(", "autoinc()", "_"})
    EXPECT_NE(Dump.find(Token), std::string::npos) << "missing " << Token;

  // Condition kinds: the exit's emptiness check, the negated existence
  // check and the comparison constraint.
  for (const char *Token : {"= EMPTY)", "(NOT ", " IN edge)", " < "})
    EXPECT_NE(Dump.find(Token), std::string::npos) << "missing " << Token;
}

TEST(RamPrinterTest, ConjunctionAndStandaloneConditionPrint) {
  auto Prog = core::Program::fromSource(
      ".decl a(x:number, y:number)\n.decl b(x:number)\n"
      "b(x) :- a(x, y), x < y, y != 9.");
  ASSERT_NE(Prog, nullptr);
  const std::string Dump = Prog->dumpRam();
  // Both constraints survive translation; printed individually or as one
  // conjoined filter depending on condition placement.
  EXPECT_NE(Dump.find(" < "), std::string::npos);
  EXPECT_NE(Dump.find(" != "), std::string::npos);
}

} // namespace
