//===- tests/ram/TransformsTest.cpp - RAM optimization tests -------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "ram/Transforms.h"

#include "ast/Parser.h"
#include "ast/SemanticAnalysis.h"
#include "core/Program.h"
#include "ram/RamPrinter.h"
#include "translate/AstToRam.h"

#include <gtest/gtest.h>

using namespace stird;
using namespace stird::ram;

namespace {

/// Translates without the core facade so the RAM is unoptimized.
struct RawTranslation {
  std::unique_ptr<ram::Program> Prog;
  // Held by pointer: the concurrency-safe SymbolTable is neither copyable
  // nor movable, but this fixture is returned by value.
  std::unique_ptr<SymbolTable> SymbolsPtr = std::make_unique<SymbolTable>();
  SymbolTable &symbols() { return *SymbolsPtr; }
};

RawTranslation translateRaw(const std::string &Source) {
  RawTranslation Result;
  auto Parsed = ast::parseProgram(Source);
  EXPECT_TRUE(Parsed.succeeded());
  auto Info = ast::analyze(*Parsed.Prog);
  EXPECT_TRUE(Info.succeeded());
  auto Translated =
      translate::translateToRam(*Parsed.Prog, Info, Result.symbols());
  EXPECT_TRUE(Translated.succeeded());
  Result.Prog = std::move(Translated.Prog);
  return Result;
}

TEST(TransformsTest, FoldsConstantArithmetic) {
  auto T = translateRaw(".decl a(x:number)\n.decl b(x:number)\n"
                        "b(x + (2 * 3 + 4)) :- a(x).");
  std::string Before = print(*T.Prog);
  EXPECT_NE(Before.find("mul(2, 3)"), std::string::npos);

  TransformStats Stats = foldConstants(*T.Prog, T.symbols());
  EXPECT_GE(Stats.FoldedExpressions, 2u); // 2*3 and 6+4
  std::string After = print(*T.Prog);
  EXPECT_EQ(After.find("mul"), std::string::npos);
  EXPECT_NE(After.find("add(t0.0, 10)"), std::string::npos);
}

TEST(TransformsTest, FoldsConstantStringFunctors) {
  auto T = translateRaw(".decl a(x:number)\n.decl b(s:symbol, n:number)\n"
                        "b(cat(\"foo\", \"bar\"), strlen(\"four\")) :- "
                        "a(_).");
  TransformStats Stats = foldConstants(*T.Prog, T.symbols());
  EXPECT_GE(Stats.FoldedExpressions, 2u);
  // The folded cat result is interned.
  EXPECT_GE(T.symbols().lookup("foobar"), 0);
  std::string After = print(*T.Prog);
  // The rule *label* still spells cat(...); the executable body after
  // QUERY must not.
  std::size_t Body = After.find("QUERY");
  ASSERT_NE(Body, std::string::npos);
  EXPECT_EQ(After.find("cat(", Body), std::string::npos);
  EXPECT_NE(After.find(",4) INTO b"), std::string::npos);
}

TEST(TransformsTest, FoldsTrueConstraintsAwayEntirely) {
  auto T = translateRaw(".decl a(x:number)\n.decl b(x:number)\n"
                        "b(x) :- a(x), 1 < 2, 3 = 3.");
  TransformStats Stats = foldConstants(*T.Prog, T.symbols());
  EXPECT_GE(Stats.FoldedConditions, 2u);
  std::string After = print(*T.Prog);
  // Both filters vanish: the scan directly feeds the insert.
  EXPECT_EQ(After.find("IF (1 < 2)"), std::string::npos);
  EXPECT_EQ(After.find("IF (3 = 3)"), std::string::npos);
}

TEST(TransformsTest, NeverTrueConstraintIsKept) {
  auto T = translateRaw(".decl a(x:number)\n.decl b(x:number)\n"
                        "b(x) :- a(x), 2 < 1.");
  foldConstants(*T.Prog, T.symbols());
  std::string After = print(*T.Prog);
  // Dead rule: the never-true filter survives (documented behavior).
  EXPECT_NE(After.find("IF (2 < 1)"), std::string::npos);
}

TEST(TransformsTest, MergesFilterChains) {
  auto T = translateRaw(
      ".decl a(x:number, y:number)\n.decl b(x:number)\n"
      "b(x) :- a(x, y), x < y, x != 3, y != 7, x + y < 100.");
  std::string Before = print(*T.Prog);
  // Four separate filters before merging.
  std::size_t FiltersBefore = 0;
  for (std::size_t Pos = Before.find("IF "); Pos != std::string::npos;
       Pos = Before.find("IF ", Pos + 1))
    ++FiltersBefore;
  EXPECT_GE(FiltersBefore, 4u);

  std::size_t Merged = mergeAdjacentFilters(*T.Prog);
  EXPECT_EQ(Merged, 3u);
  std::string After = print(*T.Prog);
  EXPECT_NE(After.find(" AND "), std::string::npos);
}

TEST(TransformsTest, TransformsPreserveResults) {
  const std::string Source =
      ".decl e(a:number, b:number)\n.decl out(a:number, b:number)\n"
      ".decl tc(a:number, b:number)\n"
      "out(x + 1 * 2, y) :- e(x, y), x < y + 2 * 5, x != 2 + 1, "
      "y % (6 / 3) = 0.\n"
      "tc(x, y) :- e(x, y).\ntc(x, z) :- tc(x, y), e(y, z).";

  // Reference: unoptimized RAM executed directly.
  auto Raw = translateRaw(Source);
  auto RawIndexes = translate::selectIndexes(*Raw.Prog);
  interp::Engine RawEngine(*Raw.Prog, RawIndexes, Raw.symbols());
  std::vector<DynTuple> Edges;
  for (RamDomain I = 0; I < 40; ++I)
    Edges.push_back({I % 11, (I * 3) % 11});
  RawEngine.insertTuples("e", Edges);
  RawEngine.run();

  // Optimized: the core facade applies both passes.
  auto Optimized = core::Program::fromSource(Source);
  ASSERT_NE(Optimized, nullptr);
  auto Engine = Optimized->makeEngine();
  Engine->insertTuples("e", Edges);
  Engine->run();

  EXPECT_EQ(Engine->getTuples("out"), RawEngine.getTuples("out"));
  EXPECT_EQ(Engine->getTuples("tc"), RawEngine.getTuples("tc"));
  EXPECT_FALSE(Engine->getTuples("out").empty());
}

TEST(TransformsTest, MergedFiltersFuseIntoOneMicroProgram) {
  // With merging + fusion, a whole multi-conjunct filter costs one
  // dispatch: dispatch counts must drop strictly more than with fusion of
  // individual filters disabled.
  const std::string Source =
      ".decl a(x:number, y:number)\n.decl b(x:number)\n"
      "b(x) :- a(x, y), x < y, x != 3, y != 7, x + y < 100, "
      "(x band 1) = (y band 1).";
  auto Prog = core::Program::fromSource(Source);
  ASSERT_NE(Prog, nullptr);

  auto Run = [&](bool Fuse) {
    interp::EngineOptions Options;
    Options.FuseConditions = Fuse;
    auto Engine = Prog->makeEngine(Options);
    std::vector<DynTuple> Data;
    for (RamDomain I = 0; I < 200; ++I)
      Data.push_back({I % 23, (I * 7) % 23});
    Engine->insertTuples("a", Data);
    Engine->run();
    return std::pair(Engine->getTuples("b"), Engine->getNumDispatches());
  };
  auto [FusedTuples, FusedDispatches] = Run(true);
  auto [PlainTuples, PlainDispatches] = Run(false);
  EXPECT_EQ(FusedTuples, PlainTuples);
  EXPECT_LT(FusedDispatches, PlainDispatches);
}

} // namespace
