//===- tests/ram/CloneTest.cpp - Deep-clone audit ------------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The clone audit: every RAM node kind must survive clone() byte for byte
/// under the printer, over a kitchen-sink program exercising recursion
/// (Loop/Exit/Swap/MergeInto), negation (Negation/ExistenceCheck),
/// aggregates, constants and compound arguments (Intrinsic), IO directives
/// and printsize, and the planner's LogTimer annotations. cloneProgram()
/// additionally gets independence checks: fresh relations, no pointer
/// shared with the original, update statement and aux table included.
///
//===----------------------------------------------------------------------===//

#include "ram/Clone.h"

#include "core/Program.h"
#include "ram/RamPrinter.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace stird;

namespace {

/// Recursion, nonlinear recursion, negation, aggregates, arithmetic,
/// constants, repeated variables, wildcards, IO — one of everything the
/// translator can emit.
constexpr const char *KitchenSink = R"(
.decl edge(a:number, b:number)
.decl path(a:number, b:number)
.decl blocked(a:number)
.decl safe(a:number, b:number)
.decl stats(n:number, total:number)
.decl same(a:number)
.input edge
.output path
.printsize safe

blocked(3).
blocked(5).

path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), path(y, z).
safe(x, y) :- path(x, y), !blocked(y), x != y.
same(x) :- edge(x, x).
stats(n, t) :- n = count : { path(_, _) }, t = sum y : { edge(3, y) }.
)";

std::shared_ptr<core::Program> compile(const char *Source,
                                       bool EmitUpdate = false) {
  core::CompileOptions Options;
  Options.EmitUpdateProgram = EmitUpdate;
  std::vector<std::string> Errors;
  auto Prog = core::Program::fromSource(Source, &Errors, Options);
  EXPECT_NE(Prog, nullptr) << (Errors.empty() ? "" : Errors[0]);
  return Prog;
}

TEST(CloneTest, StatementCloneRoundTripsThroughPrinter) {
  auto Prog = compile(KitchenSink);
  ASSERT_NE(Prog, nullptr);
  const ram::Statement &Main = Prog->getRam().getMain();
  ram::StmtPtr Copy = ram::clone(Main);
  EXPECT_EQ(ram::print(Main), ram::print(*Copy));
}

TEST(CloneTest, ProgramCloneRoundTripsThroughPrinter) {
  auto Prog = compile(KitchenSink);
  ASSERT_NE(Prog, nullptr);
  std::unique_ptr<ram::Program> Copy = ram::cloneProgram(Prog->getRam());
  EXPECT_EQ(ram::print(Prog->getRam()), ram::print(*Copy));
}

TEST(CloneTest, ProgramCloneSharesNoRelations) {
  auto Prog = compile(KitchenSink);
  ASSERT_NE(Prog, nullptr);
  std::unique_ptr<ram::Program> Copy = ram::cloneProgram(Prog->getRam());
  ASSERT_EQ(Copy->getRelations().size(),
            Prog->getRam().getRelations().size());
  for (const auto &Rel : Copy->getRelations()) {
    const ram::Relation *Original =
        Prog->getRam().findRelation(Rel->getName());
    ASSERT_NE(Original, nullptr) << Rel->getName();
    EXPECT_NE(Original, Rel.get()) << "relation object shared";
    EXPECT_EQ(Original->getColumnTypes(), Rel->getColumnTypes());
    EXPECT_EQ(Original->getOrders(), Rel->getOrders());
    EXPECT_EQ(Original->isInput(), Rel->isInput());
    EXPECT_EQ(Original->isOutput(), Rel->isOutput());
    EXPECT_EQ(Original->isPrintSize(), Rel->isPrintSize());
  }
}

TEST(CloneTest, ProgramCloneCarriesUpdateStatement) {
  // An update-eligible program (no negation/aggregates): the clone must
  // reproduce the update statement and the delta/new aux name table.
  auto Prog = compile(".decl e(a:number, b:number)\n"
                      ".decl p(a:number, b:number)\n"
                      "p(x, y) :- e(x, y).\n"
                      "p(x, z) :- p(x, y), e(y, z).\n",
                      /*EmitUpdate=*/true);
  ASSERT_NE(Prog, nullptr);
  ASSERT_TRUE(Prog->getRam().hasUpdate());
  std::unique_ptr<ram::Program> Copy = ram::cloneProgram(Prog->getRam());
  ASSERT_TRUE(Copy->hasUpdate());
  EXPECT_EQ(ram::print(Prog->getRam().getUpdate()),
            ram::print(Copy->getUpdate()));
  EXPECT_EQ(Copy->getUpdateAuxMap().size(),
            Prog->getRam().getUpdateAuxMap().size());
  const ram::Program::UpdateAux *Aux = Copy->getUpdateAux("p");
  ASSERT_NE(Aux, nullptr);
  EXPECT_EQ(Aux->Delta, Prog->getRam().getUpdateAux("p")->Delta);
}

TEST(CloneTest, RelationMapRedirectsReferences) {
  auto Prog = compile(KitchenSink);
  ASSERT_NE(Prog, nullptr);
  // Redirect every reference onto a decoy and check the printed text now
  // names it — proof the map reaches every node kind holding a relation.
  ram::Program Decoys;
  ram::RelationMap Map;
  for (const auto &Rel : Prog->getRam().getRelations())
    Map[Rel.get()] = Decoys.addRelation("decoy_" + Rel->getName(),
                                        Rel->getColumnTypes(),
                                        Rel->getStructure());
  ram::StmtPtr Copy = ram::clone(Prog->getRam().getMain(), &Map);
  const std::string Text = ram::print(*Copy);
  for (const auto &Rel : Prog->getRam().getRelations()) {
    // No bare original name may survive: every occurrence must be inside
    // a decoy_ prefix. Check by stripping decoy names first.
    std::string Stripped = Text;
    const std::string Decoy = "decoy_" + Rel->getName();
    for (std::size_t At = Stripped.find(Decoy); At != std::string::npos;
         At = Stripped.find(Decoy, At))
      Stripped.erase(At, Decoy.size());
    EXPECT_EQ(Stripped.find(" " + Rel->getName() + " "), std::string::npos)
        << "unredirected reference to " << Rel->getName();
  }
}

} // namespace
