//===- tests/inc/MaintPlanTest.cpp - Maintenance plan classification ----------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the translator's maintenance plan: per-stratum strategy
/// classification (counting / DRed / scoped Reeval), aux-relation naming,
/// whole-program ineligibility reporting, and the guarantee that
/// negation-only programs never fall back to re-evaluation.
///
//===----------------------------------------------------------------------===//

#include "inc/Maintainer.h"

#include "core/Program.h"

#include <gtest/gtest.h>

using namespace stird;

namespace {

core::CompileOptions withMaint() {
  core::CompileOptions Options;
  Options.EmitMaintenance = true;
  return Options;
}

using Strategy = ram::Program::MaintStrategy;

/// Strategy of the stratum defining \p Rel, or nullopt.
const ram::Program::MaintStratum *stratumOf(const ram::Program &Ram,
                                            const std::string &Rel) {
  for (const auto &MS : Ram.getMaintStrata())
    for (const std::string &Name : MS.Relations)
      if (Name == Rel)
        return &MS;
  return nullptr;
}

TEST(MaintPlan, DefaultCompileHasNoMaintenance) {
  auto Prog = core::Program::fromSource(
      ".decl a(x:number)\n.decl b(x:number)\nb(x) :- a(x).");
  ASSERT_NE(Prog, nullptr);
  EXPECT_FALSE(Prog->getRam().hasMaintenance());
  EXPECT_EQ(Prog->getRam().getMaintAux("a"), nullptr);
}

TEST(MaintPlan, NonRecursiveStratumCounts) {
  auto Prog = core::Program::fromSource(
      ".decl a(x:number, y:number)\n.decl r(x:number)\n"
      "r(x) :- a(x, _).",
      nullptr, withMaint());
  ASSERT_NE(Prog, nullptr);
  const ram::Program::MaintStratum *MS = stratumOf(Prog->getRam(), "r");
  ASSERT_NE(MS, nullptr);
  EXPECT_EQ(MS->Strategy, Strategy::Counting);
  EXPECT_NE(MS->Stmt, nullptr);
  const ram::Program::MaintAux *Aux = Prog->getRam().getMaintAux("r");
  ASSERT_NE(Aux, nullptr);
  EXPECT_EQ(Aux->Ins, "delta_ins_r");
  EXPECT_EQ(Aux->Del, "delta_del_r");
  EXPECT_EQ(Aux->Support, "cnt_r");
  EXPECT_EQ(Aux->CntAdd, "cadd_r");
  EXPECT_EQ(Aux->CntDec, "cdec_r");
  EXPECT_TRUE(Aux->Rederive.empty());
  // EDB relations still carry their staging deltas, but no support store.
  const ram::Program::MaintAux *EdbAux = Prog->getRam().getMaintAux("a");
  ASSERT_NE(EdbAux, nullptr);
  EXPECT_EQ(EdbAux->Ins, "delta_ins_a");
  EXPECT_TRUE(EdbAux->Support.empty());
  // A count-bootstrap statement exists for the counting stratum.
  EXPECT_NE(Prog->getRam().getCountInit(), nullptr);
}

TEST(MaintPlan, RecursiveStratumUsesDRed) {
  auto Prog = core::Program::fromSource(
      ".decl edge(a:number, b:number)\n.decl path(a:number, b:number)\n"
      "path(x, y) :- edge(x, y).\n"
      "path(x, z) :- path(x, y), edge(y, z).\n",
      nullptr, withMaint());
  ASSERT_NE(Prog, nullptr);
  const ram::Program::MaintStratum *MS = stratumOf(Prog->getRam(), "path");
  ASSERT_NE(MS, nullptr);
  EXPECT_EQ(MS->Strategy, Strategy::DRed);
  const ram::Program::MaintAux *Aux = Prog->getRam().getMaintAux("path");
  ASSERT_NE(Aux, nullptr);
  EXPECT_EQ(Aux->Rederive, "rederive_path");
  EXPECT_TRUE(Aux->Support.empty());
}

TEST(MaintPlan, NegationOnlyProgramNeverFallsBack) {
  // The acceptance bar: stratified negation alone must be maintained
  // precisely — no Reeval stratum, no whole-program ineligibility.
  auto Prog = core::Program::fromSource(
      ".decl a(x:number)\n.decl b(x:number)\n.decl c(x:number)\n"
      ".decl d(x:number)\n"
      "c(x) :- a(x), !b(x).\n"
      "d(x) :- c(x), !a(x).\n",
      nullptr, withMaint());
  ASSERT_NE(Prog, nullptr);
  ASSERT_TRUE(Prog->getRam().hasMaintenance());
  EXPECT_TRUE(Prog->getRam().getMaintIneligibleReason().empty());
  for (const auto &MS : Prog->getRam().getMaintStrata())
    EXPECT_NE(MS.Strategy, Strategy::Reeval)
        << "negation-only stratum fell back: " << MS.FallbackReason;
}

TEST(MaintPlan, AggregateStratumFallsBackScoped) {
  auto Prog = core::Program::fromSource(
      ".decl item(k:number, v:number)\n.decl total(s:number)\n"
      ".decl big(s:number)\n"
      "total(s) :- s = sum v : { item(_, v) }.\n"
      "big(s) :- total(s), s > 10.\n",
      nullptr, withMaint());
  ASSERT_NE(Prog, nullptr);
  ASSERT_TRUE(Prog->getRam().hasMaintenance());
  const ram::Program::MaintStratum *Total =
      stratumOf(Prog->getRam(), "total");
  ASSERT_NE(Total, nullptr);
  EXPECT_EQ(Total->Strategy, Strategy::Reeval);
  EXPECT_FALSE(Total->FallbackReason.empty());
  EXPECT_LT(Total->MainBegin, Total->MainEnd);
  // The stratum above the aggregate still counts exactly.
  const ram::Program::MaintStratum *Big = stratumOf(Prog->getRam(), "big");
  ASSERT_NE(Big, nullptr);
  EXPECT_EQ(Big->Strategy, Strategy::Counting);
}

TEST(MaintPlan, EqrelDependencyFallsBackScoped) {
  auto Prog = core::Program::fromSource(
      ".decl link(a:number, b:number)\n"
      ".decl same(a:number, b:number) eqrel\n"
      ".decl rep(a:number)\n"
      "same(x, y) :- link(x, y).\n"
      "rep(x) :- same(x, _).\n",
      nullptr, withMaint());
  ASSERT_NE(Prog, nullptr);
  const ram::Program::MaintStratum *Same = stratumOf(Prog->getRam(), "same");
  ASSERT_NE(Same, nullptr);
  EXPECT_EQ(Same->Strategy, Strategy::Reeval);
  // rep reads the eqrel: conservative Reeval too (union-find deltas are
  // not enumerable as tuple deltas).
  const ram::Program::MaintStratum *Rep = stratumOf(Prog->getRam(), "rep");
  ASSERT_NE(Rep, nullptr);
  EXPECT_EQ(Rep->Strategy, Strategy::Reeval);
}

TEST(MaintPlan, CounterDisablesMaintenanceWithReason) {
  auto Prog = core::Program::fromSource(
      ".decl a(x:number, y:number)\n.decl b(x:number)\n"
      "a($, x) :- b(x).",
      nullptr, withMaint());
  ASSERT_NE(Prog, nullptr);
  EXPECT_FALSE(Prog->getRam().hasMaintenance());
  EXPECT_NE(Prog->getRam().getMaintIneligibleReason().find("counter"),
            std::string::npos);
}

TEST(MaintPlan, InputDerivedRelationDisablesMaintenance) {
  auto Prog = core::Program::fromSource(
      ".decl a(x:number)\n.decl b(x:number)\n.input b\n"
      "b(x) :- a(x).",
      nullptr, withMaint());
  ASSERT_NE(Prog, nullptr);
  EXPECT_FALSE(Prog->getRam().hasMaintenance());
  EXPECT_FALSE(Prog->getRam().getMaintIneligibleReason().empty());
}

TEST(MaintPlan, WildcardUnderNegationSelectsDRed) {
  auto Prog = core::Program::fromSource(
      ".decl a(x:number)\n.decl b(x:number, y:number)\n.decl c(x:number)\n"
      "c(x) :- a(x), !b(x, _).",
      nullptr, withMaint());
  ASSERT_NE(Prog, nullptr);
  const ram::Program::MaintStratum *MS = stratumOf(Prog->getRam(), "c");
  ASSERT_NE(MS, nullptr);
  EXPECT_EQ(MS->Strategy, Strategy::DRed);
}

TEST(MaintPlan, MaintainerRejectsBadBatches) {
  auto Prog = core::Program::fromSource(
      ".decl link(a:number, b:number)\n"
      ".decl same(a:number, b:number) eqrel\n"
      ".decl derived(x:number)\n"
      "same(x, y) :- link(x, y).\n"
      "derived(x) :- link(x, _).\n",
      nullptr, withMaint());
  ASSERT_NE(Prog, nullptr);
  interp::EngineOptions Opts;
  Opts.SuppressIo = true;
  auto Eng = Prog->makeEngine(Opts);
  Eng->run();
  inc::Maintainer Maint(Prog->getRam(), *Eng);

  inc::MixedBatch DerivedTarget{{"derived", {{1}}, {}}};
  EXPECT_NE(Maint.rejectReason(DerivedTarget), "");
  inc::MixedBatch EqrelRetract{{"same", {}, {{1, 2}}}};
  EXPECT_NE(Maint.rejectReason(EqrelRetract), "");
  inc::MixedBatch Unknown{{"nosuch", {{1}}, {}}};
  EXPECT_NE(Maint.rejectReason(Unknown), "");
  inc::MixedBatch ArityMismatch{{"link", {{1}}, {}}};
  EXPECT_NE(Maint.rejectReason(ArityMismatch), "");
  inc::MixedBatch Fine{{"link", {{1, 2}}, {{3, 4}}}};
  EXPECT_EQ(Maint.rejectReason(Fine), "");
}

TEST(MaintPlan, ReportCountsNetEdbChanges) {
  auto Prog = core::Program::fromSource(
      ".decl a(x:number)\n.decl b(x:number)\nb(x) :- a(x).", nullptr,
      withMaint());
  ASSERT_NE(Prog, nullptr);
  interp::EngineOptions Opts;
  Opts.SuppressIo = true;
  auto Eng = Prog->makeEngine(Opts);
  Eng->insertTuples("a", {{1}, {2}});
  Eng->run();
  inc::Maintainer Maint(Prog->getRam(), *Eng);
  Maint.bootstrap();

  // Insert {2 (dup), 3 (new)}, retract {1 (hit), 9 (miss)}.
  inc::MixedBatch Batch{{"a", {{2}, {3}}, {{1}, {9}}}};
  ASSERT_EQ(Maint.rejectReason(Batch), "");
  inc::MaintenanceReport Report = Maint.apply(Batch);
  EXPECT_TRUE(Report.Maintained);
  EXPECT_EQ(Report.Inserted, 1u);
  EXPECT_EQ(Report.Duplicates, 1u);
  EXPECT_EQ(Report.Deleted, 1u);
  EXPECT_EQ(Report.Missing, 1u);
  EXPECT_EQ(Report.ReevalStrata, 0u);
  EXPECT_EQ(Eng->getTuples("b"),
            (std::vector<DynTuple>{{2}, {3}}));
}

} // namespace
