//===- tests/inc/MaintenanceDifferentialTest.cpp - Mixed-batch equality -------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental-maintenance differential suite: seeded mixed
/// insert/retract streams replayed through the Maintainer, with exact
/// equality against a one-shot evaluation of the net EDB at EVERY batch
/// prefix. Each subject runs the full matrix of batch splits k in
/// {1, 2, 5} and thread counts -j{1, 4}, so counting, DRed and the scoped
/// Reeval fallback are all exercised under both sequential and parallel
/// evaluation.
///
//===----------------------------------------------------------------------===//

#include "inc/Maintainer.h"

#include "core/Program.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace stird;

namespace {

core::CompileOptions withMaint() {
  core::CompileOptions Options;
  Options.EmitMaintenance = true;
  return Options;
}

/// Deterministic LCG (same constants as the SIPS suite's generator): the
/// streams must be identical across platforms and reruns.
class Rng {
public:
  explicit Rng(std::uint64_t Seed) : State(Seed * 2862933555777941757ULL + 1) {}
  std::uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 33;
  }
  std::uint64_t next(std::uint64_t Bound) { return next() % Bound; }

private:
  std::uint64_t State;
};

/// One EDB relation the stream writes to.
struct EdbSpec {
  std::string Name;
  std::size_t Arity;
  RamDomain Domain; ///< column values drawn from [0, Domain)
};

struct Subject {
  const char *Name;
  const char *Source;
  std::vector<EdbSpec> Edb;
  /// Retractions the subject cannot accept (eqrel EDB): insert-only stream.
  bool InsertOnly = false;
};

/// One op of the stream. Retract=true removes, else inserts.
struct Op {
  std::size_t Rel;
  DynTuple Tuple;
  bool Retract;
};

/// Generates \p N ops: ~40% retractions, biased towards tuples actually
/// present so deletions do real work, with some misses and duplicates left
/// in deliberately.
std::vector<Op> makeStream(const Subject &S, std::uint64_t Seed,
                           std::size_t N) {
  Rng R(Seed);
  std::vector<std::set<DynTuple>> State(S.Edb.size());
  std::vector<Op> Ops;
  for (std::size_t I = 0; I < N; ++I) {
    const std::size_t Rel = R.next(S.Edb.size());
    const EdbSpec &Spec = S.Edb[Rel];
    const bool Retract =
        !S.InsertOnly && !State[Rel].empty() && R.next(100) < 40;
    DynTuple Tuple(Spec.Arity);
    if (Retract && R.next(100) < 85) {
      // Retract a present tuple (85% of retractions hit).
      auto It = State[Rel].begin();
      std::advance(It, R.next(State[Rel].size()));
      Tuple = *It;
    } else {
      for (std::size_t Col = 0; Col < Spec.Arity; ++Col)
        Tuple[Col] = static_cast<RamDomain>(R.next(Spec.Domain));
    }
    if (Retract)
      State[Rel].erase(Tuple);
    else
      State[Rel].insert(Tuple);
    Ops.push_back({Rel, std::move(Tuple), Retract});
  }
  return Ops;
}

/// Net EDB contents after a prefix of the stream.
using EdbState = std::vector<std::set<DynTuple>>;

void applyToState(EdbState &State, const std::vector<Op> &Ops,
                  std::size_t Begin, std::size_t End) {
  for (std::size_t I = Begin; I < End; ++I) {
    if (Ops[I].Retract)
      State[Ops[I].Rel].erase(Ops[I].Tuple);
    else
      State[Ops[I].Rel].insert(Ops[I].Tuple);
  }
}

/// Packs one slice of the stream into a MixedBatch (order-preserving: the
/// Maintainer's retract-then-insert semantics match applyToState because
/// makeStream never retracts a tuple it inserted earlier in the same
/// slice... which it can; so the batch keeps per-relation op order by
/// splitting into per-op single-tuple groups when orders interleave).
inc::MixedBatch makeBatch(const Subject &S, const std::vector<Op> &Ops,
                          std::size_t Begin, std::size_t End) {
  // Maintainer semantics are retract-first-then-insert per batch; the
  // stream's semantics are strictly sequential. Reduce the slice to its
  // net effect (last op per tuple wins), which both agree on.
  std::vector<std::map<DynTuple, bool>> Net(S.Edb.size());
  for (std::size_t I = Begin; I < End; ++I)
    Net[Ops[I].Rel][Ops[I].Tuple] = Ops[I].Retract;
  inc::MixedBatch Batch;
  for (std::size_t Rel = 0; Rel < S.Edb.size(); ++Rel) {
    if (Net[Rel].empty())
      continue;
    inc::RelationOps RO;
    RO.Relation = S.Edb[Rel].Name;
    for (const auto &[Tuple, Retract] : Net[Rel])
      (Retract ? RO.Retracts : RO.Inserts).push_back(Tuple);
    Batch.push_back(std::move(RO));
  }
  return Batch;
}

/// One-shot oracle: fresh engine over the same program, net EDB inserted,
/// main program run from scratch.
std::unique_ptr<interp::Engine> runOracle(core::Program &Prog,
                                          const Subject &S,
                                          const EdbState &State) {
  interp::EngineOptions Opts;
  Opts.SuppressIo = true;
  auto Eng = Prog.makeEngine(Opts);
  for (std::size_t Rel = 0; Rel < S.Edb.size(); ++Rel)
    Eng->insertTuples(S.Edb[Rel].Name,
                      {State[Rel].begin(), State[Rel].end()});
  Eng->run();
  return Eng;
}

void runSubject(const Subject &S, std::uint64_t Seed, std::size_t NumOps) {
  auto Prog = core::Program::fromSource(S.Source, nullptr, withMaint());
  ASSERT_NE(Prog, nullptr) << S.Name;
  ASSERT_TRUE(Prog->getRam().hasMaintenance())
      << S.Name << ": " << Prog->getRam().getMaintIneligibleReason();

  const std::vector<Op> Ops = makeStream(S, Seed, NumOps);
  std::vector<std::string> Relations;
  for (const auto &Decl : Prog->getAst().Relations)
    Relations.push_back(Decl->getName());

  for (std::size_t K : {std::size_t(1), std::size_t(2), std::size_t(5)}) {
    for (std::size_t J : {std::size_t(1), std::size_t(4)}) {
      interp::EngineOptions Opts;
      Opts.SuppressIo = true;
      Opts.NumThreads = J;
      auto Eng = Prog->makeEngine(Opts);
      Eng->run();
      inc::Maintainer Maint(Prog->getRam(), *Eng);
      Maint.bootstrap();

      EdbState State(S.Edb.size());
      const std::size_t PerBatch = (NumOps + K - 1) / K;
      for (std::size_t Begin = 0; Begin < NumOps; Begin += PerBatch) {
        const std::size_t End = std::min(NumOps, Begin + PerBatch);
        inc::MixedBatch Batch = makeBatch(S, Ops, Begin, End);
        ASSERT_EQ(Maint.rejectReason(Batch), "")
            << S.Name << " k=" << K << " j=" << J;
        Maint.apply(Batch);
        applyToState(State, Ops, Begin, End);

        auto Oracle = runOracle(*Prog, S, State);
        for (const std::string &Rel : Relations)
          ASSERT_EQ(Eng->getTuples(Rel), Oracle->getTuples(Rel))
              << S.Name << " relation=" << Rel << " k=" << K << " j=" << J
              << " prefix=[0," << End << ")";
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Subjects
//===----------------------------------------------------------------------===//

// 1. Counting: joins and unions with shared derivations (a tuple derived
// several ways must survive until its last derivation dies).
const Subject JoinSubject = {
    "join",
    ".decl a(x:number, y:number)\n"
    ".decl b(x:number, y:number)\n"
    ".decl r(x:number, y:number)\n"
    ".decl s(x:number)\n"
    "r(x, z) :- a(x, y), b(y, z).\n"
    "r(x, y) :- a(x, y), a(y, x).\n"
    "s(x) :- r(x, _).\n",
    {{"a", 2, 6}, {"b", 2, 6}},
};

// 2. Counting with stratified negation: deletion of b can derive c, and
// insertion of b can delete c.
const Subject NegationSubject = {
    "negation",
    ".decl a(x:number)\n"
    ".decl b(x:number)\n"
    ".decl c(x:number)\n"
    ".decl d(x:number)\n"
    "c(x) :- a(x), !b(x).\n"
    "d(x) :- c(x), !b(x).\n",
    {{"a", 1, 12}, {"b", 1, 12}},
};

// 3. DRed: transitive closure, the canonical over-delete/rederive case
// (alternative paths must survive a deleted edge).
const Subject TcSubject = {
    "tc",
    ".decl edge(a:number, b:number)\n"
    ".decl path(a:number, b:number)\n"
    "path(x, y) :- edge(x, y).\n"
    "path(x, z) :- path(x, y), edge(y, z).\n",
    {{"edge", 2, 7}},
};

// 4. DRed below counting-with-negation: recursive stratum feeding a
// negated dependency (count-carrying deltas across the negation).
const Subject TcNegSubject = {
    "tc-negation",
    ".decl edge(a:number, b:number)\n"
    ".decl node(a:number)\n"
    ".decl path(a:number, b:number)\n"
    ".decl unreachable(a:number, b:number)\n"
    "path(x, y) :- edge(x, y).\n"
    "path(x, z) :- path(x, y), edge(y, z).\n"
    "unreachable(x, y) :- node(x), node(y), !path(x, y).\n",
    {{"edge", 2, 6}, {"node", 1, 6}},
};

// 5. Doop-like mutual recursion: two relations in one SCC plus constants
// and a non-recursive consumer.
const Subject DoopSubject = {
    "dooplike",
    ".decl new(v:number, o:number)\n"
    ".decl assign(d:number, s:number)\n"
    ".decl load(d:number, s:number)\n"
    ".decl store(d:number, s:number)\n"
    ".decl vpt(v:number, o:number)\n"
    ".decl heap(o:number, p:number)\n"
    ".decl query(v:number)\n"
    "vpt(v, o) :- new(v, o).\n"
    "vpt(d, o) :- assign(d, s), vpt(s, o).\n"
    "heap(o, p) :- store(d, s), vpt(d, o), vpt(s, p).\n"
    "vpt(d, p) :- load(d, s), vpt(s, o), heap(o, p).\n"
    "query(v) :- vpt(v, o), new(_, o).\n",
    {{"new", 2, 5}, {"assign", 2, 5}, {"load", 2, 5}, {"store", 2, 5}},
};

// 6. Aggregates: scoped Reeval fallback for the aggregate stratum, exact
// counting for the stratum above it.
const Subject AggregateSubject = {
    "aggregate",
    ".decl item(k:number, v:number)\n"
    ".decl total(s:number)\n"
    ".decl big(s:number)\n"
    "total(s) :- s = sum v : { item(_, v) }.\n"
    "big(s) :- total(s), s > 10.\n",
    {{"item", 2, 9}},
};

// 7. Equivalence relation derived from an ordinary EDB: the eqrel stratum
// re-evaluates, and edge retractions must shrink the closure.
const Subject EqrelSubject = {
    "eqrel",
    ".decl link(a:number, b:number)\n"
    ".decl same(a:number, b:number) eqrel\n"
    ".decl rep(a:number)\n"
    "same(x, y) :- link(x, y).\n"
    "rep(x) :- same(x, _).\n",
    {{"link", 2, 8}},
};

// 8. Wildcard under negation: DRed on a non-recursive stratum (the
// counting trigger rewrite is multiplicity-unsound there).
const Subject WildcardNegSubject = {
    "wildcard-negation",
    ".decl a(x:number)\n"
    ".decl b(x:number, y:number)\n"
    ".decl c(x:number)\n"
    "c(x) :- a(x), !b(x, _).\n",
    {{"a", 1, 10}, {"b", 2, 10}},
};

// 9. Functors and constraints in counting rules (typed arguments flow
// through the synthesized versions).
const Subject FunctorSubject = {
    "functor",
    ".decl a(x:number, y:number)\n"
    ".decl r(x:number, y:number)\n"
    ".decl t(x:number)\n"
    "r(x, y + 1) :- a(x, y), x < 4.\n"
    "t(x * 2) :- r(x, y), y != 0.\n",
    {{"a", 2, 8}},
};

TEST(MaintenanceDifferential, Join) { runSubject(JoinSubject, 11, 120); }
TEST(MaintenanceDifferential, Negation) {
  runSubject(NegationSubject, 22, 120);
}
TEST(MaintenanceDifferential, TransitiveClosure) {
  runSubject(TcSubject, 33, 120);
}
TEST(MaintenanceDifferential, TcUnderNegation) {
  runSubject(TcNegSubject, 44, 100);
}
TEST(MaintenanceDifferential, DoopLike) { runSubject(DoopSubject, 55, 100); }
TEST(MaintenanceDifferential, Aggregate) {
  runSubject(AggregateSubject, 66, 120);
}
TEST(MaintenanceDifferential, Eqrel) { runSubject(EqrelSubject, 77, 100); }
TEST(MaintenanceDifferential, WildcardNegation) {
  runSubject(WildcardNegSubject, 88, 120);
}
TEST(MaintenanceDifferential, Functor) {
  runSubject(FunctorSubject, 99, 120);
}

// Different seeds shift which tuples collide; a second pass over the two
// structurally hardest subjects.
TEST(MaintenanceDifferential, TcReseeded) { runSubject(TcSubject, 123, 140); }
TEST(MaintenanceDifferential, DoopReseeded) {
  runSubject(DoopSubject, 321, 90);
}

} // namespace
