//===- tests/interp/SchedulerTest.cpp - Work-stealing scheduler tests ----------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The job system's own contract, tested below the engine: every entry
/// pushed into a Chase–Lev deque comes back from exactly one pop() or
/// steal() (no lost or duplicated morsels under concurrent thieves), and
/// Scheduler::run() executes every task index exactly once — including
/// nested submissions from inside tasks and concurrent submissions from
/// several external threads. The stress tests drive seeded schedules so a
/// failure reproduces; the suite carries the `sanitize` label, making it
/// the core workload of the ThreadSanitizer and AddressSanitizer builds.
///
//===----------------------------------------------------------------------===//

#include "interp/Scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

using namespace stird::interp;

namespace {

/// SplitMix64 — the same tiny deterministic generator the program fuzzer
/// uses, inlined so the scheduler tests need no test-support library.
struct Rng {
  explicit Rng(std::uint64_t Seed) : State(Seed) {}
  std::uint64_t next() {
    std::uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }
  std::size_t below(std::size_t Bound) { return next() % Bound; }
  std::uint64_t State;
};

//===----------------------------------------------------------------------===//
// WorkStealingDeque
//===----------------------------------------------------------------------===//

TEST(WorkStealingDequeTest, PopIsLifoStealIsFifo) {
  WorkStealingDeque D;
  for (std::uint64_t I = 0; I < 4; ++I)
    D.push(I);
  std::uint64_t E = 99;
  // Thieves take the oldest entry, the owner the newest.
  ASSERT_TRUE(D.steal(E));
  EXPECT_EQ(E, 0u);
  ASSERT_TRUE(D.pop(E));
  EXPECT_EQ(E, 3u);
  ASSERT_TRUE(D.steal(E));
  EXPECT_EQ(E, 1u);
  ASSERT_TRUE(D.pop(E));
  EXPECT_EQ(E, 2u);
  EXPECT_FALSE(D.pop(E));
  EXPECT_FALSE(D.steal(E));
}

TEST(WorkStealingDequeTest, GrowsPastCapacityHint) {
  WorkStealingDeque D(/*CapacityHint=*/8);
  constexpr std::uint64_t N = 5000; // forces several ring doublings
  for (std::uint64_t I = 0; I < N; ++I)
    D.push(I);
  for (std::uint64_t I = N; I-- > 0;) {
    std::uint64_t E = ~0ull;
    ASSERT_TRUE(D.pop(E));
    EXPECT_EQ(E, I); // growth preserves order and content
  }
  std::uint64_t E;
  EXPECT_FALSE(D.pop(E));
}

TEST(WorkStealingDequeTest, InterleavedPushPopSurvivesGrowth) {
  WorkStealingDeque D(/*CapacityHint=*/8);
  Rng R(7);
  std::vector<int> Seen(2000, 0);
  std::uint64_t Next = 0;
  std::size_t Held = 0;
  while (Next < Seen.size() || Held > 0) {
    if (Next < Seen.size() && (Held == 0 || R.below(100) < 60)) {
      D.push(Next++);
      ++Held;
    } else {
      std::uint64_t E = ~0ull;
      ASSERT_TRUE(D.pop(E));
      ++Seen[E];
      --Held;
    }
  }
  for (std::size_t I = 0; I < Seen.size(); ++I)
    EXPECT_EQ(Seen[I], 1) << "entry " << I;
}

/// The deque's exactly-once guarantee under fire: one owner pushes N
/// entries in seeded bursts (popping some itself, as a worker draining its
/// own morsels does), while thief threads steal continuously. Every entry
/// must be consumed by exactly one thread.
void stealStress(std::uint64_t Seed, std::size_t NumThieves) {
  constexpr std::uint64_t N = 20000;
  WorkStealingDeque D(/*CapacityHint=*/8);
  std::vector<std::atomic<int>> Taken(N);
  for (auto &T : Taken)
    T.store(0, std::memory_order_relaxed);
  std::atomic<bool> Done{false};

  std::vector<std::thread> Thieves;
  for (std::size_t T = 0; T < NumThieves; ++T)
    Thieves.emplace_back([&] {
      std::uint64_t E;
      while (!Done.load(std::memory_order_acquire))
        if (D.steal(E))
          Taken[E].fetch_add(1, std::memory_order_relaxed);
      while (D.steal(E)) // final drain after the owner stops
        Taken[E].fetch_add(1, std::memory_order_relaxed);
    });

  Rng R(Seed);
  std::uint64_t Next = 0;
  while (Next < N) {
    // Bursty production with occasional owner pops exercises both the
    // T < B fast path and the single-entry CAS race against the thieves.
    const std::size_t Burst = 1 + R.below(64);
    for (std::size_t I = 0; I < Burst && Next < N; ++I)
      D.push(Next++);
    const std::size_t Pops = R.below(Burst + 1);
    for (std::size_t I = 0; I < Pops; ++I) {
      std::uint64_t E;
      if (!D.pop(E))
        break;
      Taken[E].fetch_add(1, std::memory_order_relaxed);
    }
  }
  {
    std::uint64_t E;
    while (D.pop(E))
      Taken[E].fetch_add(1, std::memory_order_relaxed);
  }
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Thieves)
    T.join();

  std::uint64_t Lost = 0, Duplicated = 0;
  for (std::uint64_t I = 0; I < N; ++I) {
    const int C = Taken[I].load(std::memory_order_relaxed);
    Lost += C == 0 ? 1 : 0;
    Duplicated += C > 1 ? 1 : 0;
  }
  EXPECT_EQ(Lost, 0u) << "seed " << Seed;
  EXPECT_EQ(Duplicated, 0u) << "seed " << Seed;
}

TEST(WorkStealingDequeTest, ExactlyOnceUnderOneThief) {
  for (std::uint64_t Seed = 1; Seed <= 4; ++Seed)
    stealStress(Seed, 1);
}

TEST(WorkStealingDequeTest, ExactlyOnceUnderManyThieves) {
  for (std::uint64_t Seed = 1; Seed <= 4; ++Seed)
    stealStress(Seed * 0x51ed2701, 3);
}

//===----------------------------------------------------------------------===//
// Scheduler
//===----------------------------------------------------------------------===//

/// Runs \p NumTasks on \p S and returns per-task execution counts; also
/// checks every reported slot stays inside [0, numThreads()).
std::vector<int> countedRun(Scheduler &S, std::size_t NumTasks) {
  std::vector<std::atomic<int>> Counts(NumTasks);
  for (auto &C : Counts)
    C.store(0, std::memory_order_relaxed);
  std::atomic<bool> SlotOk{true};
  S.run(NumTasks, [&](std::size_t Task, std::size_t Slot) {
    if (Slot >= S.numThreads())
      SlotOk.store(false, std::memory_order_relaxed);
    Counts[Task].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_TRUE(SlotOk.load());
  std::vector<int> Out(NumTasks);
  for (std::size_t I = 0; I < NumTasks; ++I)
    Out[I] = Counts[I].load(std::memory_order_relaxed);
  return Out;
}

TEST(SchedulerTest, ExecutesEveryTaskExactlyOnce) {
  Scheduler S(4);
  EXPECT_EQ(S.numThreads(), 4u);
  for (std::size_t NumTasks : {std::size_t(1), std::size_t(2),
                               std::size_t(7), std::size_t(64),
                               std::size_t(1000)}) {
    const std::vector<int> Counts = countedRun(S, NumTasks);
    for (std::size_t I = 0; I < NumTasks; ++I)
      EXPECT_EQ(Counts[I], 1) << "task " << I << " of " << NumTasks;
  }
}

TEST(SchedulerTest, ZeroTasksIsANoOp) {
  Scheduler S(4);
  bool Ran = false;
  S.run(0, [&](std::size_t, std::size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(SchedulerTest, SingleThreadRunsInlineInSubmissionOrder) {
  Scheduler S(1);
  EXPECT_EQ(S.numThreads(), 1u);
  std::vector<std::size_t> Order;
  S.run(8, [&](std::size_t Task, std::size_t Slot) {
    EXPECT_EQ(Slot, 0u); // the submitting thread is always slot 0
    Order.push_back(Task);
  });
  std::vector<std::size_t> Expected(8);
  std::iota(Expected.begin(), Expected.end(), 0);
  EXPECT_EQ(Order, Expected);
}

TEST(SchedulerTest, NestedRunFromInsideTasks) {
  // A rule job submitting its inner parallel scan: the inner run() must
  // complete on the same pool without deadlock, and both levels must
  // execute exactly once.
  Scheduler S(4);
  constexpr std::size_t Outer = 6, Inner = 32;
  std::vector<std::atomic<int>> Counts(Outer * Inner);
  for (auto &C : Counts)
    C.store(0, std::memory_order_relaxed);
  S.run(Outer, [&](std::size_t O, std::size_t) {
    S.run(Inner, [&](std::size_t I, std::size_t) {
      Counts[O * Inner + I].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t I = 0; I < Counts.size(); ++I)
    EXPECT_EQ(Counts[I].load(), 1) << "nested task " << I;
}

TEST(SchedulerTest, ConcurrentExternalSubmitters) {
  // Independent resident sessions sharing one program pool: several
  // external threads submit jobs concurrently; each job's barrier must
  // release only after its own tasks ran, exactly once each.
  Scheduler S(4);
  constexpr std::size_t NumSubmitters = 4, Rounds = 25, Tasks = 16;
  std::vector<std::thread> Submitters;
  std::vector<std::atomic<std::uint64_t>> Sums(NumSubmitters);
  for (auto &Sum : Sums)
    Sum.store(0, std::memory_order_relaxed);
  for (std::size_t T = 0; T < NumSubmitters; ++T)
    Submitters.emplace_back([&, T] {
      for (std::size_t R = 0; R < Rounds; ++R)
        S.run(Tasks, [&](std::size_t Task, std::size_t) {
          Sums[T].fetch_add(Task + 1, std::memory_order_relaxed);
        });
    });
  for (std::thread &T : Submitters)
    T.join();
  const std::uint64_t PerRound = Tasks * (Tasks + 1) / 2;
  for (std::size_t T = 0; T < NumSubmitters; ++T)
    EXPECT_EQ(Sums[T].load(), Rounds * PerRound) << "submitter " << T;
}

TEST(SchedulerTest, ManySmallJobsReuseTheWarmPool) {
  // The resident-serving pattern: hundreds of small jobs on one pool.
  // Guards job-slot recycling — a stale slot entry would misroute a task.
  Scheduler S(3);
  for (int Round = 0; Round < 300; ++Round) {
    const std::vector<int> Counts = countedRun(S, 3);
    for (std::size_t I = 0; I < Counts.size(); ++I)
      ASSERT_EQ(Counts[I], 1) << "round " << Round << " task " << I;
  }
}

TEST(SchedulerTest, DetachedSubmitsAllExecute) {
  // The serving-dispatch path: fire-and-forget jobs with no join barrier.
  // Every submitted closure must run exactly once, from any submitter
  // thread, interleaved with fork-join run() calls on the same pool.
  Scheduler S(4);
  constexpr std::size_t NumJobs = 500;
  std::atomic<std::size_t> Ran{0};
  std::vector<std::atomic<int>> PerJob(NumJobs);
  for (auto &C : PerJob)
    C.store(0, std::memory_order_relaxed);
  for (std::size_t I = 0; I < NumJobs; ++I)
    S.submit([&, I] {
      PerJob[I].fetch_add(1, std::memory_order_relaxed);
      Ran.fetch_add(1, std::memory_order_acq_rel);
    });
  // A barrier job on the same pool must not starve behind the detached
  // backlog, and vice versa.
  S.run(16, [](std::size_t, std::size_t) {});
  while (Ran.load(std::memory_order_acquire) < NumJobs)
    std::this_thread::yield();
  for (std::size_t I = 0; I < NumJobs; ++I)
    EXPECT_EQ(PerJob[I].load(), 1) << "detached job " << I;
}

TEST(SchedulerTest, DetachedSubmitFromWorkerAndExternalThreads) {
  // submit() from inside a task (a worker thread) takes the own-deque
  // path; from outside it goes through the injection queue. Both must
  // execute exactly once.
  Scheduler S(3);
  constexpr std::size_t Outer = 24;
  std::atomic<std::size_t> Ran{0};
  S.run(Outer, [&](std::size_t, std::size_t) {
    S.submit([&] { Ran.fetch_add(1, std::memory_order_acq_rel); });
  });
  std::thread External([&] {
    for (int I = 0; I < 10; ++I)
      S.submit([&] { Ran.fetch_add(1, std::memory_order_acq_rel); });
  });
  External.join();
  while (Ran.load(std::memory_order_acquire) < Outer + 10)
    std::this_thread::yield();
  EXPECT_EQ(Ran.load(), Outer + 10);
}

TEST(SchedulerTest, SingleThreadedSubmitRunsInline) {
  Scheduler S(1);
  bool Ran = false;
  S.submit([&] { Ran = true; });
  EXPECT_TRUE(Ran) << "no workers: submit must execute inline";
}

TEST(SchedulerTest, TasksSeeSubmitterSideEffects) {
  // The fork-join barrier: writes made before run() are visible to every
  // task, and every task's writes are visible after run() returns.
  Scheduler S(4);
  constexpr std::size_t N = 128;
  std::vector<std::uint64_t> In(N), Out(N, 0);
  for (std::size_t I = 0; I < N; ++I)
    In[I] = I * I + 1;
  S.run(N, [&](std::size_t Task, std::size_t) { Out[Task] = In[Task]; });
  EXPECT_EQ(Out, In);
}

} // namespace
