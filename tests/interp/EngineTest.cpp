//===- tests/interp/EngineTest.cpp - End-to-end STI execution tests ------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "interp/Engine.h"

#include "core/Program.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

using namespace stird;
using namespace stird::interp;

namespace {

/// Compiles, runs on the default (STI) backend and returns the engine.
std::unique_ptr<Engine> runProgram(core::Program &Prog,
                                   EngineOptions Options = {}) {
  auto E = Prog.makeEngine(Options);
  E->run();
  return E;
}

std::unique_ptr<core::Program> compile(const std::string &Source) {
  std::vector<std::string> Errors;
  auto Prog = core::Program::fromSource(Source, &Errors);
  EXPECT_NE(Prog, nullptr) << (Errors.empty() ? "" : Errors[0]);
  return Prog;
}

TEST(EngineTest, FactsOnly) {
  auto Prog = compile(".decl a(x:number, y:number)\na(1, 2).\na(3, 4).");
  auto E = runProgram(*Prog);
  EXPECT_EQ(E->getTuples("a"),
            (std::vector<DynTuple>{{1, 2}, {3, 4}}));
}

TEST(EngineTest, TransitiveClosure) {
  auto Prog = compile(
      ".decl edge(a:number, b:number)\n.decl path(a:number, b:number)\n"
      "path(x, y) :- edge(x, y).\n"
      "path(x, z) :- path(x, y), edge(y, z).");
  auto E = Prog->makeEngine();
  E->insertTuples("edge", {{1, 2}, {2, 3}, {3, 4}});
  E->run();
  EXPECT_EQ(E->getTuples("path"),
            (std::vector<DynTuple>{
                {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}}));
}

TEST(EngineTest, CyclicGraphTerminates) {
  auto Prog = compile(
      ".decl edge(a:number, b:number)\n.decl path(a:number, b:number)\n"
      "path(x, y) :- edge(x, y).\n"
      "path(x, z) :- path(x, y), edge(y, z).");
  auto E = Prog->makeEngine();
  E->insertTuples("edge", {{1, 2}, {2, 3}, {3, 1}});
  E->run();
  // Full 3x3 closure.
  EXPECT_EQ(E->getTuples("path").size(), 9u);
}

TEST(EngineTest, PaperSecurityAnalysisExample) {
  // Fig 2 of the paper.
  auto Prog = compile(R"(
    .decl Unsafe(b:symbol)
    .decl Edge(a:symbol, b:symbol)
    .decl Protect(b:symbol)
    .decl Vulnerable(b:symbol)
    .decl Violation(b:symbol)
    Unsafe("while").
    Unsafe(y) :- Unsafe(x), Edge(x, y), !Protect(y).
    Violation(x) :- Vulnerable(x), Unsafe(x).
  )");
  auto E = Prog->makeEngine();
  SymbolTable &Symbols = Prog->getSymbolTable();
  auto Sym = [&](const char *S) {
    return DynTuple{Symbols.intern(S)};
  };
  auto Pair = [&](const char *A, const char *B) {
    return DynTuple{Symbols.intern(A), Symbols.intern(B)};
  };
  E->insertTuples("Edge", {Pair("while", "body"), Pair("body", "call"),
                           Pair("body", "guarded"), Pair("call", "exit")});
  E->insertTuples("Protect", {Sym("guarded")});
  E->insertTuples("Vulnerable", {Sym("call"), Sym("guarded")});
  E->run();

  auto Violations = E->getTuples("Violation");
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Symbols.resolve(Violations[0][0]), "call");
  // "guarded" is protected, so it never becomes unsafe.
  auto Unsafe = E->getTuples("Unsafe");
  for (const auto &Tuple : Unsafe)
    EXPECT_NE(Symbols.resolve(Tuple[0]), "guarded");
}

TEST(EngineTest, NegationStratified) {
  auto Prog = compile(
      ".decl node(x:number)\n.decl covered(x:number)\n"
      ".decl uncovered(x:number)\n"
      "uncovered(x) :- node(x), !covered(x).");
  auto E = Prog->makeEngine();
  E->insertTuples("node", {{1}, {2}, {3}});
  E->insertTuples("covered", {{2}});
  E->run();
  EXPECT_EQ(E->getTuples("uncovered"),
            (std::vector<DynTuple>{{1}, {3}}));
}

TEST(EngineTest, ArithmeticAndConstraints) {
  auto Prog = compile(
      ".decl n(x:number)\n.decl r(x:number, y:number)\n"
      "r(x, y) :- n(x), y = x * x + 1, y < 20.");
  auto E = Prog->makeEngine();
  E->insertTuples("n", {{1}, {2}, {3}, {4}, {5}});
  E->run();
  EXPECT_EQ(E->getTuples("r"),
            (std::vector<DynTuple>{{1, 2}, {2, 5}, {3, 10}, {4, 17}}));
}

TEST(EngineTest, MutualRecursionEvenOdd) {
  auto Prog = compile(
      ".decl succ(a:number, b:number)\n"
      ".decl even(x:number)\n.decl odd(x:number)\n"
      "even(0).\n"
      "odd(y) :- even(x), succ(x, y).\n"
      "even(y) :- odd(x), succ(x, y).");
  auto E = Prog->makeEngine();
  std::vector<DynTuple> Succ;
  for (RamDomain I = 0; I < 10; ++I)
    Succ.push_back({I, I + 1});
  E->insertTuples("succ", Succ);
  E->run();
  EXPECT_EQ(E->getTuples("even"),
            (std::vector<DynTuple>{{0}, {2}, {4}, {6}, {8}, {10}}));
  EXPECT_EQ(E->getTuples("odd"),
            (std::vector<DynTuple>{{1}, {3}, {5}, {7}, {9}}));
}

TEST(EngineTest, StringFunctors) {
  auto Prog = compile(
      ".decl name(s:symbol)\n.decl out(s:symbol, n:number)\n"
      "out(cat(s, \"!\"), strlen(s)) :- name(s).");
  auto E = Prog->makeEngine();
  SymbolTable &Symbols = Prog->getSymbolTable();
  E->insertTuples("name", {{Symbols.intern("ab")}, {Symbols.intern("xyz")}});
  E->run();
  auto Out = E->getTuples("out");
  ASSERT_EQ(Out.size(), 2u);
  // Sorted by ordinal; verify the contents regardless of order.
  bool SawAb = false, SawXyz = false;
  for (const auto &Tuple : Out) {
    const std::string &Text = Symbols.resolve(Tuple[0]);
    if (Text == "ab!") {
      EXPECT_EQ(Tuple[1], 2);
      SawAb = true;
    } else if (Text == "xyz!") {
      EXPECT_EQ(Tuple[1], 3);
      SawXyz = true;
    }
  }
  EXPECT_TRUE(SawAb);
  EXPECT_TRUE(SawXyz);
}

TEST(EngineTest, UnsignedAndFloatColumns) {
  auto Prog = compile(
      ".decl u(x:unsigned)\n.decl big(x:unsigned)\n"
      "big(x) :- u(x), x > 2000000000u.\n"
      ".decl f(x:float)\n.decl pos(x:float)\n"
      "pos(x) :- f(x), x > 0.0.");
  auto E = Prog->makeEngine();
  E->insertTuples("u", {{ramBitCast<RamDomain>(RamUnsigned(3000000000u))},
                        {ramBitCast<RamDomain>(RamUnsigned(5u))}});
  E->insertTuples("f", {{ramBitCast<RamDomain>(RamFloat(1.5f))},
                        {ramBitCast<RamDomain>(RamFloat(-2.5f))}});
  E->run();
  auto Big = E->getTuples("big");
  ASSERT_EQ(Big.size(), 1u);
  EXPECT_EQ(ramBitCast<RamUnsigned>(Big[0][0]), 3000000000u);
  auto Pos = E->getTuples("pos");
  ASSERT_EQ(Pos.size(), 1u);
  EXPECT_FLOAT_EQ(ramBitCast<RamFloat>(Pos[0][0]), 1.5f);
}

TEST(EngineTest, CountAggregate) {
  auto Prog = compile(
      ".decl e(a:number, b:number)\n.decl deg(a:number, n:number)\n"
      ".decl node(a:number)\n"
      "deg(x, n) :- node(x), n = count : { e(x, _) }.");
  auto E = Prog->makeEngine();
  E->insertTuples("node", {{1}, {2}, {3}});
  E->insertTuples("e", {{1, 5}, {1, 6}, {2, 7}});
  E->run();
  EXPECT_EQ(E->getTuples("deg"),
            (std::vector<DynTuple>{{1, 2}, {2, 1}, {3, 0}}));
}

TEST(EngineTest, SumMinMaxAggregates) {
  auto Prog = compile(
      ".decl v(x:number)\n.decl stats(s:number, lo:number, hi:number)\n"
      "stats(s, lo, hi) :- s = sum x : { v(x) }, lo = min y : { v(y) }, "
      "hi = max z : { v(z) }.");
  auto E = Prog->makeEngine();
  E->insertTuples("v", {{4}, {-2}, {10}});
  E->run();
  EXPECT_EQ(E->getTuples("stats"),
            (std::vector<DynTuple>{{12, -2, 10}}));
}

TEST(EngineTest, MinOverEmptyRangeProducesNothing) {
  auto Prog = compile(
      ".decl v(x:number)\n.decl lo(x:number)\n"
      "lo(m) :- m = min x : { v(x) }.");
  auto E = runProgram(*Prog);
  EXPECT_TRUE(E->getTuples("lo").empty());
}

TEST(EngineTest, CounterProducesDistinctIds) {
  auto Prog = compile(
      ".decl item(x:number)\n.decl numbered(id:number, x:number)\n"
      "numbered($, x) :- item(x).");
  auto E = Prog->makeEngine();
  E->insertTuples("item", {{10}, {20}, {30}});
  E->run();
  auto Out = E->getTuples("numbered");
  ASSERT_EQ(Out.size(), 3u);
  std::set<RamDomain> Ids;
  for (const auto &Tuple : Out)
    Ids.insert(Tuple[0]);
  EXPECT_EQ(Ids.size(), 3u);
}

TEST(EngineTest, EqrelComputesClosure) {
  auto Prog = compile(
      ".decl link(a:number, b:number)\n"
      ".decl same(a:number, b:number) eqrel\n"
      "same(a, b) :- link(a, b).");
  auto E = Prog->makeEngine();
  E->insertTuples("link", {{1, 2}, {2, 3}, {10, 11}});
  E->run();
  // Classes {1,2,3} and {10,11}: 9 + 4 pairs.
  EXPECT_EQ(E->getTuples("same").size(), 13u);
  const RelationWrapper *Same = E->getRelation("same");
  RamDomain Pair[2] = {3, 1};
  EXPECT_TRUE(Same->contains(Pair));
}

TEST(EngineTest, EqrelInRecursionWithReader) {
  // Reading an eqrel inside the same SCC exercises the naive fixpoint.
  auto Prog = compile(
      ".decl init(a:number, b:number)\n"
      ".decl bridge(a:number, b:number)\n"
      ".decl same(a:number, b:number) eqrel\n"
      "same(a, b) :- init(a, b).\n"
      "same(b, c) :- same(a, b), bridge(a, c).");
  auto E = Prog->makeEngine();
  E->insertTuples("init", {{1, 2}});
  E->insertTuples("bridge", {{2, 5}});
  E->run();
  const RelationWrapper *Same = E->getRelation("same");
  // bridge(2,5) with same(1,2): adds 2~5 (via a=2 when closure gives
  // same(2,2) etc.), so 1, 2, 5 all join one class.
  RamDomain Pair[2] = {1, 5};
  EXPECT_TRUE(Same->contains(Pair));
}

TEST(EngineTest, BrieRelationEndToEnd) {
  auto Prog = compile(
      ".decl edge(a:number, b:number) brie\n"
      ".decl path(a:number, b:number) brie\n"
      "path(x, y) :- edge(x, y).\n"
      "path(x, z) :- path(x, y), edge(y, z).");
  auto E = Prog->makeEngine();
  E->insertTuples("edge", {{0, 1}, {1, 2}, {2, 3}});
  E->run();
  EXPECT_EQ(E->getTuples("path").size(), 6u);
}

TEST(EngineTest, FileInputOutput) {
  const std::string Dir = ::testing::TempDir();
  {
    std::ofstream Facts(Dir + "/edge.facts");
    Facts << "1\t2\n2\t3\n";
  }
  auto Prog = compile(
      ".decl edge(a:number, b:number)\n.decl path(a:number, b:number)\n"
      ".input edge\n.output path\n.printsize path\n"
      "path(x, y) :- edge(x, y).\n"
      "path(x, z) :- path(x, y), edge(y, z).");
  EngineOptions Options;
  Options.FactDir = Dir;
  Options.OutputDir = Dir;
  auto E = Prog->makeEngine(Options);
  E->run();

  ASSERT_EQ(E->getPrintSizes().size(), 1u);
  EXPECT_EQ(E->getPrintSizes()[0].first, "path");
  EXPECT_EQ(E->getPrintSizes()[0].second, 3u);

  std::ifstream Out(Dir + "/path.csv");
  ASSERT_TRUE(Out.good());
  std::string Line;
  std::vector<std::string> Lines;
  while (std::getline(Out, Line))
    Lines.push_back(Line);
  EXPECT_EQ(Lines, (std::vector<std::string>{"1\t2", "1\t3", "2\t3"}));
}

TEST(EngineTest, ProfilerAttributesTimeToRules) {
  auto Prog = compile(
      ".decl e(a:number, b:number)\n.decl p(a:number, b:number)\n"
      "p(x, y) :- e(x, y).\n"
      "p(x, z) :- p(x, y), e(y, z).");
  auto E = Prog->makeEngine();
  std::vector<DynTuple> Chain;
  for (RamDomain I = 0; I < 50; ++I)
    Chain.push_back({I, I + 1});
  E->insertTuples("e", Chain);
  E->run();
  const Profiler &Prof = E->getProfiler();
  ASSERT_GE(Prof.rules().size(), 2u);
  std::optional<RuleProfile> Recursive =
      Prof.find("p(x, z) :- p(x, y), e(y, z). [v0]");
  ASSERT_TRUE(Recursive.has_value());
  EXPECT_GT(Recursive->Invocations, 1u); // once per fixpoint round
  EXPECT_GT(Recursive->Dispatches, 0u);
  EXPECT_TRUE(Recursive->Meta.Recursive);
  EXPECT_EQ(Recursive->Meta.Relation, "p");
  // Each iteration sample carries the delta growth of p; their sum is the
  // final size of p: 50*51/2 pairs from a 50-edge chain.
  std::uint64_t Delta = 0;
  for (const IterationSample &Sample : Recursive->Iterations)
    Delta += Sample.DeltaTuples;
  std::optional<RuleProfile> Base = Prof.find("p(x, y) :- e(x, y).");
  ASSERT_TRUE(Base.has_value());
  for (const IterationSample &Sample : Base->Iterations)
    Delta += Sample.DeltaTuples;
  EXPECT_EQ(Delta, 50u * 51u / 2u);
  EXPECT_GT(E->getNumDispatches(), 0u);
}

TEST(EngineTest, LongChainDeepRecursion) {
  auto Prog = compile(
      ".decl e(a:number, b:number)\n.decl p(a:number, b:number)\n"
      "p(x, y) :- e(x, y).\n"
      "p(x, z) :- p(x, y), e(y, z).");
  auto E = Prog->makeEngine();
  const RamDomain N = 300;
  std::vector<DynTuple> Chain;
  for (RamDomain I = 0; I < N; ++I)
    Chain.push_back({I, I + 1});
  E->insertTuples("e", Chain);
  E->run();
  EXPECT_EQ(E->getTuples("p").size(),
            static_cast<std::size_t>(N) * (N + 1) / 2);
}

} // namespace
