//===- tests/interp/RelationTest.cpp - De-specialized relation tests -----------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "interp/Relation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

using namespace stird;
using namespace stird::interp;

namespace {

/// A relation declaration fixture: binary relation with two orders, the
/// identity and the flipped order (serving searches on the second column).
class RelationTest : public ::testing::Test {
protected:
  RelationTest()
      : Decl("edge", {ColumnTypeKind::Number, ColumnTypeKind::Number},
             ram::StructureKind::Btree) {
    Decl.setOrders({{0, 1}, {1, 0}});
  }

  std::vector<Order> orders() const {
    return {Order({0, 1}), Order({1, 0})};
  }

  static std::vector<Tuple<2>> drain(RelationWrapper &Rel,
                                     std::unique_ptr<TupleStream> Stream) {
    BufferedTupleSource Source(std::move(Stream), Rel.getArity());
    std::vector<Tuple<2>> Result;
    while (const RamDomain *Tuple = Source.next())
      Result.push_back({Tuple[0], Tuple[1]});
    return Result;
  }

  ram::Relation Decl;
};

TEST_F(RelationTest, InsertContainsSize) {
  auto Rel = createRelation(Decl, orders());
  RamDomain T1[2] = {1, 2};
  RamDomain T2[2] = {2, 1};
  EXPECT_TRUE(Rel->insert(T1));
  EXPECT_FALSE(Rel->insert(T1));
  EXPECT_TRUE(Rel->insert(T2));
  EXPECT_EQ(Rel->size(), 2u);
  EXPECT_TRUE(Rel->contains(T1));
  RamDomain T3[2] = {1, 1};
  EXPECT_FALSE(Rel->contains(T3));
}

TEST_F(RelationTest, ScanDecodedYieldsSourceOrderTuples) {
  auto Rel = createRelation(Decl, orders());
  RamDomain T1[2] = {10, 1};
  RamDomain T2[2] = {20, 2};
  Rel->insert(T1);
  Rel->insert(T2);
  // Index 1 stores flipped tuples; decoding must restore source order.
  auto Tuples = drain(*Rel, Rel->scan(1, /*Decode=*/true));
  ASSERT_EQ(Tuples.size(), 2u);
  EXPECT_EQ(Tuples[0], (Tuple<2>{10, 1}));
  EXPECT_EQ(Tuples[1], (Tuple<2>{20, 2}));

  // Without decoding, tuples arrive in index order (flipped).
  auto Encoded = drain(*Rel, Rel->scan(1, /*Decode=*/false));
  EXPECT_EQ(Encoded[0], (Tuple<2>{1, 10}));
}

TEST_F(RelationTest, RangeOnSecondColumnViaFlippedIndex) {
  auto Rel = createRelation(Decl, orders());
  for (RamDomain X = 0; X < 10; ++X) {
    RamDomain T[2] = {X, X % 3};
    Rel->insert(T);
  }
  // Search b = 1 through index 1 (order {1, 0}); encoded key = (1, _).
  RamDomain Key[2] = {1, 0};
  auto Tuples =
      drain(*Rel, Rel->range(1, Key, /*PrefixLen=*/1, /*Mask=*/0b10,
                             /*Decode=*/true));
  std::set<Tuple<2>> Expected = {{1, 1}, {4, 1}, {7, 1}};
  EXPECT_EQ(Tuples.size(), Expected.size());
  for (const auto &Tuple : Tuples)
    EXPECT_TRUE(Expected.count(Tuple));
  EXPECT_TRUE(Rel->containsRange(1, Key, 1, 0b10));
  RamDomain Missing[2] = {99, 0};
  EXPECT_FALSE(Rel->containsRange(1, Missing, 1, 0b10));
}

TEST_F(RelationTest, SwapExchangesContentsOfAllIndexes) {
  auto RelA = createRelation(Decl, orders());
  auto RelB = createRelation(Decl, orders());
  RamDomain T1[2] = {1, 2};
  RamDomain T2[2] = {3, 4};
  RelA->insert(T1);
  RelB->insert(T2);
  RelA->swap(*RelB);
  EXPECT_TRUE(RelA->contains(T2));
  EXPECT_TRUE(RelB->contains(T1));
  // The secondary index must have been swapped too.
  RamDomain Key[2] = {4, 0};
  EXPECT_TRUE(RelA->containsRange(1, Key, 1, 0b10));
}

TEST_F(RelationTest, InsertAllMerges) {
  auto RelA = createRelation(Decl, orders());
  auto RelB = createRelation(Decl, orders());
  for (RamDomain X = 0; X < 5; ++X) {
    RamDomain T[2] = {X, X};
    RelA->insert(T);
  }
  RamDomain Extra[2] = {2, 2};
  RelB->insert(Extra);
  RelB->insertAll(*RelA);
  EXPECT_EQ(RelB->size(), 5u);
}

TEST_F(RelationTest, ForEachVisitsAllTuplesInSourceOrder) {
  auto Rel = createRelation(Decl, orders());
  std::set<Tuple<2>> Expected;
  std::mt19937 Rng(3);
  std::uniform_int_distribution<RamDomain> Dist(-50, 50);
  for (int I = 0; I < 300; ++I) {
    Tuple<2> T = {Dist(Rng), Dist(Rng)};
    Rel->insert(T.data());
    Expected.insert(T);
  }
  std::vector<Tuple<2>> Seen;
  Rel->forEach(
      [&](const RamDomain *Tuple) { Seen.push_back({Tuple[0], Tuple[1]}); });
  EXPECT_EQ(Seen.size(), Expected.size());
  for (const auto &Tuple : Seen)
    EXPECT_TRUE(Expected.count(Tuple));
}

TEST(RelationFactoryTest, CreatesEveryShapeInThePortfolio) {
  // B-tree arities 1..16.
  for (std::size_t Arity = 1; Arity <= 16; ++Arity) {
    ram::Relation Decl("r",
                       std::vector<ColumnTypeKind>(
                           Arity, ColumnTypeKind::Number),
                       ram::StructureKind::Btree);
    auto Rel = createRelation(Decl, {Order::identity(Arity)});
    EXPECT_EQ(Rel->getKind(), RelKind::Btree);
    EXPECT_EQ(Rel->getArity(), Arity);
    std::vector<RamDomain> T(Arity, 1);
    EXPECT_TRUE(Rel->insert(T.data()));
    EXPECT_TRUE(Rel->contains(T.data()));
  }
  // Brie arities 1..8.
  for (std::size_t Arity = 1; Arity <= 8; ++Arity) {
    ram::Relation Decl("r",
                       std::vector<ColumnTypeKind>(
                           Arity, ColumnTypeKind::Number),
                       ram::StructureKind::Brie);
    auto Rel = createRelation(Decl, {Order::identity(Arity)});
    EXPECT_EQ(Rel->getKind(), RelKind::Brie);
    std::vector<RamDomain> T(Arity, 2);
    EXPECT_TRUE(Rel->insert(T.data()));
  }
  // Eqrel.
  ram::Relation EqDecl(
      "eq", {ColumnTypeKind::Number, ColumnTypeKind::Number},
      ram::StructureKind::Eqrel);
  auto Eq = createRelation(EqDecl, {Order::identity(2)});
  EXPECT_EQ(Eq->getKind(), RelKind::Eqrel);
}

TEST(EqrelRelationTest, RangeMasksFollowUnionFindSemantics) {
  ram::Relation Decl("eq",
                     {ColumnTypeKind::Number, ColumnTypeKind::Number},
                     ram::StructureKind::Eqrel);
  auto Rel = createRelation(Decl, {Order::identity(2)});
  RamDomain P1[2] = {1, 2};
  RamDomain P2[2] = {2, 3};
  Rel->insert(P1);
  Rel->insert(P2);
  // Class {1,2,3}: 9 pairs.
  EXPECT_EQ(Rel->size(), 9u);

  auto Drain = [&](std::unique_ptr<TupleStream> Stream) {
    BufferedTupleSource Source(std::move(Stream), 2);
    std::vector<Tuple<2>> Result;
    while (const RamDomain *Tuple = Source.next())
      Result.push_back({Tuple[0], Tuple[1]});
    return Result;
  };

  // Mask 01: pairs (1, *).
  RamDomain KeyA[2] = {1, 0};
  auto FirstBound = Drain(Rel->range(0, KeyA, 1, 0b01, false));
  EXPECT_EQ(FirstBound,
            (std::vector<Tuple<2>>{{1, 1}, {1, 2}, {1, 3}}));

  // Mask 10: pairs (*, 3).
  RamDomain KeyB[2] = {0, 3};
  auto SecondBound = Drain(Rel->range(0, KeyB, 1, 0b10, false));
  EXPECT_EQ(SecondBound,
            (std::vector<Tuple<2>>{{1, 3}, {2, 3}, {3, 3}}));

  // Mask 11: exactly one pair when related.
  RamDomain KeyC[2] = {3, 1};
  auto Both = Drain(Rel->range(0, KeyC, 2, 0b11, false));
  EXPECT_EQ(Both, (std::vector<Tuple<2>>{{3, 1}}));
  RamDomain KeyD[2] = {3, 99};
  EXPECT_TRUE(Drain(Rel->range(0, KeyD, 2, 0b11, false)).empty());

  // Full scan yields the whole closure.
  EXPECT_EQ(Drain(Rel->scan(0, false)).size(), 9u);
}

TEST(LegacyRelationTest, RuntimeComparatorMatchesDespecializedResults) {
  ram::Relation Decl("edge",
                     {ColumnTypeKind::Number, ColumnTypeKind::Number},
                     ram::StructureKind::Btree);
  Decl.setOrders({{0, 1}, {1, 0}});
  std::vector<Order> Orders = {Order({0, 1}), Order({1, 0})};
  auto Modern = createRelation(Decl, Orders, /*Legacy=*/false);
  auto Legacy = createRelation(Decl, Orders, /*Legacy=*/true);
  EXPECT_EQ(Legacy->getKind(), RelKind::Legacy);

  std::mt19937 Rng(9);
  std::uniform_int_distribution<RamDomain> Dist(-20, 20);
  for (int I = 0; I < 500; ++I) {
    RamDomain T[2] = {Dist(Rng), Dist(Rng)};
    EXPECT_EQ(Modern->insert(T), Legacy->insert(T));
  }
  EXPECT_EQ(Modern->size(), Legacy->size());

  // Identical range results through the flipped index.
  for (RamDomain Key = -20; Key <= 20; ++Key) {
    RamDomain Pattern[2] = {Key, Key};
    EXPECT_EQ(Modern->containsRange(1, Pattern, 1, 0b10),
              Legacy->containsRange(1, Pattern, 1, 0b10))
        << "key " << Key;

    auto DrainSorted = [](RelationWrapper &,
                          std::unique_ptr<TupleStream> Stream) {
      BufferedTupleSource Source(std::move(Stream), 2);
      std::vector<Tuple<2>> Result;
      while (const RamDomain *Tuple = Source.next())
        Result.push_back({Tuple[0], Tuple[1]});
      std::sort(Result.begin(), Result.end());
      return Result;
    };
    EXPECT_EQ(DrainSorted(*Modern, Modern->range(1, Pattern, 1, 0b10, true)),
              DrainSorted(*Legacy, Legacy->range(1, Pattern, 1, 0b10, true)));
  }
}

TEST(BufferedTupleSourceTest, AmortizesRefillsOverBufferSize) {
  /// A stream that counts its virtual refills.
  class CountingStream final : public TupleStream {
  public:
    std::size_t Remaining;
    std::size_t Refills = 0;
    explicit CountingStream(std::size_t N) : Remaining(N) {}
    std::size_t refill(RamDomain *Buffer, std::size_t Capacity) override {
      ++Refills;
      std::size_t N = std::min(Capacity, Remaining);
      for (std::size_t I = 0; I < N; ++I)
        Buffer[I] = static_cast<RamDomain>(I);
      Remaining -= N;
      return N;
    }
  };

  auto Stream = std::make_unique<CountingStream>(1000);
  CountingStream *Raw = Stream.get();
  BufferedTupleSource Source(std::move(Stream), /*Arity=*/1);
  std::size_t Count = 0;
  while (Source.next())
    ++Count;
  EXPECT_EQ(Count, 1000u);
  // 1000 tuples at 128 per refill: 8 refills plus the final empty one.
  EXPECT_EQ(Raw->Refills, 9u);
}

} // namespace
