//===- tests/interp/DifferentialSubstrateTest.cpp - Substrate invariance ------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The substrate-invariance contract, checked end-to-end: which concrete
/// data structure a relation lives in (B-tree, Brie or ART) is a storage
/// decision, never a semantic one. For every seeded random program the
/// resolved relation contents must be bit-identical across every substrate,
/// at -j1 and -j4, both for a one-shot evaluation and for a k-batch mixed
/// insert/retract stream replayed through the incremental Maintainer.
///
/// Substrates are forced program-wide through CompileOptions'
/// SubstrateOverrides (the --substrate path), so the delta_/new_ aux
/// relations inherit the forced structure too — exactly what a feedback
/// -driven selection would produce. On a mismatch the failing seed and
/// program are written into $STIRD_ARTIFACT_DIR (when set), the artifact
/// naming the diverging substrate, mirroring the scheduler suite.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "inc/Maintainer.h"
#include "interp/Engine.h"
#include "support/ProgramGen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace stird;

namespace {

using Contents = std::vector<std::pair<std::string, std::vector<DynTuple>>>;

const char *const Substrates[] = {"btree", "brie", "art"};

/// Compile options forcing every relation of \p P onto \p Substrate.
/// Generated programs never use eqrel and stay at arity <= 3, so every
/// forcing is applicable and silent.
core::CompileOptions forceAll(const testgen::GeneratedProgram &P,
                              const std::string &Substrate,
                              bool WithMaintenance = false) {
  core::CompileOptions Compile;
  Compile.EmitMaintenance = WithMaintenance;
  for (const std::string &Name : P.Relations)
    Compile.SubstrateOverrides[Name] = Substrate;
  return Compile;
}

Contents runOneShot(const testgen::GeneratedProgram &P,
                    const std::string &Substrate, std::size_t Threads) {
  std::vector<std::string> Errors;
  auto Prog =
      core::Program::fromSource(P.Source, &Errors, forceAll(P, Substrate));
  EXPECT_NE(Prog, nullptr) << "seed " << P.Seed << " substrate " << Substrate
                           << ": "
                           << (Errors.empty() ? "compile failed" : Errors[0]);
  if (!Prog)
    return {};

  interp::EngineOptions Options;
  Options.NumThreads = Threads;
  Options.EchoPrintSize = false;
  auto Engine = Prog->makeEngine(Options);
  Engine->run();

  Contents Out;
  for (const std::string &Name : P.Relations) {
    std::vector<DynTuple> Tuples = Engine->getTuples(Name);
    std::sort(Tuples.begin(), Tuples.end());
    Out.emplace_back(Name, std::move(Tuples));
  }
  return Out;
}

void writeFailureArtifacts(const testgen::GeneratedProgram &P,
                           const std::string &Description) {
  const char *Dir = std::getenv("STIRD_ARTIFACT_DIR");
  if (!Dir || !*Dir)
    return;
  const std::string Base(Dir);
  std::ofstream SeedOut(Base + "/failing_seed.txt");
  SeedOut << P.Seed << " " << Description << "\n";
  std::ofstream SrcOut(Base + "/failing.dl");
  SrcOut << P.Source;
}

DynTuple toTuple(const std::vector<int> &Values) {
  DynTuple Tuple(Values.size());
  for (std::size_t I = 0; I < Values.size(); ++I)
    Tuple[I] = static_cast<RamDomain>(Values[I]);
  return Tuple;
}

//===----------------------------------------------------------------------===//
// One-shot sweep: substrate x thread count
//===----------------------------------------------------------------------===//

class DifferentialSubstrateTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialSubstrateTest, OneShotAllSubstratesAgree) {
  const testgen::GeneratedProgram P = testgen::generateProgram(GetParam());

  const Contents Reference = runOneShot(P, "btree", 1);
  if (Reference.empty())
    return; // compile failure already reported

  for (const char *Substrate : Substrates) {
    for (std::size_t Threads : {std::size_t(1), std::size_t(4)}) {
      const Contents Out = runOneShot(P, Substrate, Threads);
      const std::string Description = std::string("--substrate *:") +
                                      Substrate + " -j" +
                                      std::to_string(Threads);
      if (Out != Reference)
        writeFailureArtifacts(P, Description);
      EXPECT_EQ(Out, Reference)
          << "seed " << P.Seed << " under " << Description << "\n"
          << P.Source;
    }
  }
}

//===----------------------------------------------------------------------===//
// Incremental sweep: substrate x thread count x k-batch mixed streams
//===----------------------------------------------------------------------===//

TEST_P(DifferentialSubstrateTest, IncrementalAllSubstratesAgree) {
  const testgen::GeneratedProgram P = testgen::generateProgram(GetParam());
  constexpr std::size_t NumOps = 40;
  const std::vector<testgen::GeneratedOp> Ops =
      testgen::generateMixedStream(P, P.Seed, NumOps);

  for (const char *Substrate : Substrates) {
    std::vector<std::string> Errors;
    auto Prog = core::Program::fromSource(
        P.RulesOnly, &Errors, forceAll(P, Substrate, /*WithMaintenance=*/true));
    ASSERT_NE(Prog, nullptr)
        << "seed " << P.Seed << " substrate " << Substrate << ": "
        << (Errors.empty() ? "compile failed" : Errors[0]);
    if (!Prog->getRam().hasMaintenance())
      continue; // ineligibility is the fuzz driver's concern, not substrate's

    for (std::size_t K : {std::size_t(1), std::size_t(4)}) {
      for (std::size_t Threads : {std::size_t(1), std::size_t(4)}) {
        const std::string Description = std::string("incremental *:") +
                                        Substrate + " k=" +
                                        std::to_string(K) + " -j" +
                                        std::to_string(Threads);
        interp::EngineOptions Opts;
        Opts.SuppressIo = true;
        Opts.NumThreads = Threads;
        Opts.EchoPrintSize = false;
        auto Eng = Prog->makeEngine(Opts);
        std::map<std::string, std::set<DynTuple>> State;
        for (const testgen::GeneratedFact &Fact : P.Facts)
          State[Fact.Relation].insert(toTuple(Fact.Values));
        for (const auto &[Name, Tuples] : State)
          Eng->insertTuples(Name, {Tuples.begin(), Tuples.end()});
        Eng->run();
        inc::Maintainer Maint(Prog->getRam(), *Eng);
        Maint.bootstrap();

        const std::size_t PerBatch = (NumOps + K - 1) / K;
        for (std::size_t Begin = 0; Begin < NumOps; Begin += PerBatch) {
          const std::size_t End = std::min(NumOps, Begin + PerBatch);
          // Net effect of the slice (last op per tuple wins) — the
          // semantics the Maintainer's retract-then-insert order and the
          // sequentially tracked State agree on.
          std::map<std::string, std::map<DynTuple, bool>> Net;
          for (std::size_t I = Begin; I < End; ++I)
            Net[Ops[I].Relation][toTuple(Ops[I].Values)] = Ops[I].Retract;
          inc::MixedBatch Batch;
          for (const auto &[Name, Tuples] : Net) {
            inc::RelationOps RO;
            RO.Relation = Name;
            for (const auto &[Tuple, Retract] : Tuples)
              (Retract ? RO.Retracts : RO.Inserts).push_back(Tuple);
            Batch.push_back(std::move(RO));
          }
          ASSERT_EQ(Maint.rejectReason(Batch), "")
              << "seed " << P.Seed << " " << Description;
          Maint.apply(Batch);
          for (const auto &[Name, Tuples] : Net)
            for (const auto &[Tuple, Retract] : Tuples) {
              if (Retract)
                State[Name].erase(Tuple);
              else
                State[Name].insert(Tuple);
            }

          // One-shot oracle over the net EDB, on the same substrate.
          interp::EngineOptions OracleOpts;
          OracleOpts.SuppressIo = true;
          OracleOpts.EchoPrintSize = false;
          auto Oracle = Prog->makeEngine(OracleOpts);
          for (const auto &[Name, Tuples] : State)
            Oracle->insertTuples(Name, {Tuples.begin(), Tuples.end()});
          Oracle->run();
          for (const std::string &Rel : P.Relations) {
            std::vector<DynTuple> Got = Eng->getTuples(Rel);
            std::vector<DynTuple> Want = Oracle->getTuples(Rel);
            std::sort(Got.begin(), Got.end());
            std::sort(Want.begin(), Want.end());
            if (Got != Want)
              writeFailureArtifacts(P, Description + " relation=" + Rel);
            ASSERT_EQ(Got, Want)
                << "seed " << P.Seed << " " << Description << " relation="
                << Rel << " prefix=[0," << End << ")";
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeededPrograms, DifferentialSubstrateTest,
                         ::testing::Range<std::uint64_t>(1, 21));

} // namespace
