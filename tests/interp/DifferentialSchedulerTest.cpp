//===- tests/interp/DifferentialSchedulerTest.cpp - Scheduler invariance -------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduler's determinism contract, checked end-to-end: where a morsel
/// runs is a scheduling decision, never a semantic one, so for every
/// program the resolved relation contents at any thread count and any
/// morsel size must be bit-identical to the sequential run. The programs
/// are seeded random programs with a skew-heavy fact block (~90% of base
/// rows share one hub value), so join work concentrates in a few morsels
/// and the steal path — not just static partitioning — carries the load.
///
/// The sweep covers -j{2,4,8} x morsel sizes {1, 64, default} on the
/// default backend, plus the de-specialized dynamic backend at the most
/// adversarial point (-j8, morsel size 1). On a mismatch the failing seed
/// and program are written into $STIRD_ARTIFACT_DIR (when set), mirroring
/// the nightly fuzz driver's failure artifacts, so CI uploads a repro.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "interp/Engine.h"
#include "support/ProgramGen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace stird;

namespace {

/// Relation name -> sorted tuples (generated programs are all-number, so
/// raw RamDomain comparison is exact).
using Contents = std::vector<std::pair<std::string, std::vector<DynTuple>>>;

struct RunConfig {
  std::size_t NumThreads = 1;
  std::size_t MorselSize = 0; // 0 = engine default
  interp::Backend TheBackend = interp::Backend::StaticLambda;
};

Contents run(const testgen::GeneratedProgram &P, const RunConfig &Config) {
  std::vector<std::string> Errors;
  auto Prog = core::Program::fromSource(P.Source, &Errors);
  EXPECT_NE(Prog, nullptr) << "seed " << P.Seed << ": "
                           << (Errors.empty() ? "compile failed" : Errors[0])
                           << "\n"
                           << P.Source;
  if (!Prog)
    return {};

  interp::EngineOptions Options;
  Options.TheBackend = Config.TheBackend;
  Options.NumThreads = Config.NumThreads;
  Options.MorselSize = Config.MorselSize;
  Options.EchoPrintSize = false;
  auto Engine = Prog->makeEngine(Options);
  Engine->run();

  Contents Out;
  for (const std::string &Name : P.Relations) {
    std::vector<DynTuple> Tuples = Engine->getTuples(Name);
    std::sort(Tuples.begin(), Tuples.end());
    Out.emplace_back(Name, std::move(Tuples));
  }
  return Out;
}

std::string describe(const RunConfig &Config) {
  return "-j" + std::to_string(Config.NumThreads) + " --morsel-size " +
         (Config.MorselSize == 0 ? std::string("default")
                                 : std::to_string(Config.MorselSize)) +
         (Config.TheBackend == interp::Backend::DynamicAdapter
              ? " --backend dynamic"
              : "");
}

/// Writes the failing seed and program where CI's scheduler-stress job
/// uploads artifacts from (no-op when STIRD_ARTIFACT_DIR is unset).
void writeFailureArtifacts(const testgen::GeneratedProgram &P,
                           const RunConfig &Config) {
  const char *Dir = std::getenv("STIRD_ARTIFACT_DIR");
  if (!Dir || !*Dir)
    return;
  const std::string Base(Dir);
  std::ofstream SeedOut(Base + "/failing_seed.txt");
  SeedOut << P.Seed << " " << describe(Config) << "\n";
  std::ofstream SrcOut(Base + "/failing.dl");
  SrcOut << P.Source;
}

class DifferentialSchedulerTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialSchedulerTest, AllThreadCountsAndMorselSizesAgree) {
  const testgen::GeneratedProgram P =
      testgen::generateSkewedProgram(GetParam());

  const Contents Reference = run(P, RunConfig{});
  if (Reference.empty())
    return; // compile failure already reported

  std::vector<RunConfig> Sweep;
  for (std::size_t Threads : {std::size_t(2), std::size_t(4),
                              std::size_t(8)})
    for (std::size_t Morsel : {std::size_t(1), std::size_t(64),
                               std::size_t(0)})
      Sweep.push_back({Threads, Morsel, interp::Backend::StaticLambda});
  // The de-specialized executor shares runPartitions/runRuleGroup shape
  // but not code; pin it at the most steal-heavy point of the grid.
  Sweep.push_back({8, 1, interp::Backend::DynamicAdapter});

  for (const RunConfig &Config : Sweep) {
    const Contents Out = run(P, Config);
    if (Out != Reference)
      writeFailureArtifacts(P, Config);
    EXPECT_EQ(Out, Reference)
        << "seed " << P.Seed << " under " << describe(Config) << "\n"
        << P.Source;
  }
}

INSTANTIATE_TEST_SUITE_P(SkewedPrograms, DifferentialSchedulerTest,
                         ::testing::Range<std::uint64_t>(1, 31));

} // namespace
