//===- tests/interp/OptimizationTest.cpp - STI optimization tests --------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Invariant 6 of DESIGN.md: none of the paper's optimizations may change
/// results — only dispatch counts and time. Each test runs the same program
/// with an optimization toggled and compares contents and counters.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "interp/Engine.h"

#include <gtest/gtest.h>

using namespace stird;
using namespace stird::interp;

namespace {

/// A program whose joins exercise non-identity index orders, constants,
/// tuple elements and arithmetic filters.
const char *JoinProgram = R"(
  .decl e(a:number, b:number)
  .decl f(a:number, b:number)
  .decl out(a:number, b:number)
  .decl tc(a:number, b:number)
  out(x, z) :- e(x, y), f(z, y), x + y * 2 < 60, z != 3.
  tc(x, y) :- e(x, y).
  tc(x, z) :- tc(x, y), e(y, z).
)";

std::vector<DynTuple> edges() {
  std::vector<DynTuple> Result;
  for (RamDomain I = 0; I < 30; ++I)
    Result.push_back({I, (I * 7) % 30});
  return Result;
}

struct RunResult {
  std::vector<DynTuple> Out;
  std::vector<DynTuple> Tc;
  std::uint64_t Dispatches;
};

RunResult runWith(EngineOptions Options) {
  std::vector<std::string> Errors;
  auto Prog = core::Program::fromSource(JoinProgram, &Errors);
  EXPECT_NE(Prog, nullptr) << (Errors.empty() ? "" : Errors[0]);
  auto E = Prog->makeEngine(Options);
  E->insertTuples("e", edges());
  E->insertTuples("f", edges());
  E->run();
  return {E->getTuples("out"), E->getTuples("tc"), E->getNumDispatches()};
}

TEST(OptimizationTest, SuperInstructionsPreserveResultsAndCutDispatches) {
  EngineOptions With;
  With.SuperInstructions = true;
  EngineOptions Without;
  Without.SuperInstructions = false;

  RunResult A = runWith(With);
  RunResult B = runWith(Without);
  EXPECT_EQ(A.Out, B.Out);
  EXPECT_EQ(A.Tc, B.Tc);
  // Folding constants/tuple-elements must eliminate dispatches (Fig 19).
  EXPECT_LT(A.Dispatches, B.Dispatches);
}

TEST(OptimizationTest, StaticReorderingPreservesResults) {
  EngineOptions With;
  With.StaticReordering = true;
  EngineOptions Without;
  Without.StaticReordering = false;

  RunResult A = runWith(With);
  RunResult B = runWith(Without);
  EXPECT_EQ(A.Out, B.Out);
  EXPECT_EQ(A.Tc, B.Tc);
}

TEST(OptimizationTest, FusedConditionsPreserveResultsAndCutDispatches) {
  EngineOptions With;
  With.FuseConditions = true;
  EngineOptions Without;
  Without.FuseConditions = false;

  RunResult A = runWith(With);
  RunResult B = runWith(Without);
  EXPECT_EQ(A.Out, B.Out);
  EXPECT_EQ(A.Tc, B.Tc);
  // The arithmetic filter collapses into one micro-program dispatch.
  EXPECT_LT(A.Dispatches, B.Dispatches);
}

TEST(OptimizationTest, AllOptimizationCombinationsAgree) {
  std::vector<DynTuple> ReferenceOut, ReferenceTc;
  bool First = true;
  for (int Super = 0; Super <= 1; ++Super)
    for (int Reorder = 0; Reorder <= 1; ++Reorder)
      for (int Fuse = 0; Fuse <= 1; ++Fuse) {
        EngineOptions Options;
        Options.SuperInstructions = Super != 0;
        Options.StaticReordering = Reorder != 0;
        Options.FuseConditions = Fuse != 0;
        RunResult Result = runWith(Options);
        if (First) {
          ReferenceOut = Result.Out;
          ReferenceTc = Result.Tc;
          First = false;
          EXPECT_FALSE(ReferenceOut.empty());
          EXPECT_FALSE(ReferenceTc.empty());
          continue;
        }
        EXPECT_EQ(Result.Out, ReferenceOut)
            << "super=" << Super << " reorder=" << Reorder
            << " fuse=" << Fuse;
        EXPECT_EQ(Result.Tc, ReferenceTc);
      }
}

TEST(OptimizationTest, LambdaAndPlainStaticEnginesAgree) {
  EngineOptions Lambda;
  Lambda.TheBackend = Backend::StaticLambda;
  EngineOptions Plain;
  Plain.TheBackend = Backend::StaticPlain;

  RunResult A = runWith(Lambda);
  RunResult B = runWith(Plain);
  EXPECT_EQ(A.Out, B.Out);
  EXPECT_EQ(A.Tc, B.Tc);
  // Identical trees: identical dispatch counts.
  EXPECT_EQ(A.Dispatches, B.Dispatches);
}

TEST(OptimizationTest, DispatchCountsAreDeterministic) {
  EngineOptions Options;
  RunResult A = runWith(Options);
  RunResult B = runWith(Options);
  EXPECT_EQ(A.Dispatches, B.Dispatches);
}

TEST(OptimizationTest, AggregateThroughFlippedIndexHonorsReordering) {
  // The aggregate binds e's *second* column, forcing a non-identity index;
  // with static reordering the target expression must be rewritten to the
  // encoded position, without it the scanned tuple is decoded. Both must
  // agree with the hand-computed sums.
  const char *Source = R"(
    .decl e(a:number, b:number)
    .decl n(x:number)
    .decl out(x:number, s:number)
    out(x, s) :- n(x), s = sum a : { e(a, x) }.
  )";
  auto Run = [&](bool Reorder) {
    std::vector<std::string> Errors;
    auto Prog = core::Program::fromSource(Source, &Errors);
    EXPECT_NE(Prog, nullptr) << (Errors.empty() ? "" : Errors[0]);
    EngineOptions Options;
    Options.StaticReordering = Reorder;
    auto E = Prog->makeEngine(Options);
    E->insertTuples("n", {{1}, {2}, {3}});
    E->insertTuples("e", {{10, 1}, {20, 1}, {5, 2}, {7, 9}});
    E->run();
    return E->getTuples("out");
  };
  auto With = Run(true);
  auto Without = Run(false);
  EXPECT_EQ(With, Without);
  EXPECT_EQ(With, (std::vector<DynTuple>{{1, 30}, {2, 5}, {3, 0}}));
}

TEST(OptimizationTest, FusionSkipsFloatConditions) {
  // Float comparisons are not fusible; results must still be right.
  const char *FloatProgram = R"(
    .decl f(x:float, y:float)
    .decl out(x:float)
    out(x) :- f(x, y), x > y.
  )";
  std::vector<std::string> Errors;
  auto Prog = core::Program::fromSource(FloatProgram, &Errors);
  ASSERT_NE(Prog, nullptr) << (Errors.empty() ? "" : Errors[0]);
  EngineOptions Options;
  Options.FuseConditions = true;
  auto E = Prog->makeEngine(Options);
  E->insertTuples("f",
                  {{ramBitCast<RamDomain>(RamFloat(2.5f)),
                    ramBitCast<RamDomain>(RamFloat(1.5f))},
                   {ramBitCast<RamDomain>(RamFloat(0.5f)),
                    ramBitCast<RamDomain>(RamFloat(1.5f))}});
  E->run();
  auto Out = E->getTuples("out");
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_FLOAT_EQ(ramBitCast<RamFloat>(Out[0][0]), 2.5f);
}

} // namespace
