//===- tests/interp/ProfilerTest.cpp - Per-rule profiler tests -----------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct tests of the Profiler accumulator plus engine-level checks that
/// per-rule timing/iteration counts are recorded for every rule version,
/// and that profiling composes with multi-threaded evaluation: dispatch
/// counts are merged at the partition barrier inside the timed window, so
/// the per-rule numbers must come out identical at every thread count.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "interp/Profiler.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace stird;
using namespace stird::interp;

namespace {

TEST(ProfilerTest, RegisterRuleIsIdempotent) {
  Profiler Prof;
  std::size_t A = Prof.registerRule("r(x) :- e(x).");
  std::size_t B = Prof.registerRule("s(x) :- f(x).");
  EXPECT_NE(A, B);
  EXPECT_EQ(Prof.registerRule("r(x) :- e(x)."), A);
  EXPECT_EQ(Prof.registerRule("s(x) :- f(x)."), B);
  EXPECT_EQ(Prof.rules().size(), 2u);
}

TEST(ProfilerTest, RecordAccumulates) {
  Profiler Prof;
  std::size_t Id = Prof.registerRule("rule");
  Prof.record(Id, 0.5, 100, 7);
  Prof.record(Id, 0.25, 40, 2);
  Prof.record(Id, 0.25, 2);
  std::optional<RuleProfile> Profile = Prof.find("rule");
  ASSERT_TRUE(Profile.has_value());
  EXPECT_EQ(Profile->Label, "rule");
  EXPECT_DOUBLE_EQ(Profile->Seconds, 1.0);
  EXPECT_EQ(Profile->Invocations, 3u);
  EXPECT_EQ(Profile->Dispatches, 142u);
  EXPECT_EQ(Profile->DeltaTuples, 9u);
  // Every execution is kept as an iteration sample, in order.
  ASSERT_EQ(Profile->Iterations.size(), 3u);
  EXPECT_EQ(Profile->Iterations[0].DeltaTuples, 7u);
  EXPECT_EQ(Profile->Iterations[1].DeltaTuples, 2u);
  EXPECT_EQ(Profile->Iterations[2].DeltaTuples, 0u);
}

TEST(ProfilerTest, FindUnknownLabelIsEmpty) {
  Profiler Prof;
  Prof.registerRule("known");
  EXPECT_FALSE(Prof.find("unknown").has_value());
  ASSERT_TRUE(Prof.find("known").has_value());
  EXPECT_EQ(Prof.find("known")->Invocations, 0u);
}

TEST(ProfilerTest, RegisterRuleKeepsMetadata) {
  Profiler Prof;
  RuleMeta Meta;
  Meta.Stratum = 2;
  Meta.Relation = "path";
  Meta.Version = 1;
  Meta.Recursive = true;
  std::size_t Id = Prof.registerRule("path... [v1]", Meta);
  // Re-registration keeps the first metadata.
  EXPECT_EQ(Prof.registerRule("path... [v1]"), Id);
  std::optional<RuleProfile> Profile = Prof.find("path... [v1]");
  ASSERT_TRUE(Profile.has_value());
  EXPECT_EQ(Profile->Meta.Stratum, 2);
  EXPECT_EQ(Profile->Meta.Relation, "path");
  EXPECT_EQ(Profile->Meta.Version, 1);
  EXPECT_TRUE(Profile->Meta.Recursive);
}

constexpr const char *TcSource = R"(
.decl edge(a:number, b:number)
.decl path(a:number, b:number)
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
)";

std::vector<DynTuple> chainEdges(RamDomain Length) {
  std::vector<DynTuple> Edges;
  for (RamDomain I = 0; I < Length; ++I)
    Edges.push_back({I, I + 1});
  return Edges;
}

/// Runs the transitive closure and returns the engine's profiler output as
/// (label, invocations, dispatches) — Seconds is wall time and excluded.
std::vector<std::tuple<std::string, std::uint64_t, std::uint64_t>>
runProfiled(std::size_t NumThreads, Backend TheBackend) {
  auto Prog = core::Program::fromSource(TcSource);
  EXPECT_NE(Prog, nullptr);
  if (!Prog)
    return {};
  EngineOptions Options;
  Options.TheBackend = TheBackend;
  Options.NumThreads = NumThreads;
  auto Engine = Prog->makeEngine(Options);
  Engine->insertTuples("edge", chainEdges(40));
  Engine->run();
  std::vector<std::tuple<std::string, std::uint64_t, std::uint64_t>> Result;
  for (const RuleProfile &Rule : Engine->getProfiler().rules())
    Result.emplace_back(Rule.Label, Rule.Invocations, Rule.Dispatches);
  return Result;
}

TEST(ProfilerTest, EngineRecordsEveryRuleVersion) {
  auto Profiles = runProfiled(1, Backend::StaticLambda);
  ASSERT_FALSE(Profiles.empty());
  bool SawBase = false, SawRecursive = false;
  for (const auto &[Label, Invocations, Dispatches] : Profiles) {
    EXPECT_GT(Invocations, 0u) << Label;
    EXPECT_GT(Dispatches, 0u) << Label;
    if (Label.find("path(x, y) :- edge(x, y)") != std::string::npos)
      SawBase = true;
    if (Label.find("path(x, z) :- path(x, y), edge(y, z)") !=
        std::string::npos) {
      SawRecursive = true;
      // Semi-naive evaluation re-times the recursive rule every loop
      // iteration: a 40-chain needs many rounds to reach the fixpoint.
      EXPECT_GT(Invocations, 10u);
    }
  }
  EXPECT_TRUE(SawBase);
  EXPECT_TRUE(SawRecursive);
}

TEST(ProfilerTest, ConcurrentRecordLosesNothing) {
  // record() must be safe to call from parallel sections; Invocations,
  // Dispatches and Seconds are guarded by one mutex, so concurrent
  // recording loses no updates and tears none. Run under ThreadSanitizer
  // via the `sanitize` ctest label.
  Profiler Prof;
  const std::size_t IdA = Prof.registerRule("rule-a");
  const std::size_t IdB = Prof.registerRule("rule-b");
  constexpr int NumThreads = 4, PerThread = 2000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&Prof, IdA, IdB] {
      for (int I = 0; I < PerThread; ++I)
        Prof.record(I % 2 ? IdA : IdB, 0.001, 3);
    });
  for (auto &Thread : Threads)
    Thread.join();
  for (const std::size_t Id : {IdA, IdB}) {
    // rules() returns a snapshot copy; keep it alive past this expression.
    const RuleProfile Profile = Prof.rules()[Id];
    EXPECT_EQ(Profile.Invocations,
              static_cast<std::uint64_t>(NumThreads * PerThread / 2));
    EXPECT_EQ(Profile.Dispatches,
              static_cast<std::uint64_t>(NumThreads * PerThread / 2 * 3));
    EXPECT_NEAR(Profile.Seconds, NumThreads * PerThread / 2 * 0.001, 1e-6);
  }
}

TEST(ProfilerTest, SecondsAdvanceMonotonically) {
  Profiler Prof;
  std::size_t Id = Prof.registerRule("timed");
  Prof.record(Id, 0.0, 0);
  double After = Prof.rules()[Id].Seconds;
  Prof.record(Id, 0.125, 0);
  EXPECT_GT(Prof.rules()[Id].Seconds, After);
}

/// The profiling-under-threads contract: per-rule invocation and dispatch
/// counts must be identical at -j1, -j2 and -j4 on every backend, because
/// workers count dispatches into private counters merged at the barrier
/// (no torn updates, no lost counts) before LogTimer reads them.
TEST(ProfilerTest, CountsAreThreadCountInvariant) {
  for (Backend TheBackend :
       {Backend::StaticLambda, Backend::StaticPlain,
        Backend::DynamicAdapter, Backend::Legacy}) {
    auto Reference = runProfiled(1, TheBackend);
    ASSERT_FALSE(Reference.empty());
    for (std::size_t NumThreads : {2u, 4u})
      EXPECT_EQ(runProfiled(NumThreads, TheBackend), Reference)
          << "thread count " << NumThreads << " changed the profile";
  }
}

} // namespace
