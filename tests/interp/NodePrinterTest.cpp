//===- tests/interp/NodePrinterTest.cpp - Tree dump tests ----------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "interp/NodePrinter.h"

#include "core/Program.h"

#include <gtest/gtest.h>

using namespace stird;
using namespace stird::interp;

namespace {

std::string dumpFor(const char *Source, EngineOptions Options = {}) {
  auto Prog = core::Program::fromSource(Source);
  EXPECT_NE(Prog, nullptr);
  auto Engine = Prog->makeEngine(Options);
  return Engine->dumpTree();
}

const char *JoinProgram =
    ".decl e(a:number, b:number)\n.decl p(a:number, b:number)\n"
    "p(x, y) :- e(x, y).\np(x, z) :- p(x, y), e(y, z).";

TEST(NodePrinterTest, StiTreeShowsSpecializedOpcodes) {
  std::string Tree = dumpFor(JoinProgram);
  EXPECT_NE(Tree.find("Scan_Btree_2"), std::string::npos);
  EXPECT_NE(Tree.find("IndexScan_Btree_2"), std::string::npos);
  EXPECT_NE(Tree.find("Project_Btree_2"), std::string::npos);
  EXPECT_NE(Tree.find("Existence_Btree_2"), std::string::npos);
  EXPECT_NE(Tree.find("Loop"), std::string::npos);
  // No generic opcodes in a specialized tree.
  EXPECT_EQ(Tree.find("GenericScan"), std::string::npos);
}

TEST(NodePrinterTest, DynamicTreeShowsGenericOpcodes) {
  EngineOptions Options;
  Options.TheBackend = Backend::DynamicAdapter;
  std::string Tree = dumpFor(JoinProgram, Options);
  EXPECT_NE(Tree.find("GenericScan"), std::string::npos);
  EXPECT_NE(Tree.find("GenericIndexScan"), std::string::npos);
  EXPECT_EQ(Tree.find("Scan_Btree_2"), std::string::npos);
}

TEST(NodePrinterTest, SuperInstructionSlotsAreShown) {
  std::string Tree = dumpFor(
      ".decl a(x:number)\n.decl b(x:number, y:number)\n"
      "b(x, 7) :- a(x).");
  // The insert folds slot 1 to the constant 7 and slot 0 to a tuple read.
  EXPECT_NE(Tree.find("1=const:7"), std::string::npos);
  EXPECT_NE(Tree.find("0=t0.0"), std::string::npos);

  EngineOptions NoSuper;
  NoSuper.SuperInstructions = false;
  std::string Plain = dumpFor(
      ".decl a(x:number)\n.decl b(x:number, y:number)\n"
      "b(x, 7) :- a(x).",
      NoSuper);
  // Without super-instructions every slot dispatches generically.
  EXPECT_EQ(Plain.find("const:7"), std::string::npos);
  EXPECT_NE(Plain.find("=expr"), std::string::npos);
}

TEST(NodePrinterTest, FusedConditionShowsMicroOpCount) {
  EngineOptions Fuse;
  Fuse.FuseConditions = true;
  std::string Tree = dumpFor(
      ".decl a(x:number, y:number)\n.decl b(x:number)\n"
      "b(x) :- a(x, y), x + y * 2 < 100, x != y.",
      Fuse);
  EXPECT_NE(Tree.find("FusedCondition ["), std::string::npos);
  EXPECT_NE(Tree.find("micro-ops]"), std::string::npos);
}

TEST(NodePrinterTest, EveryOpcodeHasAName) {
  // Smoke-check the macro-generated name table.
  EXPECT_STREQ(nodeTypeName(NodeType::Scan_Btree_1), "Scan_Btree_1");
  EXPECT_STREQ(nodeTypeName(NodeType::Aggregate_Brie_8),
               "Aggregate_Brie_8");
  EXPECT_STREQ(nodeTypeName(NodeType::Existence_Eqrel_2),
               "Existence_Eqrel_2");
  EXPECT_STREQ(nodeTypeName(NodeType::Filter), "Filter");
}

} // namespace
