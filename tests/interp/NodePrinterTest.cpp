//===- tests/interp/NodePrinterTest.cpp - Tree dump tests ----------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "interp/NodePrinter.h"

#include "core/Program.h"

#include <gtest/gtest.h>

using namespace stird;
using namespace stird::interp;

namespace {

std::string dumpFor(const char *Source, EngineOptions Options = {}) {
  auto Prog = core::Program::fromSource(Source);
  EXPECT_NE(Prog, nullptr);
  auto Engine = Prog->makeEngine(Options);
  return Engine->dumpTree();
}

const char *JoinProgram =
    ".decl e(a:number, b:number)\n.decl p(a:number, b:number)\n"
    "p(x, y) :- e(x, y).\np(x, z) :- p(x, y), e(y, z).";

TEST(NodePrinterTest, StiTreeShowsSpecializedOpcodes) {
  std::string Tree = dumpFor(JoinProgram);
  EXPECT_NE(Tree.find("Scan_Btree_2"), std::string::npos);
  EXPECT_NE(Tree.find("IndexScan_Btree_2"), std::string::npos);
  EXPECT_NE(Tree.find("Project_Btree_2"), std::string::npos);
  EXPECT_NE(Tree.find("Existence_Btree_2"), std::string::npos);
  EXPECT_NE(Tree.find("Loop"), std::string::npos);
  // No generic opcodes in a specialized tree.
  EXPECT_EQ(Tree.find("GenericScan"), std::string::npos);
}

TEST(NodePrinterTest, DynamicTreeShowsGenericOpcodes) {
  EngineOptions Options;
  Options.TheBackend = Backend::DynamicAdapter;
  std::string Tree = dumpFor(JoinProgram, Options);
  EXPECT_NE(Tree.find("GenericScan"), std::string::npos);
  EXPECT_NE(Tree.find("GenericIndexScan"), std::string::npos);
  EXPECT_EQ(Tree.find("Scan_Btree_2"), std::string::npos);
}

TEST(NodePrinterTest, SuperInstructionSlotsAreShown) {
  std::string Tree = dumpFor(
      ".decl a(x:number)\n.decl b(x:number, y:number)\n"
      "b(x, 7) :- a(x).");
  // The insert folds slot 1 to the constant 7 and slot 0 to a tuple read.
  EXPECT_NE(Tree.find("1=const:7"), std::string::npos);
  EXPECT_NE(Tree.find("0=t0.0"), std::string::npos);

  EngineOptions NoSuper;
  NoSuper.SuperInstructions = false;
  std::string Plain = dumpFor(
      ".decl a(x:number)\n.decl b(x:number, y:number)\n"
      "b(x, 7) :- a(x).",
      NoSuper);
  // Without super-instructions every slot dispatches generically.
  EXPECT_EQ(Plain.find("const:7"), std::string::npos);
  EXPECT_NE(Plain.find("=expr"), std::string::npos);
}

TEST(NodePrinterTest, FusedConditionShowsMicroOpCount) {
  EngineOptions Fuse;
  Fuse.FuseConditions = true;
  std::string Tree = dumpFor(
      ".decl a(x:number, y:number)\n.decl b(x:number)\n"
      "b(x) :- a(x, y), x + y * 2 < 100, x != y.",
      Fuse);
  EXPECT_NE(Tree.find("FusedCondition ["), std::string::npos);
  EXPECT_NE(Tree.find("micro-ops]"), std::string::npos);
}

/// One kitchen-sink program whose generated tree touches every structural
/// node kind, dumped on both the specialized and the generic backends.
const char *KitchenSink = R"(
  .decl edge(a:number, b:number)
  .decl item(x:number)
  .decl path(a:number, b:number)
  .decl same(a:number, b:number) eqrel
  .decl tagged(id:number, x:number)
  .decl labeled(s:symbol)
  .decl blocked(x:number)
  .decl cnt(n:number)
  .decl from_one(b:number)
  .input edge
  .output path
  .printsize path
  path(x, y) :- edge(x, y).
  path(x, z) :- path(x, y), edge(y, z).
  same(a, b) :- edge(a, b).
  tagged($, x) :- item(x).
  labeled(cat("p", to_string(x))) :- item(x).
  blocked(x) :- item(x), !edge(x, x), x < 50.
  cnt(n) :- n = count : { item(_) }.
  from_one(b) :- edge(1, b).
)";

TEST(NodePrinterTest, EveryStructuralNodeKindPrints) {
  std::string Tree = dumpFor(KitchenSink);
  for (const char *Token :
       {"Sequence", "Loop", "Exit", "Query", "Clear", "SwapRel", "Merge",
        "Io", "LogTimer", "Filter", "Negation", "Constraint",
        "EmptinessCheck", "Constant", "TupleElement", "Intrinsic",
        "AutoIncrement"})
    EXPECT_NE(Tree.find(Token), std::string::npos) << "missing " << Token;
  // Specialized relational opcodes for btree and eqrel relations.
  for (const char *Token : {"Scan_Btree_2", "IndexScan_Btree_2",
                            "Project_Btree_2", "Project_Eqrel_2",
                            "Existence_Btree_2", "Aggregate_Btree_1"})
    EXPECT_NE(Tree.find(Token), std::string::npos) << "missing " << Token;
  // Query nodes carry their frame size.
  EXPECT_NE(Tree.find("tuples="), std::string::npos);
}

TEST(NodePrinterTest, GenericNodeKindsPrint) {
  EngineOptions Options;
  Options.TheBackend = Backend::DynamicAdapter;
  std::string Tree = dumpFor(KitchenSink, Options);
  for (const char *Token :
       {"GenericScan", "GenericIndexScan", "GenericProject",
        "GenericExistence", "GenericAggregate"})
    EXPECT_NE(Tree.find(Token), std::string::npos) << "missing " << Token;
}

TEST(NodePrinterTest, ParallelNodeKindsPrint) {
  // At -j4 eligible query roots become parallel scans; both flavors must
  // announce themselves in the dump (they execute differently, so a dump
  // that hides them would misrepresent the plan).
  EngineOptions Options;
  Options.NumThreads = 4;
  std::string Tree = dumpFor(KitchenSink, Options);
  EXPECT_NE(Tree.find("ParallelScan"), std::string::npos);
  EXPECT_NE(Tree.find("ParallelIndexScan"), std::string::npos);
  // Parallel scans still print their relation and tuple id.
  EXPECT_NE(Tree.find("ParallelScan rel="), std::string::npos);
  // Pairwise-independent rules in a stratum are grouped under a
  // ParallelSequence and run as concurrent scheduler jobs.
  EXPECT_NE(Tree.find("ParallelSequence"), std::string::npos);
}

TEST(NodePrinterTest, EveryOpcodeHasAName) {
  // Smoke-check the macro-generated name table.
  EXPECT_STREQ(nodeTypeName(NodeType::Scan_Btree_1), "Scan_Btree_1");
  EXPECT_STREQ(nodeTypeName(NodeType::Aggregate_Brie_8),
               "Aggregate_Brie_8");
  EXPECT_STREQ(nodeTypeName(NodeType::Existence_Eqrel_2),
               "Existence_Eqrel_2");
  EXPECT_STREQ(nodeTypeName(NodeType::Filter), "Filter");
}

} // namespace
