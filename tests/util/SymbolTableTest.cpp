//===- tests/util/SymbolTableTest.cpp - Symbol interning tests -----------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "util/SymbolTable.h"

#include <gtest/gtest.h>

using namespace stird;

namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable Table;
  RamDomain A = Table.intern("hello");
  RamDomain B = Table.intern("world");
  EXPECT_NE(A, B);
  EXPECT_EQ(Table.intern("hello"), A);
  EXPECT_EQ(Table.intern("world"), B);
  EXPECT_EQ(Table.size(), 2u);
}

TEST(SymbolTableTest, OrdinalsAreDense) {
  SymbolTable Table;
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Table.intern("sym" + std::to_string(I)), I);
}

TEST(SymbolTableTest, ResolveRoundTrips) {
  SymbolTable Table;
  RamDomain Id = Table.intern("round-trip");
  EXPECT_EQ(Table.resolve(Id), "round-trip");
  EXPECT_TRUE(Table.contains(Id));
  EXPECT_FALSE(Table.contains(Id + 1));
  EXPECT_FALSE(Table.contains(-1));
}

TEST(SymbolTableTest, LookupWithoutInterning) {
  SymbolTable Table;
  EXPECT_EQ(Table.lookup("absent"), -1);
  Table.intern("present");
  EXPECT_EQ(Table.lookup("present"), 0);
  EXPECT_EQ(Table.size(), 1u);
}

TEST(SymbolTableTest, EmptyAndWeirdStrings) {
  SymbolTable Table;
  RamDomain Empty = Table.intern("");
  RamDomain Tab = Table.intern("\t");
  RamDomain Unicode = Table.intern("caf\xc3\xa9");
  EXPECT_EQ(Table.resolve(Empty), "");
  EXPECT_EQ(Table.resolve(Tab), "\t");
  EXPECT_EQ(Table.resolve(Unicode), "caf\xc3\xa9");
  EXPECT_EQ(Table.size(), 3u);
}

} // namespace
