//===- tests/util/SymbolTableTest.cpp - Symbol interning tests -----------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "util/SymbolTable.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace stird;

namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable Table;
  RamDomain A = Table.intern("hello");
  RamDomain B = Table.intern("world");
  EXPECT_NE(A, B);
  EXPECT_EQ(Table.intern("hello"), A);
  EXPECT_EQ(Table.intern("world"), B);
  EXPECT_EQ(Table.size(), 2u);
}

TEST(SymbolTableTest, OrdinalsAreDense) {
  SymbolTable Table;
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Table.intern("sym" + std::to_string(I)), I);
}

TEST(SymbolTableTest, ResolveRoundTrips) {
  SymbolTable Table;
  RamDomain Id = Table.intern("round-trip");
  EXPECT_EQ(Table.resolve(Id), "round-trip");
  EXPECT_TRUE(Table.contains(Id));
  EXPECT_FALSE(Table.contains(Id + 1));
  EXPECT_FALSE(Table.contains(-1));
}

TEST(SymbolTableTest, LookupWithoutInterning) {
  SymbolTable Table;
  EXPECT_EQ(Table.lookup("absent"), -1);
  Table.intern("present");
  EXPECT_EQ(Table.lookup("present"), 0);
  EXPECT_EQ(Table.size(), 1u);
}

TEST(SymbolTableTest, ResolveAcrossChunkBoundaries) {
  // Chunk 0 holds 1024 strings; interning past it exercises lazy chunk
  // allocation and the bucket arithmetic in resolve().
  SymbolTable Table;
  constexpr int Count = 5000;
  for (int I = 0; I < Count; ++I)
    ASSERT_EQ(Table.intern("sym" + std::to_string(I)), I);
  for (int I = 0; I < Count; ++I)
    EXPECT_EQ(Table.resolve(I), "sym" + std::to_string(I));
  EXPECT_EQ(Table.size(), static_cast<std::size_t>(Count));
}

TEST(SymbolTableTest, ConcurrentInternResolveLookup) {
  // The parallel evaluator's contract: workers intern (contended and
  // private strings), resolve and look up concurrently. Run under
  // ThreadSanitizer via the `sanitize` ctest label.
  SymbolTable Table;
  constexpr int NumThreads = 4, PerThread = 500, NumShared = 64;
  std::vector<std::vector<RamDomain>> Private(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&Table, &Private, T] {
      for (int I = 0; I < PerThread; ++I) {
        const std::string Shared = "shared" + std::to_string(I % NumShared);
        RamDomain SharedId = Table.intern(Shared);
        EXPECT_EQ(Table.resolve(SharedId), Shared);
        EXPECT_EQ(Table.lookup(Shared), SharedId);
        const std::string Mine =
            "t" + std::to_string(T) + "_" + std::to_string(I);
        Private[T].push_back(Table.intern(Mine));
      }
    });
  for (auto &Thread : Threads)
    Thread.join();
  // Every string got exactly one ordinal and ordinals are dense.
  EXPECT_EQ(Table.size(),
            static_cast<std::size_t>(NumShared + NumThreads * PerThread));
  std::set<RamDomain> Distinct;
  for (int T = 0; T < NumThreads; ++T)
    for (int I = 0; I < PerThread; ++I) {
      RamDomain Id = Private[T][I];
      Distinct.insert(Id);
      EXPECT_EQ(Table.resolve(Id),
                "t" + std::to_string(T) + "_" + std::to_string(I));
    }
  EXPECT_EQ(Distinct.size(), static_cast<std::size_t>(NumThreads * PerThread));
}

TEST(SymbolTableTest, EmptyAndWeirdStrings) {
  SymbolTable Table;
  RamDomain Empty = Table.intern("");
  RamDomain Tab = Table.intern("\t");
  RamDomain Unicode = Table.intern("caf\xc3\xa9");
  EXPECT_EQ(Table.resolve(Empty), "");
  EXPECT_EQ(Table.resolve(Tab), "\t");
  EXPECT_EQ(Table.resolve(Unicode), "caf\xc3\xa9");
  EXPECT_EQ(Table.size(), 3u);
}

} // namespace
