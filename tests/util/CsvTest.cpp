//===- tests/util/CsvTest.cpp - Fact-file IO tests -----------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "util/Csv.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace stird;

namespace {

TEST(CsvTest, ParsesAllColumnTypes) {
  SymbolTable Symbols;
  EXPECT_EQ(parseColumn("-42", ColumnTypeKind::Number, Symbols), -42);
  EXPECT_EQ(ramBitCast<RamUnsigned>(
                parseColumn("4000000000", ColumnTypeKind::Unsigned, Symbols)),
            4000000000u);
  EXPECT_FLOAT_EQ(ramBitCast<RamFloat>(
                      parseColumn("2.5", ColumnTypeKind::Float, Symbols)),
                  2.5f);
  RamDomain Sym = parseColumn("alice", ColumnTypeKind::Symbol, Symbols);
  EXPECT_EQ(Symbols.resolve(Sym), "alice");
}

TEST(CsvTest, PrintRoundTripsValues) {
  SymbolTable Symbols;
  EXPECT_EQ(printColumn(-7, ColumnTypeKind::Number, Symbols), "-7");
  EXPECT_EQ(printColumn(ramBitCast<RamDomain>(RamUnsigned(3000000000u)),
                        ColumnTypeKind::Unsigned, Symbols),
            "3000000000");
  RamDomain Sym = Symbols.intern("bob");
  EXPECT_EQ(printColumn(Sym, ColumnTypeKind::Symbol, Symbols), "bob");
}

TEST(CsvTest, ReadStreamParsesTabSeparatedTuples) {
  SymbolTable Symbols;
  std::istringstream In("1\talice\n2\tbob\n\n3\tcarol\n");
  auto Tuples = readFactStream(
      In, {ColumnTypeKind::Number, ColumnTypeKind::Symbol}, Symbols);
  ASSERT_EQ(Tuples.size(), 3u);
  EXPECT_EQ(Tuples[0][0], 1);
  EXPECT_EQ(Symbols.resolve(Tuples[0][1]), "alice");
  EXPECT_EQ(Symbols.resolve(Tuples[2][1]), "carol");
}

TEST(CsvTest, SymbolsMayContainSpaces) {
  SymbolTable Symbols;
  std::istringstream In("a b c\t1\n");
  auto Tuples = readFactStream(
      In, {ColumnTypeKind::Symbol, ColumnTypeKind::Number}, Symbols);
  ASSERT_EQ(Tuples.size(), 1u);
  EXPECT_EQ(Symbols.resolve(Tuples[0][0]), "a b c");
}

TEST(CsvTest, ExtraColumnsAreRejectedNotFolded) {
  // "1\thas\ttabs inside" used to silently fold the extra tab into the
  // trailing symbol column; it is now a malformed row.
  SymbolTable Symbols;
  std::istringstream In("1\thas\ttabs inside\n2\tok\n");
  std::vector<FactError> Errors;
  auto Tuples =
      readFactStream(In, {ColumnTypeKind::Number, ColumnTypeKind::Symbol},
                     Symbols, &Errors, "mem.facts");
  ASSERT_EQ(Tuples.size(), 1u);
  EXPECT_EQ(Symbols.resolve(Tuples[0][1]), "ok");
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_EQ(Errors[0].File, "mem.facts");
  EXPECT_EQ(Errors[0].Line, 1u);
  EXPECT_EQ(Errors[0].Column, 0u);
  EXPECT_EQ(Errors[0].Message, "row has 3 columns, expected 2");
}

TEST(CsvTest, TooFewColumnsReportLineAndExpectedWidth) {
  SymbolTable Symbols;
  std::istringstream In("1\ta\n2\n3\tb\n");
  std::vector<FactError> Errors;
  auto Tuples =
      readFactStream(In, {ColumnTypeKind::Number, ColumnTypeKind::Symbol},
                     Symbols, &Errors, "short.facts");
  ASSERT_EQ(Tuples.size(), 2u);
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_EQ(Errors[0].Line, 2u);
  EXPECT_EQ(Errors[0].Message, "row has 1 columns, expected 2");
  EXPECT_EQ(Errors[0].render(), "short.facts:2: row has 1 columns, expected 2");
}

TEST(CsvTest, MalformedCellsReportFileLineAndColumn) {
  SymbolTable Symbols;
  std::istringstream In("1\tx\n2x\ty\n3\tz\n");
  std::vector<FactError> Errors;
  auto Tuples =
      readFactStream(In, {ColumnTypeKind::Number, ColumnTypeKind::Symbol},
                     Symbols, &Errors, "bad.facts");
  ASSERT_EQ(Tuples.size(), 2u);
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_EQ(Errors[0].File, "bad.facts");
  EXPECT_EQ(Errors[0].Line, 2u);
  EXPECT_EQ(Errors[0].Column, 1u);
  EXPECT_EQ(Errors[0].render(),
            "bad.facts:2: column 1: malformed number column: '2x'");
}

TEST(CsvTest, FloatCellsWithTrailingGarbageAreRejected) {
  // std::stod would happily parse "1.5x" as 1.5; the reader must not.
  SymbolTable Symbols;
  std::istringstream In("1.5x\n2.5\n");
  std::vector<FactError> Errors;
  auto Tuples =
      readFactStream(In, {ColumnTypeKind::Float}, Symbols, &Errors, "f.facts");
  ASSERT_EQ(Tuples.size(), 1u);
  EXPECT_FLOAT_EQ(ramBitCast<RamFloat>(Tuples[0][0]), 2.5f);
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_EQ(Errors[0].Column, 1u);
  EXPECT_EQ(Errors[0].Message, "malformed float column: '1.5x'");
}

TEST(CsvTest, TryParseColumnReportsWithoutAborting) {
  SymbolTable Symbols;
  RamDomain Out = 0;
  std::string Message;
  EXPECT_FALSE(
      tryParseColumn("twelve", ColumnTypeKind::Number, Symbols, Out, &Message));
  EXPECT_EQ(Message, "malformed number column: 'twelve'");
  EXPECT_FALSE(
      tryParseColumn("-1", ColumnTypeKind::Unsigned, Symbols, Out, &Message));
  EXPECT_TRUE(tryParseColumn("-1", ColumnTypeKind::Number, Symbols, Out));
  EXPECT_EQ(Out, -1);
}

TEST(CsvTest, MissingFileIsCollectedWhenErrorsRequested) {
  SymbolTable Symbols;
  std::vector<FactError> Errors;
  auto Tuples = readFactFile("/nonexistent/no.facts",
                             {ColumnTypeKind::Number}, Symbols, &Errors);
  EXPECT_TRUE(Tuples.empty());
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_EQ(Errors[0].Message, "cannot open fact file");
}

TEST(CsvTest, FileRoundTrip) {
  const std::string Path = ::testing::TempDir() + "/csv_roundtrip.facts";
  SymbolTable Symbols;
  std::vector<ColumnTypeKind> Types = {ColumnTypeKind::Number,
                                       ColumnTypeKind::Symbol};
  std::vector<DynTuple> Tuples = {{1, Symbols.intern("x")},
                                  {-5, Symbols.intern("y z")}};
  writeFactFile(Path, Types, Symbols, Tuples);
  auto ReadBack = readFactFile(Path, Types, Symbols);
  EXPECT_EQ(ReadBack, Tuples);
}

} // namespace
