//===- tests/util/CsvTest.cpp - Fact-file IO tests -----------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "util/Csv.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace stird;

namespace {

TEST(CsvTest, ParsesAllColumnTypes) {
  SymbolTable Symbols;
  EXPECT_EQ(parseColumn("-42", ColumnTypeKind::Number, Symbols), -42);
  EXPECT_EQ(ramBitCast<RamUnsigned>(
                parseColumn("4000000000", ColumnTypeKind::Unsigned, Symbols)),
            4000000000u);
  EXPECT_FLOAT_EQ(ramBitCast<RamFloat>(
                      parseColumn("2.5", ColumnTypeKind::Float, Symbols)),
                  2.5f);
  RamDomain Sym = parseColumn("alice", ColumnTypeKind::Symbol, Symbols);
  EXPECT_EQ(Symbols.resolve(Sym), "alice");
}

TEST(CsvTest, PrintRoundTripsValues) {
  SymbolTable Symbols;
  EXPECT_EQ(printColumn(-7, ColumnTypeKind::Number, Symbols), "-7");
  EXPECT_EQ(printColumn(ramBitCast<RamDomain>(RamUnsigned(3000000000u)),
                        ColumnTypeKind::Unsigned, Symbols),
            "3000000000");
  RamDomain Sym = Symbols.intern("bob");
  EXPECT_EQ(printColumn(Sym, ColumnTypeKind::Symbol, Symbols), "bob");
}

TEST(CsvTest, ReadStreamParsesTabSeparatedTuples) {
  SymbolTable Symbols;
  std::istringstream In("1\talice\n2\tbob\n\n3\tcarol\n");
  auto Tuples = readFactStream(
      In, {ColumnTypeKind::Number, ColumnTypeKind::Symbol}, Symbols);
  ASSERT_EQ(Tuples.size(), 3u);
  EXPECT_EQ(Tuples[0][0], 1);
  EXPECT_EQ(Symbols.resolve(Tuples[0][1]), "alice");
  EXPECT_EQ(Symbols.resolve(Tuples[2][1]), "carol");
}

TEST(CsvTest, SymbolsMayContainSpaces) {
  SymbolTable Symbols;
  std::istringstream In("a b c\t1\n");
  auto Tuples = readFactStream(
      In, {ColumnTypeKind::Symbol, ColumnTypeKind::Number}, Symbols);
  ASSERT_EQ(Tuples.size(), 1u);
  EXPECT_EQ(Symbols.resolve(Tuples[0][0]), "a b c");
}

TEST(CsvTest, LastColumnTakesRestOfLine) {
  SymbolTable Symbols;
  std::istringstream In("1\thas\ttabs inside\n");
  auto Tuples = readFactStream(
      In, {ColumnTypeKind::Number, ColumnTypeKind::Symbol}, Symbols);
  ASSERT_EQ(Tuples.size(), 1u);
  EXPECT_EQ(Symbols.resolve(Tuples[0][1]), "has\ttabs inside");
}

TEST(CsvTest, FileRoundTrip) {
  const std::string Path = ::testing::TempDir() + "/csv_roundtrip.facts";
  SymbolTable Symbols;
  std::vector<ColumnTypeKind> Types = {ColumnTypeKind::Number,
                                       ColumnTypeKind::Symbol};
  std::vector<DynTuple> Tuples = {{1, Symbols.intern("x")},
                                  {-5, Symbols.intern("y z")}};
  writeFactFile(Path, Types, Symbols, Tuples);
  auto ReadBack = readFactFile(Path, Types, Symbols);
  EXPECT_EQ(ReadBack, Tuples);
}

} // namespace
