//===- tests/util/ArgsTest.cpp - Shared CLI parser tests ----------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flag parser the stird tools share: both value-passing forms,
/// unknown-option and missing-value diagnostics, sink-driven validation,
/// optional-value options, positional ordering (including the variadic
/// tail stird-client uses for its request list), and usage rendering.
///
//===----------------------------------------------------------------------===//

#include "util/Args.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace stird::util;

namespace {

/// Runs a parse over the given words (argv[0] is prepended).
bool parseWords(Args &A, std::vector<std::string> Words,
                std::string *Error = nullptr) {
  std::vector<const char *> Argv = {"tool"};
  for (const std::string &Word : Words)
    Argv.push_back(Word.c_str());
  return A.parse(static_cast<int>(Argv.size()), Argv.data(), Error);
}

TEST(ArgsTest, FlagsAndBothOptionForms) {
  bool Verbose = false;
  std::string Out;
  Args A("tool", "[options]");
  A.flag({"-v", "--verbose"}, "say more", [&Verbose] { Verbose = true; });
  A.option({"-o", "--out"}, "file", "output file",
           [&Out](const std::string &Value) {
             Out = Value;
             return std::string();
           });

  EXPECT_TRUE(parseWords(A, {"--verbose", "--out", "a.json"}));
  EXPECT_TRUE(Verbose);
  EXPECT_EQ(Out, "a.json");

  Verbose = false;
  EXPECT_TRUE(parseWords(A, {"-v", "-o=b.json"}));
  EXPECT_TRUE(Verbose);
  EXPECT_EQ(Out, "b.json");
}

TEST(ArgsTest, UnknownOptionIsAnError) {
  Args A("tool", "");
  A.flag({"--known"}, "", [] {});
  std::string Error;
  EXPECT_FALSE(parseWords(A, {"--unknown"}, &Error));
  EXPECT_EQ(Error, "unknown option '--unknown'");
  // The '=' form reports the name alone, not the attached value.
  EXPECT_FALSE(parseWords(A, {"--nope=3"}, &Error));
  EXPECT_EQ(Error, "unknown option '--nope'");
}

TEST(ArgsTest, MissingValueIsAnError) {
  std::string Out;
  Args A("tool", "");
  A.option({"--out"}, "file", "", [&Out](const std::string &Value) {
    Out = Value;
    return std::string();
  });
  std::string Error;
  EXPECT_FALSE(parseWords(A, {"--out"}, &Error));
  EXPECT_EQ(Error, "option '--out' requires a value");
}

TEST(ArgsTest, FlagRejectsAttachedValue) {
  Args A("tool", "");
  A.flag({"--fast"}, "", [] {});
  std::string Error;
  EXPECT_FALSE(parseWords(A, {"--fast=yes"}, &Error));
  EXPECT_EQ(Error, "option '--fast' does not take a value");
}

TEST(ArgsTest, SinksRejectValuesWithTheirOwnWording) {
  Args A("tool", "");
  A.option({"-j"}, "n", "worker threads", [](const std::string &Value) {
    return Value == "0" ? "thread count must be positive" : std::string();
  });
  std::string Error;
  EXPECT_FALSE(parseWords(A, {"-j", "0"}, &Error));
  EXPECT_EQ(Error, "thread count must be positive");
  EXPECT_TRUE(parseWords(A, {"-j", "4"}));
}

TEST(ArgsTest, OptionalValueOnlyAttachesWithEquals) {
  std::vector<std::string> Seen;
  Args A("tool", "");
  A.optionalValue({"--profile"}, "file", "",
                  [&Seen](const std::string &Value) {
                    Seen.push_back(Value);
                    return std::string();
                  });
  std::string Rest;
  A.positional("rest", [&Rest](const std::string &Value) {
    Rest = Value;
    return std::string();
  });

  // A following bare argument is a positional, not the option's value.
  EXPECT_TRUE(parseWords(A, {"--profile", "p.dl"}));
  EXPECT_EQ(Seen, (std::vector<std::string>{""}));
  EXPECT_EQ(Rest, "p.dl");

  EXPECT_TRUE(parseWords(A, {"--profile=prof.json", "p.dl"}));
  EXPECT_EQ(Seen.back(), "prof.json");

  std::string Error;
  EXPECT_FALSE(parseWords(A, {"--profile=", "p.dl"}, &Error));
  EXPECT_EQ(Error, "option '--profile=' requires a value");
}

TEST(ArgsTest, PositionalsFillInOrderAndRequireness) {
  std::string First, Second;
  Args A("tool", "");
  A.positional("first", [&First](const std::string &Value) {
    First = Value;
    return std::string();
  });
  A.positional("second",
               [&Second](const std::string &Value) {
                 Second = Value;
                 return std::string();
               },
               /*Required=*/false);

  std::string Error;
  EXPECT_FALSE(parseWords(A, {}, &Error));
  EXPECT_EQ(Error, "missing first");

  EXPECT_TRUE(parseWords(A, {"a"}));
  EXPECT_EQ(First, "a");
  EXPECT_EQ(Second, "");

  EXPECT_TRUE(parseWords(A, {"a", "b"}));
  EXPECT_EQ(Second, "b");

  EXPECT_FALSE(parseWords(A, {"a", "b", "c"}, &Error));
  EXPECT_EQ(Error, "unexpected argument 'c'");
}

TEST(ArgsTest, VariadicTailAbsorbsRemainingArguments) {
  std::string Program;
  std::vector<std::string> Requests;
  Args A("tool", "");
  A.positional("program", [&Program](const std::string &Value) {
    Program = Value;
    return std::string();
  });
  A.positional("request...",
               [&Requests](const std::string &Value) {
                 Requests.push_back(Value);
                 return std::string();
               },
               /*Required=*/false, /*Variadic=*/true);

  EXPECT_TRUE(parseWords(A, {"p.dl", "r1", "r2", "r3"}));
  EXPECT_EQ(Program, "p.dl");
  EXPECT_EQ(Requests, (std::vector<std::string>{"r1", "r2", "r3"}));

  // Zero occurrences of an optional variadic are fine.
  Requests.clear();
  EXPECT_TRUE(parseWords(A, {"p.dl"}));
  EXPECT_TRUE(Requests.empty());
}

TEST(ArgsTest, RequiredVariadicNeedsAtLeastOne) {
  std::vector<std::string> Inputs;
  Args A("tool", "");
  A.positional("input...",
               [&Inputs](const std::string &Value) {
                 Inputs.push_back(Value);
                 return std::string();
               },
               /*Required=*/true, /*Variadic=*/true);

  std::string Error;
  EXPECT_FALSE(parseWords(A, {}, &Error));
  EXPECT_EQ(Error, "missing input...");
  EXPECT_TRUE(parseWords(A, {"one"}));
  EXPECT_TRUE(parseWords(A, {"one", "two"}));
}

TEST(ArgsTest, HelpShortCircuitsAndRendersEverySpec) {
  Args A("tool", "[options]");
  A.flag({"-v", "--verbose"}, "say more", [] {});
  A.option({"--out"}, "file", "output file", [](const std::string &) {
    return std::string();
  });
  A.optionalValue({"--profile"}, "file", "profile sink",
                  [](const std::string &) { return std::string(); });
  A.positional("program.dl", [](const std::string &) {
    ADD_FAILURE() << "positional sink ran during --help";
    return std::string();
  });

  EXPECT_TRUE(parseWords(A, {"--help"}));
  EXPECT_TRUE(A.helpRequested());

  const std::string Usage = A.usage();
  EXPECT_NE(Usage.find("usage: tool <program.dl> [options]"),
            std::string::npos);
  EXPECT_NE(Usage.find("-v, --verbose"), std::string::npos);
  EXPECT_NE(Usage.find("--out <file>"), std::string::npos);
  EXPECT_NE(Usage.find("--profile[=<file>]"), std::string::npos);
  EXPECT_NE(Usage.find("say more"), std::string::npos);
}

} // namespace
