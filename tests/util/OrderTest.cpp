//===- tests/util/OrderTest.cpp - Column order tests ---------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Invariant 2 of DESIGN.md: for any order phi, decode(encode(t)) == t,
/// and scanning an index in encoded order then decoding is the same as
/// sorting by phi.
///
//===----------------------------------------------------------------------===//

#include "interp/Order.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

using namespace stird;
using namespace stird::interp;

namespace {

TEST(OrderTest, IdentityIsIdentity) {
  Order Id = Order::identity(4);
  EXPECT_TRUE(Id.isIdentity());
  RamDomain Src[4] = {7, 8, 9, 10};
  RamDomain Enc[4];
  Id.encode(Src, Enc);
  EXPECT_TRUE(std::equal(Src, Src + 4, Enc));
  for (std::size_t I = 0; I < 4; ++I)
    EXPECT_EQ(Id.position(I), I);
}

TEST(OrderTest, EncodePermutesIntoIndexPositions) {
  Order Flip({1, 0});
  RamDomain Src[2] = {10, 20};
  RamDomain Enc[2];
  Flip.encode(Src, Enc);
  EXPECT_EQ(Enc[0], 20);
  EXPECT_EQ(Enc[1], 10);
  EXPECT_FALSE(Flip.isIdentity());
  // position(): source column 1 lives at index position 0.
  EXPECT_EQ(Flip.position(1), 0u);
  EXPECT_EQ(Flip.position(0), 1u);
}

TEST(OrderTest, DecodeInvertsEncodeForAllPermutationsOfFour) {
  std::vector<std::uint32_t> Perm = {0, 1, 2, 3};
  do {
    Order Ord(Perm);
    RamDomain Src[4] = {11, 22, 33, 44};
    RamDomain Enc[4], Back[4];
    Ord.encode(Src, Enc);
    Ord.decode(Enc, Back);
    EXPECT_TRUE(std::equal(Src, Src + 4, Back));
    // column/position are mutual inverses.
    for (std::uint32_t J = 0; J < 4; ++J)
      EXPECT_EQ(Ord.position(Ord.column(J)), J);
  } while (std::next_permutation(Perm.begin(), Perm.end()));
}

TEST(OrderTest, RandomWideOrdersRoundTrip) {
  std::mt19937 Rng(17);
  for (int Trial = 0; Trial < 50; ++Trial) {
    std::vector<std::uint32_t> Perm(16);
    std::iota(Perm.begin(), Perm.end(), 0);
    std::shuffle(Perm.begin(), Perm.end(), Rng);
    Order Ord(Perm);
    std::uniform_int_distribution<RamDomain> Dist(-1000, 1000);
    RamDomain Src[16], Enc[16], Back[16];
    for (auto &Cell : Src)
      Cell = Dist(Rng);
    Ord.encode(Src, Enc);
    Ord.decode(Enc, Back);
    EXPECT_TRUE(std::equal(Src, Src + 16, Back));
    // Encoded cell J holds source column Perm[J].
    for (std::size_t J = 0; J < 16; ++J)
      EXPECT_EQ(Enc[J], Src[Perm[J]]);
  }
}

} // namespace
