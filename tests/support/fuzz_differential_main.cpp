//===- tests/support/fuzz_differential_main.cpp - SIPS fuzz driver -------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// stird_fuzz: the open-ended version of DifferentialSipsTest and the
/// maintenance differential suite. Walks seeds forward from a starting
/// point (--seed, or the wall clock when omitted) for a time budget
/// (--seconds), checking that (a) every --sips strategy at -j1 and -j4
/// reproduces the unreordered sequential run, (b) forcing every relation
/// onto each alternative substrate (--substrate; brie, art) changes
/// nothing — a failure witness names the diverging substrate pair — and
/// (c) replaying a seeded mixed insert/retract stream through the
/// maintenance plan matches a one-shot evaluation of the net EDB at every
/// batch prefix, at -j1 and -j4.
/// Generated programs use only negation/recursion/constraints, so
/// maintenance ineligibility itself is reported as a failure (the plan
/// must never silently fall back for such programs). On a mismatch it
/// writes three artifacts into --out and exits nonzero:
///
///   failing_seed.txt   the seed (and the generator's full source)
///   failing.dl         the generated program verbatim
///   minimized.dl       the same failure, greedily shrunk line by line
///
///   stird_fuzz [--seconds N] [--seed N] [--out DIR]
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "inc/Maintainer.h"
#include "interp/Engine.h"
#include "obs/Profile.h"
#include "support/ProgramGen.h"
#include "translate/Sips.h"
#include "util/Args.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace stird;

namespace {

using Contents =
    std::vector<std::pair<std::string, std::vector<DynTuple>>>;

/// Declared relation names, straight from the .decl lines — works on
/// minimization candidates too, where the generator's metadata is stale.
std::vector<std::string> declaredRelations(const std::string &Source) {
  std::vector<std::string> Names;
  std::istringstream In(Source);
  std::string Line;
  while (std::getline(In, Line)) {
    const std::size_t At = Line.find(".decl ");
    if (At == std::string::npos)
      continue;
    std::size_t Start = At + 6;
    while (Start < Line.size() && Line[Start] == ' ')
      ++Start;
    std::size_t End = Start;
    while (End < Line.size() && Line[End] != '(' && Line[End] != ' ')
      ++End;
    if (End > Start)
      Names.push_back(Line.substr(Start, End - Start));
  }
  return Names;
}

/// Runs \p Source under one configuration. A non-empty \p Substrate forces
/// every declared relation onto that substrate (the --substrate path).
/// Returns false on compile failure (relations left empty) — callers treat
/// that as "not the bug we are chasing", never as a mismatch.
bool run(const std::string &Source, translate::SipsStrategy Sips,
         const translate::ProfileFeedback *Feedback, std::size_t Threads,
         Contents &Out, std::string *ProfileJson = nullptr,
         const std::string &Substrate = "") {
  core::CompileOptions Compile;
  Compile.Sips = Sips;
  Compile.Feedback = Feedback;
  if (!Substrate.empty())
    for (const std::string &Name : declaredRelations(Source))
      Compile.SubstrateOverrides[Name] = Substrate;
  std::vector<std::string> Errors;
  auto Prog = core::Program::fromSource(Source, &Errors, Compile);
  if (!Prog)
    return false;
  interp::EngineOptions Options;
  Options.NumThreads = Threads;
  Options.EchoPrintSize = false;
  auto Engine = Prog->makeEngine(Options);
  Engine->run();
  Out.clear();
  for (const std::string &Name : declaredRelations(Source)) {
    std::vector<DynTuple> Tuples = Engine->getTuples(Name);
    std::sort(Tuples.begin(), Tuples.end());
    Out.emplace_back(Name, std::move(Tuples));
  }
  if (ProfileJson) {
    obs::ProfileContext Ctx;
    Ctx.Program = "fuzz";
    Ctx.Backend = "sti";
    *ProfileJson = obs::buildProfile(*Engine, Ctx).dump();
  }
  return true;
}

/// True when some strategy/thread combination disagrees with the
/// sequential source-order run. \p Witness names the first bad combination.
bool mismatches(const std::string &Source, std::string &Witness) {
  Contents Reference;
  std::string ProfileJson;
  if (!run(Source, translate::SipsStrategy::Source, nullptr, 1, Reference,
           &ProfileJson))
    return false;
  std::string Error;
  std::unique_ptr<translate::ProfileFeedback> Feedback =
      translate::ProfileFeedback::fromJson(ProfileJson, &Error);

  const translate::SipsStrategy Strategies[] = {
      translate::SipsStrategy::Source, translate::SipsStrategy::MaxBound,
      translate::SipsStrategy::Profile};
  for (translate::SipsStrategy Strategy : Strategies) {
    const translate::ProfileFeedback *Fb =
        Strategy == translate::SipsStrategy::Profile ? Feedback.get()
                                                     : nullptr;
    for (std::size_t Threads : {std::size_t(1), std::size_t(4)}) {
      Contents Out;
      if (!run(Source, Strategy, Fb, Threads, Out))
        continue;
      if (Out != Reference) {
        Witness = std::string("--sips=") +
                  translate::sipsStrategyName(Strategy) + " -j" +
                  std::to_string(Threads);
        return true;
      }
    }
  }

  // Substrate axis: every relation forced onto each alternative substrate,
  // source-order plans, sequential and parallel. A witness names the
  // diverging substrate pair — the reference runs on the declared (btree)
  // structures.
  for (const char *Substrate : {"brie", "art"}) {
    for (std::size_t Threads : {std::size_t(1), std::size_t(4)}) {
      Contents Out;
      if (!run(Source, translate::SipsStrategy::Source, nullptr, Threads,
               Out, nullptr, Substrate))
        continue;
      if (Out != Reference) {
        Witness = std::string("substrate pair btree vs ") + Substrate +
                  " -j" + std::to_string(Threads);
        return true;
      }
    }
  }
  return false;
}

static DynTuple toTuple(const std::vector<int> &Values) {
  DynTuple Tuple(Values.size());
  for (std::size_t I = 0; I < Values.size(); ++I)
    Tuple[I] = static_cast<RamDomain>(Values[I]);
  return Tuple;
}

/// True when replaying a mixed insert/retract stream through the
/// maintenance plan diverges from a one-shot evaluation of the net EDB at
/// some batch prefix (or the plan rejects a program it must handle).
/// Mirrors tests/inc/MaintenanceDifferentialTest over generated programs.
bool mismatchesIncremental(const testgen::GeneratedProgram &P,
                           std::string &Witness) {
  core::CompileOptions Compile;
  Compile.EmitMaintenance = true;
  auto Prog = core::Program::fromSource(P.RulesOnly, nullptr, Compile);
  if (!Prog)
    return false; // not the bug we are chasing
  if (!Prog->getRam().hasMaintenance()) {
    // Generated programs never use aggregates, eqrel or counters: the
    // plan has no excuse to fall back to whole-program re-evaluation.
    Witness = "maintenance-ineligible (" +
              Prog->getRam().getMaintIneligibleReason() + ")";
    return true;
  }

  const std::size_t NumOps = 60, PerBatch = 12;
  const std::vector<testgen::GeneratedOp> Ops =
      testgen::generateMixedStream(P, P.Seed, NumOps);
  const std::vector<std::string> Relations = declaredRelations(P.RulesOnly);

  for (std::size_t Threads : {std::size_t(1), std::size_t(4)}) {
    interp::EngineOptions Opts;
    Opts.SuppressIo = true;
    Opts.NumThreads = Threads;
    Opts.EchoPrintSize = false;
    auto Eng = Prog->makeEngine(Opts);
    // Net EDB per base relation, tracked alongside the maintained engine;
    // seeded with the program's initial facts.
    std::map<std::string, std::set<DynTuple>> State;
    for (const testgen::GeneratedFact &Fact : P.Facts)
      State[Fact.Relation].insert(toTuple(Fact.Values));
    for (const auto &[Name, Tuples] : State)
      Eng->insertTuples(Name, {Tuples.begin(), Tuples.end()});
    Eng->run();
    inc::Maintainer Maint(Prog->getRam(), *Eng);
    Maint.bootstrap();

    for (std::size_t Begin = 0; Begin < NumOps; Begin += PerBatch) {
      const std::size_t End = std::min(NumOps, Begin + PerBatch);
      // Reduce the slice to its net effect (last op per tuple wins), the
      // semantics both the Maintainer's retract-then-insert order and the
      // sequentially tracked State agree on.
      std::map<std::string, std::map<DynTuple, bool>> Net;
      for (std::size_t I = Begin; I < End; ++I)
        Net[Ops[I].Relation][toTuple(Ops[I].Values)] = Ops[I].Retract;
      inc::MixedBatch Batch;
      for (const auto &[Name, Tuples] : Net) {
        inc::RelationOps RO;
        RO.Relation = Name;
        for (const auto &[Tuple, Retract] : Tuples)
          (Retract ? RO.Retracts : RO.Inserts).push_back(Tuple);
        Batch.push_back(std::move(RO));
      }
      const std::string Reject = Maint.rejectReason(Batch);
      if (!Reject.empty()) {
        Witness = "maintenance rejected a base-relation batch (" + Reject +
                  ") -j" + std::to_string(Threads);
        return true;
      }
      Maint.apply(Batch);
      for (const auto &[Name, Tuples] : Net)
        for (const auto &[Tuple, Retract] : Tuples) {
          if (Retract)
            State[Name].erase(Tuple);
          else
            State[Name].insert(Tuple);
        }

      // One-shot oracle over the net EDB.
      interp::EngineOptions OracleOpts;
      OracleOpts.SuppressIo = true;
      OracleOpts.EchoPrintSize = false;
      auto Oracle = Prog->makeEngine(OracleOpts);
      for (const auto &[Name, Tuples] : State)
        Oracle->insertTuples(Name, {Tuples.begin(), Tuples.end()});
      Oracle->run();
      for (const std::string &Rel : Relations) {
        std::vector<DynTuple> Got = Eng->getTuples(Rel);
        std::vector<DynTuple> Want = Oracle->getTuples(Rel);
        std::sort(Got.begin(), Got.end());
        std::sort(Want.begin(), Want.end());
        if (Got != Want) {
          Witness = "incremental relation=" + Rel + " -j" +
                    std::to_string(Threads) + " prefix=[0," +
                    std::to_string(End) + ")";
          return true;
        }
      }
    }
  }
  return false;
}

/// Greedy line-wise shrink: drop each fact/rule line in turn, keeping the
/// removal whenever the mismatch survives. Declarations stay (removing a
/// referenced .decl only trades the mismatch for a compile error).
std::string minimize(const std::string &Source) {
  std::vector<std::string> Lines;
  std::istringstream In(Source);
  std::string Line;
  while (std::getline(In, Line))
    Lines.push_back(Line);

  auto Render = [&](std::size_t Skip) {
    std::string Text;
    for (std::size_t I = 0; I < Lines.size(); ++I)
      if (I != Skip)
        Text += Lines[I] + "\n";
    return Text;
  };

  bool Shrunk = true;
  while (Shrunk) {
    Shrunk = false;
    for (std::size_t I = 0; I < Lines.size(); ++I) {
      if (Lines[I].empty() || Lines[I].find(".decl") != std::string::npos)
        continue;
      std::string Witness;
      if (mismatches(Render(I), Witness)) {
        Lines.erase(Lines.begin() + I);
        Shrunk = true;
        break;
      }
    }
  }
  return Render(Lines.size());
}

} // namespace

int main(int Argc, char **Argv) {
  double Seconds = 60;
  std::uint64_t Seed = 0;
  bool SeedGiven = false;
  std::string OutDir = ".";

  util::Args Args("stird_fuzz", "[options]");
  Args.option({"--seconds"}, "n", "time budget (default 60)",
              [&](const std::string &Value) -> std::string {
                char *End = nullptr;
                Seconds = std::strtod(Value.c_str(), &End);
                if (End == Value.c_str() || *End != '\0' || Seconds <= 0)
                  return "invalid --seconds '" + Value + "'";
                return "";
              });
  Args.option({"--seed"}, "n", "starting seed (default: wall clock)",
              [&](const std::string &Value) -> std::string {
                char *End = nullptr;
                Seed = std::strtoull(Value.c_str(), &End, 10);
                if (End == Value.c_str() || *End != '\0')
                  return "invalid --seed '" + Value + "'";
                SeedGiven = true;
                return "";
              });
  Args.option({"--out"}, "dir", "artifact directory for failures (default .)",
              [&](const std::string &Value) {
                OutDir = Value;
                return std::string();
              });
  Args.parseOrExit(Argc, Argv);

  if (!SeedGiven)
    Seed = static_cast<std::uint64_t>(std::time(nullptr));
  std::fprintf(stderr, "stird_fuzz: starting at seed %llu for %.0f s\n",
               static_cast<unsigned long long>(Seed), Seconds);

  const std::clock_t Deadline =
      std::clock() + static_cast<std::clock_t>(Seconds * CLOCKS_PER_SEC);
  std::size_t Checked = 0;
  for (std::uint64_t S = Seed; std::clock() < Deadline; ++S, ++Checked) {
    const testgen::GeneratedProgram P = testgen::generateProgram(S);
    std::string Witness;
    const bool SipsBug = mismatches(P.Source, Witness);
    if (!SipsBug && !mismatchesIncremental(P, Witness))
      continue;

    std::fprintf(stderr, "stird_fuzz: seed %llu FAILS under %s\n",
                 static_cast<unsigned long long>(S), Witness.c_str());
    std::ofstream(OutDir + "/failing_seed.txt")
        << S << "\n" << Witness << "\n";
    std::ofstream(OutDir + "/failing.dl") << P.Source;
    // Line-wise shrinking only preserves SIPS mismatches; incremental
    // failures depend on the seed-derived stream, which a reduced source
    // no longer reproduces, so the full program is the artifact.
    std::ofstream(OutDir + "/minimized.dl")
        << (SipsBug ? minimize(P.Source) : P.Source);
    std::fprintf(stderr,
                 "stird_fuzz: artifacts written to %s "
                 "(failing_seed.txt, failing.dl, minimized.dl)\n",
                 OutDir.c_str());
    return 1;
  }

  std::fprintf(stderr, "stird_fuzz: %zu seeds checked, no mismatches\n",
               Checked);
  return 0;
}
