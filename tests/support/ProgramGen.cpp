//===- tests/support/ProgramGen.cpp - Random Datalog programs ------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "ProgramGen.h"

#include <iterator>
#include <set>

namespace stird::testgen {
namespace {

/// The variable pool. Small on purpose: picking argument variables
/// uniformly from six names makes repeated variables within one atom (a
/// self-join constraint the planner must preserve) common rather than rare.
constexpr const char *VarPool[] = {"a", "b", "c", "d", "e", "f"};
constexpr std::size_t NumVars = sizeof(VarPool) / sizeof(VarPool[0]);

/// Constants live in [0, MaxConst]; facts draw from the same domain, so
/// the whole universe has MaxConst + 1 values and every fixpoint is tiny.
constexpr std::size_t MaxConst = 6;

struct RelInfo {
  std::string Name;
  std::size_t Arity;
  /// Stratum: 0 for base relations, 1 + layer for derived ones. A rule for
  /// a relation in stratum S may negate only relations in strata < S.
  std::size_t Stratum;
};

std::string constant(Rng &R) { return std::to_string(R.below(MaxConst + 1)); }

/// One positive or negated body atom over \p Rel. Positive atoms draw
/// arguments from the whole pool (binding them); negated atoms must stay
/// grounded, so they only reuse \p Bound variables or constants.
std::string atomText(Rng &R, const RelInfo &Rel,
                     const std::vector<std::string> *Bound,
                     std::vector<std::string> *Binds) {
  std::string Text = Rel.Name + "(";
  for (std::size_t I = 0; I < Rel.Arity; ++I) {
    if (I > 0)
      Text += ", ";
    if (Bound) { // negated: grounded arguments only
      if (!Bound->empty() && R.chance(70))
        Text += (*Bound)[R.below(Bound->size())];
      else
        Text += constant(R);
      continue;
    }
    const std::size_t Roll = R.below(100);
    if (Roll < 65) {
      const std::string &Var = VarPool[R.below(NumVars)];
      Text += Var;
      Binds->push_back(Var);
    } else if (Roll < 85) {
      Text += constant(R);
    } else {
      Text += "_";
    }
  }
  return Text + ")";
}

void dedup(std::vector<std::string> &Names) {
  std::vector<std::string> Unique;
  for (const std::string &Name : Names) {
    bool Seen = false;
    for (const std::string &Other : Unique)
      Seen = Seen || Other == Name;
    if (!Seen)
      Unique.push_back(Name);
  }
  Names = std::move(Unique);
}

/// Emits one rule for \p Head. \p Positives are the relations its body may
/// read (base + earlier layers + Head itself); \p Negatables are the
/// strictly-earlier relations a negation may target.
std::string ruleText(Rng &R, const RelInfo &Head,
                     const std::vector<const RelInfo *> &Positives,
                     const std::vector<const RelInfo *> &Negatables) {
  std::vector<std::string> Body;
  std::vector<std::string> Bound;

  const std::size_t NumAtoms = R.range(1, 3);
  for (std::size_t I = 0; I < NumAtoms; ++I) {
    const RelInfo &Rel = *Positives[R.below(Positives.size())];
    Body.push_back(atomText(R, Rel, nullptr, &Bound));
  }
  dedup(Bound);

  // An equality-defined variable: `g = 4` grounds g without any atom
  // binding it, exercising the planner's equality closure.
  if (R.chance(25)) {
    Bound.push_back("g");
    Body.push_back("g = " + constant(R));
  }

  // A comparison constraint over what is already bound.
  if (!Bound.empty() && R.chance(30)) {
    static constexpr const char *Ops[] = {"<", "<=", ">", ">=", "!="};
    const std::string &Lhs = Bound[R.below(Bound.size())];
    const std::string Rhs =
        R.chance(50) ? Bound[R.below(Bound.size())] : constant(R);
    Body.push_back(Lhs + " " + Ops[R.below(5)] + " " + Rhs);
  }

  // Stratified negation over a strictly earlier relation.
  if (!Negatables.empty() && R.chance(30)) {
    const RelInfo &Rel = *Negatables[R.below(Negatables.size())];
    Body.push_back("!" + atomText(R, Rel, &Bound, nullptr));
  }

  std::string Text = Head.Name + "(";
  for (std::size_t I = 0; I < Head.Arity; ++I) {
    if (I > 0)
      Text += ", ";
    if (!Bound.empty() && R.chance(80))
      Text += Bound[R.below(Bound.size())];
    else
      Text += constant(R);
  }
  Text += ") :- ";
  for (std::size_t I = 0; I < Body.size(); ++I) {
    if (I > 0)
      Text += ", ";
    Text += Body[I];
  }
  return Text + ".";
}

} // namespace

GeneratedProgram generateProgram(std::uint64_t Seed) {
  Rng R(Seed * 0x2545f4914f6cdd1dULL + 1);
  GeneratedProgram Prog;
  Prog.Seed = Seed;
  std::string &Src = Prog.Source;
  std::vector<RelInfo> Rels;

  // Base relations and their facts (body-less clauses, so the program is
  // self-contained: no fact files, no programmatic inserts).
  const std::size_t NumBase = R.range(1, 3);
  for (std::size_t I = 0; I < NumBase; ++I)
    Rels.push_back({"b" + std::to_string(I), R.range(1, 3), 0});

  const std::size_t NumLayers = R.range(1, 3);
  for (std::size_t L = 0; L < NumLayers; ++L) {
    const std::size_t NumDerived = R.range(1, 2);
    for (std::size_t I = 0; I < NumDerived; ++I)
      Rels.push_back(
          {"d" + std::to_string(Rels.size() - NumBase), R.range(1, 3), L + 1});
  }

  for (const RelInfo &Rel : Rels) {
    Src += ".decl " + Rel.Name + "(";
    for (std::size_t I = 0; I < Rel.Arity; ++I)
      Src += (I > 0 ? ", c" : "c") + std::to_string(I) + ":number";
    Src += ")\n";
    Prog.Relations.push_back(Rel.Name);
    if (Rel.Stratum == 0)
      Prog.BaseRelations.emplace_back(Rel.Name, Rel.Arity);
  }
  Src += "\n";
  const std::size_t DeclEnd = Src.size();

  for (const RelInfo &Rel : Rels) {
    if (Rel.Stratum != 0)
      continue;
    const std::size_t NumFacts = R.range(2, 10);
    for (std::size_t I = 0; I < NumFacts; ++I) {
      GeneratedFact Fact;
      Fact.Relation = Rel.Name;
      Src += Rel.Name + "(";
      for (std::size_t Col = 0; Col < Rel.Arity; ++Col) {
        const int V = static_cast<int>(R.below(MaxConst + 1));
        Fact.Values.push_back(V);
        Src += (Col > 0 ? ", " : "") + std::to_string(V);
      }
      Src += ").\n";
      Prog.Facts.push_back(std::move(Fact));
    }
  }
  Src += "\n";
  const std::size_t FactEnd = Src.size();

  for (const RelInfo &Rel : Rels) {
    if (Rel.Stratum == 0)
      continue;
    // Bodies may read base relations, anything from earlier layers, and
    // the relation itself (recursion — once for linear, twice or more for
    // nonlinear, as the draw falls). Negation sees only earlier strata.
    std::vector<const RelInfo *> Positives, Negatables;
    for (const RelInfo &Other : Rels) {
      if (Other.Stratum < Rel.Stratum) {
        Positives.push_back(&Other);
        Negatables.push_back(&Other);
      } else if (&Other == &Rel) {
        Positives.push_back(&Other);
      }
    }
    const std::size_t NumRules = R.range(1, 3);
    for (std::size_t I = 0; I < NumRules; ++I)
      Src += ruleText(R, Rel, Positives, Negatables) + "\n";
  }

  Prog.RulesOnly = Src.substr(0, DeclEnd) + Src.substr(FactEnd);
  return Prog;
}

GeneratedProgram generateSkewedProgram(std::uint64_t Seed) {
  GeneratedProgram Prog = generateProgram(Seed);
  // A fresh RNG stream (different multiplier) keeps the base program's
  // text byte-identical to generateProgram(Seed) for the same seed.
  Rng R(Seed * 0x9e3779b97f4a7c15ULL + 0xda3e39cb94b95bdbULL);
  std::string &Src = Prog.Source;
  Src += "\n";
  for (const auto &[Name, Arity] : Prog.BaseRelations) {
    const std::size_t NumFacts = R.range(40, 60);
    for (std::size_t I = 0; I < NumFacts; ++I) {
      // ~90% of the rows share the hub value in column 0, so every join
      // keyed on that column concentrates in a handful of morsels.
      GeneratedFact Fact;
      Fact.Relation = Name;
      Src += Name + "(";
      for (std::size_t Col = 0; Col < Arity; ++Col) {
        if (Col > 0)
          Src += ", ";
        const int V = Col == 0 && !R.chance(10)
                          ? 0
                          : static_cast<int>(R.below(MaxConst + 1));
        Fact.Values.push_back(V);
        Src += std::to_string(V);
      }
      Src += ").\n";
      Prog.Facts.push_back(std::move(Fact));
    }
  }
  return Prog;
}

std::vector<GeneratedOp> generateMixedStream(const GeneratedProgram &Prog,
                                             std::uint64_t Seed,
                                             std::size_t NumOps) {
  // An independent stream (own multiplier), so the program text for the
  // same seed is unaffected by whether a stream was drawn.
  Rng R(Seed * 0x6c8e9cf570932bd5ULL + 0x9e3779b97f4a7c15ULL);
  std::vector<std::set<std::vector<int>>> Live(Prog.BaseRelations.size());
  for (const GeneratedFact &Fact : Prog.Facts)
    for (std::size_t I = 0; I < Prog.BaseRelations.size(); ++I)
      if (Prog.BaseRelations[I].first == Fact.Relation)
        Live[I].insert(Fact.Values);

  std::vector<GeneratedOp> Ops;
  for (std::size_t I = 0; I < NumOps; ++I) {
    const std::size_t Rel = R.below(Prog.BaseRelations.size());
    const auto &[Name, Arity] = Prog.BaseRelations[Rel];
    const bool Retract = !Live[Rel].empty() && R.chance(40);
    std::vector<int> Values;
    if (Retract && R.chance(85)) {
      // Retract a live tuple (85% of retractions hit something).
      auto It = Live[Rel].begin();
      std::advance(It, R.below(Live[Rel].size()));
      Values = *It;
    } else {
      for (std::size_t Col = 0; Col < Arity; ++Col)
        Values.push_back(static_cast<int>(R.below(MaxConst + 1)));
    }
    if (Retract)
      Live[Rel].erase(Values);
    else
      Live[Rel].insert(Values);
    Ops.push_back({Name, std::move(Values), Retract});
  }
  return Ops;
}

} // namespace stird::testgen
