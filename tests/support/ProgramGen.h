//===- tests/support/ProgramGen.h - Random Datalog programs -----*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded generator of small, valid, always-terminating Datalog programs
/// for differential testing: the same seed always yields the same source
/// text, so a failing seed reported by the fuzz harness reproduces exactly.
///
/// The generated programs are stratified *by construction* — a derived
/// relation's rules only read base relations, relations of strictly earlier
/// layers, and (positively) the relation itself — and cover the planner's
/// interesting shapes: linear and nonlinear recursion, negation, constant
/// arguments, repeated variables, wildcards, comparison constraints, and
/// equality-defined variables. All columns are numbers over a small domain
/// and no arithmetic feeds back into heads, so every fixpoint is finite.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_TESTS_SUPPORT_PROGRAMGEN_H
#define STIRD_TESTS_SUPPORT_PROGRAMGEN_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stird::testgen {

/// Deterministic 64-bit generator (SplitMix64): tiny, fast, and stable
/// across platforms — the properties a reproducible fuzz seed needs.
class Rng {
public:
  explicit Rng(std::uint64_t Seed) : State(Seed) {}

  std::uint64_t next() {
    std::uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). Bound must be positive.
  std::size_t below(std::size_t Bound) {
    return static_cast<std::size_t>(next() % Bound);
  }

  /// Uniform value in [Lo, Hi] inclusive.
  std::size_t range(std::size_t Lo, std::size_t Hi) {
    return Lo + below(Hi - Lo + 1);
  }

  /// True with probability Percent/100.
  bool chance(std::size_t Percent) { return below(100) < Percent; }

private:
  std::uint64_t State;
};

/// One base-relation fact, as values rather than text: the incremental
/// harness seeds engines programmatically and needs the tuples, not the
/// clause lines.
struct GeneratedFact {
  std::string Relation;
  std::vector<int> Values;
};

/// One operation of a mixed update stream over the base relations.
struct GeneratedOp {
  std::string Relation;
  std::vector<int> Values;
  bool Retract = false;
};

/// A generated program plus the metadata the differential harness needs.
struct GeneratedProgram {
  std::uint64_t Seed = 0;
  /// Complete source text: declarations, facts, rules.
  std::string Source;
  /// The same program without its fact block: the incremental harness
  /// compiles this and feeds the facts programmatically, so retractions
  /// of initial facts are expressible (a fresh oracle run of Source would
  /// silently re-derive facts baked into the text).
  std::string RulesOnly;
  /// Every declared relation, in declaration order; the harness compares
  /// the full contents of each across configurations.
  std::vector<std::string> Relations;
  /// The base (stratum-0) relations with their arities, in declaration
  /// order: generateSkewedProgram appends its hub facts to these.
  std::vector<std::pair<std::string, std::size_t>> BaseRelations;
  /// The fact block of Source, as values (same order as the text).
  std::vector<GeneratedFact> Facts;
};

/// Generates the program for \p Seed. Total work per program is bounded
/// (small relation counts, arities <= 3, constants in [0, 6]), so a run
/// under any strategy and thread count finishes in milliseconds.
GeneratedProgram generateProgram(std::uint64_t Seed);

/// generateProgram(Seed) plus a skew-heavy fact block: every base relation
/// gains 40-60 extra facts whose first column is the hub value 0 for ~90%
/// of rows. Join work then concentrates in the morsels that scan the hub,
/// making work-stealing (not static partitioning) carry the load — the
/// adversarial schedule for cross-thread determinism sweeps. The base
/// program's text is byte-identical to generateProgram(Seed); the extra
/// facts come from an independent RNG stream.
GeneratedProgram generateSkewedProgram(std::uint64_t Seed);

/// Generates a mixed insert/retract stream of \p NumOps operations over
/// \p Prog's base relations. Deterministic in \p Seed. Roughly 40% of the
/// draws are retractions, biased (85%) towards tuples actually live at
/// that point of the stream — initial facts included — so deletions do
/// real derivation work; the rest miss or duplicate on purpose. Values
/// stay inside the generator's constant domain.
std::vector<GeneratedOp> generateMixedStream(const GeneratedProgram &Prog,
                                             std::uint64_t Seed,
                                             std::size_t NumOps);

} // namespace stird::testgen

#endif // STIRD_TESTS_SUPPORT_PROGRAMGEN_H
