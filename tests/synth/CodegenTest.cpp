//===- tests/synth/CodegenTest.cpp - Generated-code structure tests ------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fast (no compiler invocation) checks on the shape of the synthesized
/// C++: relations become fully specialized structs, permutations are
/// emitted as constant subscripts, rule bodies become plain loops, and
/// swapped relations share one struct type.
///
//===----------------------------------------------------------------------===//

#include "synth/CppSynthesizer.h"

#include "core/Program.h"

#include <gtest/gtest.h>

using namespace stird;

namespace {

std::string synthesizeSource(const std::string &Source) {
  auto Prog = core::Program::fromSource(Source);
  EXPECT_NE(Prog, nullptr);
  if (!Prog)
    return "";
  return synth::synthesize(Prog->getRam(), Prog->getIndexes(),
                           Prog->getSymbolTable());
}

TEST(CodegenTest, RelationsBecomeSpecializedStructs) {
  std::string Cpp = synthesizeSource(
      ".decl e(a:number, b:number)\n.decl r(x:number)\n"
      "r(y) :- e(7, y).");
  EXPECT_NE(Cpp.find("stird::BTreeSet<2>"), std::string::npos);
  EXPECT_NE(Cpp.find("struct RelType_btree_2_01"), std::string::npos);
  EXPECT_NE(Cpp.find(" R_e;"), std::string::npos);
  EXPECT_NE(Cpp.find(" R_r;"), std::string::npos);
}

TEST(CodegenTest, InsertEmitsConstantSubscriptPermutations) {
  // Searching on e's second column adds a flipped index whose insert-time
  // permutation must be straight-line constant subscripts.
  std::string Cpp = synthesizeSource(
      ".decl e(a:number, b:number)\n.decl s(x:number)\n.decl r(x:number)\n"
      "r(x) :- s(y), e(x, y).");
  EXPECT_NE(Cpp.find("s[1], s[0]"), std::string::npos)
      << "flipped index insert should encode with constant subscripts";
  EXPECT_NE(Cpp.find("pad_lo<2, 1>"), std::string::npos)
      << "range query should use compile-time prefix padding";
}

TEST(CodegenTest, RecursiveProgramEmitsFixpointLoop) {
  std::string Cpp = synthesizeSource(
      ".decl e(a:number, b:number)\n.decl p(a:number, b:number)\n"
      "p(x, y) :- e(x, y).\np(x, z) :- p(x, y), e(y, z).");
  EXPECT_NE(Cpp.find("for (;;) {"), std::string::npos);
  EXPECT_NE(Cpp.find("if (R_new_p.empty()) break;"), std::string::npos);
  EXPECT_NE(Cpp.find("R_delta_p.swapData(R_new_p);"), std::string::npos);
  // Swapped relations share one struct type.
  std::size_t DeltaDecl = Cpp.find(" R_delta_p;");
  std::size_t NewDecl = Cpp.find(" R_new_p;");
  ASSERT_NE(DeltaDecl, std::string::npos);
  ASSERT_NE(NewDecl, std::string::npos);
  auto TypeBefore = [&](std::size_t Pos) {
    std::size_t LineStart = Cpp.rfind('\n', Pos);
    return Cpp.substr(LineStart + 1, Pos - LineStart - 1);
  };
  EXPECT_EQ(TypeBefore(DeltaDecl), TypeBefore(NewDecl));
}

TEST(CodegenTest, SymbolTableIsReplayedInOrder) {
  std::string Cpp = synthesizeSource(
      ".decl a(s:symbol)\na(\"first\").\na(\"second\").");
  std::size_t First = Cpp.find("rt::symbols.intern(\"first\")");
  std::size_t Second = Cpp.find("rt::symbols.intern(\"second\")");
  ASSERT_NE(First, std::string::npos);
  ASSERT_NE(Second, std::string::npos);
  EXPECT_LT(First, Second);
}

TEST(CodegenTest, EqrelUsesUnionFindStructure) {
  std::string Cpp = synthesizeSource(
      ".decl link(a:number, b:number)\n"
      ".decl same(a:number, b:number) eqrel\n"
      "same(a, b) :- link(a, b).");
  EXPECT_NE(Cpp.find("stird::EquivalenceRelation"), std::string::npos);
  EXPECT_NE(Cpp.find("eq.insert(s[0], s[1])"), std::string::npos);
}

TEST(CodegenTest, RuleTimersAndReportingEmitted) {
  std::string Cpp = synthesizeSource(
      ".decl a(x:number)\n.decl b(x:number)\nb(x) :- a(x).");
  EXPECT_NE(Cpp.find("stird::Timer rt_timer;"), std::string::npos);
  EXPECT_NE(Cpp.find("ruleSeconds[0]"), std::string::npos);
  EXPECT_NE(Cpp.find("RUNTIME\\t"), std::string::npos);
  EXPECT_NE(Cpp.find("RELSIZE\\tb"), std::string::npos);
}

TEST(CodegenTest, BrieRelationsUsePrefixRanges) {
  std::string Cpp = synthesizeSource(
      ".decl e(a:number, b:number) brie\n.decl s(x:number)\n"
      ".decl r(x:number)\n"
      "r(y) :- s(x), e(x, y).");
  EXPECT_NE(Cpp.find("stird::Brie<2>"), std::string::npos);
  EXPECT_NE(Cpp.find(".prefixBegin("), std::string::npos);
}

} // namespace
