//===- tests/synth/SynthesizerTest.cpp - Synthesized-code tests ----------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the compiled execution path: the synthesizer's generated C++
/// must compile with the system compiler and produce exactly the
/// interpreter's results. These tests invoke g++ and therefore dominate the
/// suite's runtime; they share one compiled binary per program.
///
//===----------------------------------------------------------------------===//

#include "synth/CppSynthesizer.h"

#include "core/Program.h"
#include "synth/CompilerDriver.h"
#include "util/Csv.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>

using namespace stird;

namespace {

/// Writes fact files for the inputs, synthesizes + compiles + runs the
/// program, and returns the parsed report.
struct SynthFixture {
  std::unique_ptr<core::Program> Prog;
  synth::RunOutcome Outcome;
  std::string Dir;

  static SynthFixture build(const std::string &Name,
                            const std::string &Source,
                            const std::map<std::string, std::string> &Facts) {
    SynthFixture F;
    F.Dir = ::testing::TempDir() + "/synth_" + Name;
    std::filesystem::create_directories(F.Dir);
    for (const auto &[File, Content] : Facts) {
      std::ofstream Out(F.Dir + "/" + File);
      Out << Content;
    }
    std::vector<std::string> Errors;
    F.Prog = core::Program::fromSource(Source, &Errors);
    EXPECT_NE(F.Prog, nullptr) << (Errors.empty() ? "" : Errors[0]);
    if (!F.Prog)
      return F;

    std::string Cpp = synth::synthesize(
        F.Prog->getRam(), F.Prog->getIndexes(), F.Prog->getSymbolTable());
    auto Compiled = synth::compileSynthesized(Cpp, F.Dir, Name);
    EXPECT_TRUE(Compiled.has_value()) << "generated code failed to compile";
    if (!Compiled)
      return F;
    EXPECT_GT(Compiled->CompileSeconds, 0.0);
    F.Outcome = synth::runSynthesized(Compiled->BinaryPath, F.Dir, F.Dir);
    EXPECT_EQ(F.Outcome.ExitCode, 0);
    return F;
  }
};

TEST(SynthesizerTest, TransitiveClosureMatchesInterpreter) {
  const std::string Source =
      ".decl edge(a:number, b:number)\n.decl path(a:number, b:number)\n"
      ".input edge\n.output path\n"
      "path(x, y) :- edge(x, y).\n"
      "path(x, z) :- path(x, y), edge(y, z).";
  std::string Facts;
  for (int I = 0; I < 30; ++I)
    Facts += std::to_string(I % 17) + "\t" + std::to_string((I * 5) % 17) +
             "\n";
  SynthFixture F =
      SynthFixture::build("tc", Source, {{"edge.facts", Facts}});
  ASSERT_NE(F.Prog, nullptr);

  // Interpreter reference.
  interp::EngineOptions Options;
  Options.FactDir = F.Dir;
  Options.OutputDir = F.Dir + "/interp_out";
  std::filesystem::create_directories(Options.OutputDir);
  auto E = F.Prog->makeEngine(Options);
  E->run();
  auto Expected = E->getTuples("path");

  EXPECT_EQ(F.Outcome.RelationSizes.at("path"), Expected.size());
  EXPECT_GT(F.Outcome.RuntimeSeconds, 0.0);

  // The output files must be byte-identical (both sorted).
  std::ifstream A(F.Dir + "/path.csv");
  std::ifstream B(Options.OutputDir + "/path.csv");
  ASSERT_TRUE(A.good());
  ASSERT_TRUE(B.good());
  std::string LineA, LineB;
  std::size_t Lines = 0;
  while (std::getline(A, LineA)) {
    ASSERT_TRUE(static_cast<bool>(std::getline(B, LineB)));
    EXPECT_EQ(LineA, LineB);
    ++Lines;
  }
  EXPECT_FALSE(static_cast<bool>(std::getline(B, LineB)));
  EXPECT_EQ(Lines, Expected.size());
}

TEST(SynthesizerTest, FullFeatureProgramMatchesInterpreter) {
  // Negation, aggregates, strings, arithmetic, multiple indexes and an
  // equivalence relation in one program.
  const std::string Source = R"(
    .decl e(a:number, b:number)
    .decl blocked(a:number)
    .decl name(a:number, s:symbol)
    .input e
    .input blocked
    .input name
    .decl r(a:number, b:number)
    r(x, y) :- e(x, y), !blocked(y), x + y < 40.
    .decl rev(a:number, b:number)
    rev(y, x) :- e(x, y), e(y, x).
    .decl deg(a:number, n:number)
    deg(x, n) :- e(x, _), n = count : { e(x, _) }.
    .decl tagged(a:number, s:symbol)
    tagged(x, cat(s, "!")) :- name(x, s), e(x, _).
    .decl same(a:number, b:number) eqrel
    same(a, b) :- rev(a, b).
    .output r
    .output deg
    .output tagged
    .printsize same
  )";
  std::string EdgeFacts, BlockedFacts, NameFacts;
  for (int I = 0; I < 40; ++I)
    EdgeFacts += std::to_string(I % 13) + "\t" +
                 std::to_string((I * 3 + 1) % 13) + "\n";
  BlockedFacts = "1\n4\n9\n";
  for (int I = 0; I < 13; ++I)
    NameFacts += std::to_string(I) + "\tnode" + std::to_string(I) + "\n";
  SynthFixture F = SynthFixture::build("full", Source,
                                       {{"e.facts", EdgeFacts},
                                        {"blocked.facts", BlockedFacts},
                                        {"name.facts", NameFacts}});
  ASSERT_NE(F.Prog, nullptr);

  interp::EngineOptions Options;
  Options.FactDir = F.Dir;
  Options.OutputDir = F.Dir + "/interp_out";
  std::filesystem::create_directories(Options.OutputDir);
  auto E = F.Prog->makeEngine(Options);
  E->run();

  for (const char *Rel : {"r", "deg", "tagged", "same", "rev"}) {
    ASSERT_TRUE(F.Outcome.RelationSizes.count(Rel)) << Rel;
    EXPECT_EQ(F.Outcome.RelationSizes.at(Rel), E->getTuples(Rel).size())
        << "relation " << Rel;
  }

  // Output files byte-identical.
  for (const char *File : {"r.csv", "deg.csv", "tagged.csv"}) {
    std::ifstream A(F.Dir + "/" + File);
    std::ifstream B(Options.OutputDir + "/" + File);
    ASSERT_TRUE(A.good()) << File;
    ASSERT_TRUE(B.good()) << File;
    std::string ContentA((std::istreambuf_iterator<char>(A)),
                         std::istreambuf_iterator<char>());
    std::string ContentB((std::istreambuf_iterator<char>(B)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(ContentA, ContentB) << File;
  }

  // Per-rule profile records exist for the recursive program.
  EXPECT_FALSE(F.Outcome.RuleSeconds.empty());
}

TEST(SynthesizerTest, BrieFloatUnsignedProgramMatchesInterpreter) {
  // Exercises the synthesizer's Brie code path (prefixBegin ranges) and
  // the float/unsigned bit-cast plumbing end to end.
  const std::string Source = R"(
    .decl edge(a:number, b:number) brie
    .decl path(a:number, b:number) brie
    .input edge
    path(x, y) :- edge(x, y).
    path(x, z) :- path(x, y), edge(y, z).

    .decl reading(sensor:unsigned, value:float)
    .input reading
    .decl hot(sensor:unsigned, value:float)
    hot(s, v) :- reading(s, v), v > 20.5, s >= 2000000000u.
    .output path
    .output hot
  )";
  std::string EdgeFacts;
  for (int I = 0; I < 25; ++I)
    EdgeFacts += std::to_string(I % 9) + "\t" +
                 std::to_string((I * 4 + 2) % 9) + "\n";
  const std::string ReadingFacts = "1000\t25.5\n"
                                   "3000000000\t25.5\n"
                                   "3000000001\t-4.25\n"
                                   "3000000002\t20.5\n";
  SynthFixture F = SynthFixture::build(
      "brie_float", Source,
      {{"edge.facts", EdgeFacts}, {"reading.facts", ReadingFacts}});
  ASSERT_NE(F.Prog, nullptr);

  interp::EngineOptions Options;
  Options.FactDir = F.Dir;
  Options.OutputDir = F.Dir + "/interp_out";
  std::filesystem::create_directories(Options.OutputDir);
  auto E = F.Prog->makeEngine(Options);
  E->run();

  ASSERT_TRUE(F.Outcome.RelationSizes.count("path"));
  EXPECT_EQ(F.Outcome.RelationSizes.at("path"),
            E->getTuples("path").size());
  ASSERT_TRUE(F.Outcome.RelationSizes.count("hot"));
  EXPECT_EQ(F.Outcome.RelationSizes.at("hot"), 1u);
  EXPECT_EQ(E->getTuples("hot").size(), 1u);

  for (const char *File : {"path.csv", "hot.csv"}) {
    std::ifstream A(F.Dir + "/" + File);
    std::ifstream B(Options.OutputDir + "/" + File);
    ASSERT_TRUE(A.good()) << File;
    ASSERT_TRUE(B.good()) << File;
    std::string ContentA((std::istreambuf_iterator<char>(A)),
                         std::istreambuf_iterator<char>());
    std::string ContentB((std::istreambuf_iterator<char>(B)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(ContentA, ContentB) << File;
  }
}

} // namespace
