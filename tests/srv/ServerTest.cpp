//===- tests/srv/ServerTest.cpp - Epoll server integration tests --------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event-loop server end to end, over real TCP sockets: pipelined v2
/// conversations, reply ordering, many concurrent connections against one
/// session (the serving layer's TSan subject), framing-violation replies,
/// and the admission-control paths (connection cap, in-flight budget).
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "srv/Server.h"
#include "srv/Session.h"
#include "srv/Wire.h"

#include "../obs/MetricsTestSupport.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <netinet/in.h>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace stird;
using namespace stird::srv;
using obs::json::Value;

namespace {

constexpr const char *TcSource = R"(
  .decl edge(a:number, b:number)
  .decl path(a:number, b:number)
  path(x, y) :- edge(x, y).
  path(x, z) :- path(x, y), edge(y, z).
)";

/// A blocking client connection to a Server on 127.0.0.1.
struct Client {
  int Fd = -1;
  explicit Client(int Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(Fd, 0);
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
    ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
    EXPECT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                        sizeof(Addr)),
              0)
        << std::strerror(errno);
  }
  ~Client() { close(); }
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  void close() {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
  }

  bool send(const std::string &Payload) { return writeFrame(Fd, Payload); }

  /// Reads one reply frame and parses it; ADD_FAILUREs on transport or
  /// JSON errors and returns a null Value.
  Value recv() {
    std::string Reply, Error;
    if (!readFrame(Fd, Reply, &Error)) {
      ADD_FAILURE() << "readFrame: "
                    << (Error.empty() ? "connection closed" : Error);
      return Value();
    }
    std::optional<Value> Doc = obs::json::parse(Reply);
    if (!Doc) {
      ADD_FAILURE() << "malformed reply: " << Reply;
      return Value();
    }
    return std::move(*Doc);
  }

  Value roundTrip(const std::string &Payload) {
    EXPECT_TRUE(send(Payload));
    return recv();
  }
};

bool okOf(const Value &Reply) {
  const Value *Ok = Reply.find("ok");
  return Ok && Ok->isBool() && Ok->asBool();
}

/// A Server over a fresh session, serving on a background thread.
class ServerTest : public ::testing::Test {
protected:
  void boot(ServerOptions Options = {}) {
    Session = EngineSession::fromSource(TcSource);
    ASSERT_NE(Session, nullptr);
    Srv = std::make_unique<Server>(*Session, Options);
    std::string Error;
    ASSERT_TRUE(Srv->start(&Error)) << Error;
    Thread = std::thread([this] { Srv->serve(); });
  }

  void TearDown() override {
    if (Srv)
      Srv->stop();
    if (Thread.joinable())
      Thread.join();
  }

  std::unique_ptr<EngineSession> Session;
  std::unique_ptr<Server> Srv;
  std::thread Thread;
};

TEST_F(ServerTest, PipelinedRequestsReplyInOrderWithIds) {
  boot();
  Client C(Srv->boundPort());
  ASSERT_TRUE(C.send(R"({"cmd":"load","facts":{"edge":[[1,2],[2,3]]},"id":0})"));
  // Burst of pipelined queries before reading anything back.
  for (int I = 1; I <= 8; ++I)
    ASSERT_TRUE(C.send(
        R"({"cmd":"query","relation":"path","pattern":[1,null],"id":)" +
        std::to_string(I) + "}"));

  const Value Load = C.recv();
  ASSERT_TRUE(okOf(Load));
  EXPECT_EQ(Load.find("id")->asNumber(), 0);
  for (int I = 1; I <= 8; ++I) {
    const Value R = C.recv();
    ASSERT_TRUE(okOf(R));
    EXPECT_EQ(R.find("id")->asNumber(), I) << "reply order must be "
                                              "request order";
    EXPECT_EQ(R.find("count")->asNumber(), 2);
    // The load precedes every query in the pipeline, so each sees epoch 1.
    EXPECT_EQ(R.find("epoch")->asNumber(), 1);
  }
}

TEST_F(ServerTest, RepeatQueriesAreServedFromTheCache) {
  boot();
  Client C(Srv->boundPort());
  ASSERT_TRUE(okOf(C.roundTrip(
      R"({"cmd":"load","facts":{"edge":[[1,2],[2,3]]}})")));
  const std::string Q =
      R"({"cmd":"query","relation":"path","pattern":[1,null]})";
  const Value Cold = C.roundTrip(Q);
  ASSERT_TRUE(okOf(Cold));
  EXPECT_FALSE(Cold.find("cached")->asBool());
  const Value Warm = C.roundTrip(Q);
  ASSERT_TRUE(okOf(Warm));
  EXPECT_TRUE(Warm.find("cached")->asBool());

  // A publish must invalidate: the same query recomputes at epoch 2.
  ASSERT_TRUE(okOf(C.roundTrip(
      R"({"cmd":"load","facts":{"edge":[[3,4]]}})")));
  const Value Fresh = C.roundTrip(Q);
  ASSERT_TRUE(okOf(Fresh));
  EXPECT_FALSE(Fresh.find("cached")->asBool());
  EXPECT_EQ(Fresh.find("count")->asNumber(), 3);
}

TEST_F(ServerTest, FramingViolationAnswersThenCloses) {
  boot();
  Client C(Srv->boundPort());
  // A valid request pipelined before the poisoned frame still answers.
  ASSERT_TRUE(C.send(R"({"cmd":"stats","id":1})"));
  const unsigned char Huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(::write(C.Fd, Huge, 4), 4);

  const Value Stats = C.recv();
  EXPECT_TRUE(okOf(Stats));
  const Value ProtoError = C.recv();
  EXPECT_FALSE(okOf(ProtoError));
  EXPECT_NE(ProtoError.find("error")->asString().find("protocol error"),
            std::string::npos);
  // ...and then the server closes the connection.
  std::string Rest, Error = "sentinel";
  EXPECT_FALSE(readFrame(C.Fd, Rest, &Error));
  EXPECT_EQ(Error, "") << "expected clean EOF after a protocol error";
}

TEST_F(ServerTest, ConnectionCapClosesExtraConnections) {
  ServerOptions Options;
  Options.MaxConnections = 1;
  boot(Options);
  Client First(Srv->boundPort());
  ASSERT_TRUE(okOf(First.roundTrip(R"({"cmd":"stats"})")));

  Client Second(Srv->boundPort());
  // The kernel completes the connect; the server closes it at accept.
  std::string Reply, Error = "sentinel";
  EXPECT_FALSE(readFrame(Second.Fd, Reply, &Error));
  EXPECT_EQ(Error, "");
  // The admitted connection keeps working.
  EXPECT_TRUE(okOf(First.roundTrip(R"({"cmd":"stats"})")));
  EXPECT_GE(Srv->counters().ConnectionsRejected.load(), 1u);
}

TEST_F(ServerTest, ZeroInFlightBudgetAnswersOverloaded) {
  ServerOptions Options;
  Options.MaxInFlightTotal = 0; // admission always refuses
  boot(Options);
  Client C(Srv->boundPort());
  const Value R = C.roundTrip(R"({"cmd":"stats","id":3})");
  EXPECT_FALSE(okOf(R));
  EXPECT_NE(R.find("error")->asString().find("overloaded"),
            std::string::npos);
  EXPECT_TRUE(R.find("overloaded")->asBool());
  EXPECT_GE(Srv->counters().RequestsOverloaded.load(), 1u);
}

TEST_F(ServerTest, ShutdownRequestDrainsAndStopsServe) {
  boot();
  {
    Client C(Srv->boundPort());
    ASSERT_TRUE(okOf(C.roundTrip(R"({"cmd":"shutdown"})")));
  }
  Thread.join(); // serve() must return on its own
  Thread = std::thread([] {});
}

/// The serving layer's TSan stress: many connections pipelining loads and
/// queries against one session concurrently with each other. Every reply
/// must be well-formed, in order, and consistent with some published
/// epoch.
TEST_F(ServerTest, ManyConcurrentConnectionsStress) {
  boot();
  constexpr int NumClients = 32;
  constexpr int RequestsPerClient = 12;

  std::vector<std::thread> Clients;
  std::atomic<int> OkReplies{0};
  for (int T = 0; T < NumClients; ++T)
    Clients.emplace_back([this, T, &OkReplies] {
      Client C(Srv->boundPort());
      if (C.Fd < 0)
        return;
      // Every client loads a private edge (disjoint node ranges, so no
      // cross-client paths), then pipelines queries behind the load.
      const int Base = 100 + 2 * T;
      ASSERT_TRUE(C.send("{\"cmd\":\"load\",\"facts\":{\"edge\":[[" +
                         std::to_string(Base) + "," +
                         std::to_string(Base + 1) + "]]},\"id\":0}"));
      for (int I = 1; I < RequestsPerClient; ++I)
        ASSERT_TRUE(C.send(
            R"({"cmd":"query","relation":"path","pattern":[)" +
            std::to_string(Base) + R"(,null],"id":)" + std::to_string(I) +
            "}"));
      for (int I = 0; I < RequestsPerClient; ++I) {
        const Value R = C.recv();
        ASSERT_TRUE(okOf(R)) << R.dump();
        ASSERT_NE(R.find("id"), nullptr);
        EXPECT_EQ(R.find("id")->asNumber(), I);
        if (I > 0) {
          // Per-connection FIFO execution: the pipelined load published
          // before any of this client's queries ran, so its edge must be
          // visible — read-your-writes within a connection.
          EXPECT_EQ(R.find("count")->asNumber(), 1) << R.dump();
        }
        OkReplies.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread &T : Clients)
    T.join();

  EXPECT_EQ(OkReplies.load(), NumClients * RequestsPerClient);
  EXPECT_GE(Srv->counters().ConnectionsAccepted.load(),
            static_cast<std::uint64_t>(NumClients));
  EXPECT_EQ(Srv->counters().ProtocolErrors.load(), 0u);
  // All clients loaded distinct edges into one session.
  EXPECT_EQ(Session->epoch(), static_cast<std::uint64_t>(NumClients));
}

//===----------------------------------------------------------------------===//
// Serving observability: the /metrics endpoint, per-request traces, the
// slow-query log.
//===----------------------------------------------------------------------===//

/// One blocking HTTP exchange against the metrics listener; returns the
/// whole response (the server closes after one response).
std::string httpGet(int Port, const std::string &Target) {
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(Fd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  EXPECT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0)
      << std::strerror(errno);
  const std::string Request =
      "GET " + Target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::write(Fd, Request.data(), Request.size()),
            static_cast<ssize_t>(Request.size()));
  std::string Response;
  char Buf[4096];
  ssize_t N;
  while ((N = ::read(Fd, Buf, sizeof(Buf))) > 0)
    Response.append(Buf, static_cast<std::size_t>(N));
  ::close(Fd);
  return Response;
}

/// The body of an HTTP response (everything past the blank line).
std::string bodyOf(const std::string &Response) {
  const std::size_t Pos = Response.find("\r\n\r\n");
  return Pos == std::string::npos ? std::string() : Response.substr(Pos + 4);
}

/// Sums every sample of \p Name (any label set) in an exposition body.
double sumOfSamples(const std::string &Body, const std::string &Name) {
  std::istringstream In(Body);
  std::string Line;
  double Sum = 0;
  while (std::getline(In, Line)) {
    if (Line.rfind(Name, 0) != 0)
      continue;
    const char Next = Line.size() > Name.size() ? Line[Name.size()] : '\0';
    if (Next != '{' && Next != ' ')
      continue; // a longer name sharing the prefix
    Sum += std::strtod(Line.substr(Line.rfind(' ') + 1).c_str(), nullptr);
  }
  return Sum;
}

TEST_F(ServerTest, MetricsEndpointServesPrometheus) {
  ServerOptions Options;
  Options.MetricsPort = 0; // kernel-assigned
  boot(Options);
  ASSERT_GT(Srv->metricsPort(), 0);

  Client C(Srv->boundPort());
  ASSERT_TRUE(okOf(C.roundTrip(
      R"({"cmd":"load","facts":{"edge":[[1,2],[2,3]]}})")));
  const std::string Q =
      R"({"cmd":"query","relation":"path","pattern":[1,null]})";
  ASSERT_TRUE(okOf(C.roundTrip(Q)));
  ASSERT_TRUE(okOf(C.roundTrip(Q))); // cache hit

  const std::string Response = httpGet(Srv->metricsPort(), "/metrics");
  EXPECT_EQ(Response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << Response;
  EXPECT_NE(Response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::string Body = bodyOf(Response);
  EXPECT_EQ(obs::prom::validatePrometheusText(Body), "") << Body;

  // The scrape reflects the conversation that just happened.
  EXPECT_EQ(sumOfSamples(Body, "stird_requests_dispatched_total"), 3.0);
  EXPECT_EQ(sumOfSamples(Body, "stird_cache_hits_total"), 1.0);
  EXPECT_NE(Body.find("stird_request_latency_micros_bucket"),
            std::string::npos);
  // Every dispatched request landed in exactly one latency series.
  EXPECT_EQ(sumOfSamples(Body, "stird_request_latency_micros_count"), 3.0);
  EXPECT_NE(Body.find("stird_relation_size{tenant=\"default\","),
            std::string::npos);

  // Unknown targets answer 404; the scrape counter only counts scrapes.
  EXPECT_EQ(httpGet(Srv->metricsPort(), "/other").rfind("HTTP/1.1 404", 0),
            0u);
  const std::string Second = bodyOf(httpGet(Srv->metricsPort(), "/metrics"));
  EXPECT_EQ(sumOfSamples(Second, "stird_metrics_scrapes_total"), 1.0);
}

TEST_F(ServerTest, SampledTracesCarryQueueWaitSpans) {
  ServerOptions Options;
  Options.TraceSampleEvery = 1; // trace everything
  boot(Options);
  Client C(Srv->boundPort());
  ASSERT_TRUE(okOf(C.roundTrip(
      R"({"cmd":"load","facts":{"edge":[[1,2],[2,3]]}})")));
  ASSERT_TRUE(okOf(C.roundTrip(
      R"({"cmd":"query","relation":"path","pattern":[1,null]})")));

  const Value Stats = C.roundTrip(R"({"cmd":"stats"})");
  ASSERT_TRUE(okOf(Stats));
  const Value *Trace = Stats.find("trace");
  ASSERT_NE(Trace, nullptr) << Stats.dump();
  EXPECT_GE(Trace->find("sampled")->asUint(), 2u);
  const Value *Recent = Trace->find("recent");
  ASSERT_NE(Recent, nullptr);
  ASSERT_FALSE(Recent->asArray().empty());

  // The finished query trace must account for its whole lifecycle — in
  // particular the queue wait between admission and worker pickup.
  bool SawQuery = false;
  for (const Value &T : Recent->asArray()) {
    if (T.find("command")->asString() != "query")
      continue;
    SawQuery = true;
    const Value *Spans = T.find("spans");
    ASSERT_NE(Spans, nullptr) << T.dump();
    for (const char *Stage :
         {"decode", "pending", "queue", "eval", "serialize", "write"})
      EXPECT_NE(Spans->find(Stage), nullptr)
          << "missing span '" << Stage << "' in " << T.dump();
    EXPECT_NE(T.find("slot"), nullptr);
    EXPECT_NE(T.find("source"), nullptr);
  }
  EXPECT_TRUE(SawQuery) << Stats.dump();
}

TEST_F(ServerTest, SlowQueryLogRecordsEveryRequestAtThresholdZero) {
  const std::string LogPath = ::testing::TempDir() + "stird-server-slow-" +
                              std::to_string(::getpid()) + ".jsonl";
  std::remove(LogPath.c_str());
  ServerOptions Options;
  Options.SlowQueryLogPath = LogPath;
  Options.SlowQueryMicros = 0; // every request is "slow"
  boot(Options);
  Client C(Srv->boundPort());
  ASSERT_TRUE(okOf(C.roundTrip(
      R"({"cmd":"load","facts":{"edge":[[1,2]]}})")));
  ASSERT_TRUE(okOf(C.roundTrip(
      R"({"cmd":"query","relation":"path","pattern":[1,null]})")));

  // Records land after the reply's write buffer drains; give the event
  // loop a moment to run that final step.
  for (int I = 0; I < 200 && Srv->telemetry().SlowLog.written() < 2; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(Srv->telemetry().SlowLog.written(), 2u);

  std::ifstream In(LogPath);
  std::string Line;
  std::size_t Parsed = 0;
  bool SawQuery = false;
  while (std::getline(In, Line)) {
    std::optional<Value> Doc = obs::json::parse(Line);
    ASSERT_TRUE(Doc.has_value()) << Line;
    ++Parsed;
    ASSERT_NE(Doc->find("command"), nullptr);
    ASSERT_NE(Doc->find("total_micros"), nullptr);
    ASSERT_NE(Doc->find("spans"), nullptr);
    if (Doc->find("command")->asString() == "query") {
      SawQuery = true;
      // A slow-log entry is diffable against sampled traces: it carries
      // the request's relation and canonical pattern.
      EXPECT_NE(Doc->find("relation"), nullptr) << Line;
      EXPECT_NE(Doc->find("pattern"), nullptr) << Line;
    }
  }
  EXPECT_GE(Parsed, 2u);
  EXPECT_TRUE(SawQuery);
  std::remove(LogPath.c_str());
}

} // namespace
