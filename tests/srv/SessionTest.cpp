//===- tests/srv/SessionTest.cpp - Resident-session equivalence ---------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's correctness contract: feeding a program's input
/// facts through an EngineSession in k batches — whether the session runs
/// the delta-seeded incremental update or the re-evaluation fallback —
/// must yield exactly the relation contents of a one-shot engine run over
/// the same facts, at every thread count. Symbol columns are compared by
/// resolved string (ordinal assignment differs across program instances).
///
/// Beyond equivalence: snapshot isolation (a pinned snapshot never sees a
/// later batch), concurrent readers against a writer (the TSan subject for
/// the left-right scheme), duplicate accounting, and the textual loadFacts
/// error path.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "interp/Engine.h"
#include "srv/Session.h"
#include "translate/Sips.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <thread>
#include <vector>

using namespace stird;
using namespace stird::srv;

namespace {

/// One equivalence subject: a program, the relations to compare, and an
/// input builder interning through the given program's symbol table.
struct Subject {
  std::string Name;
  std::string Source;
  std::vector<std::string> Outputs;
  std::function<FactBatch(core::Program &)> MakeInputs;
  /// Whether the session should apply batches in place (maintenance or
  /// update program). All current subjects are maintained; the flag stays
  /// so future counter-style subjects can assert the rebuild path.
  bool ExpectIncremental = true;
  /// Whether the maintenance plan should contain scoped Reeval strata
  /// (aggregates, eqrel). Asserted both ways, so precise maintenance of
  /// negation-only programs cannot silently regress into fallbacks — and
  /// fallback coverage cannot silently vanish either.
  bool ExpectReevalFallback = false;
};

Subject quickstartSubject() {
  Subject S;
  S.Name = "quickstart";
  S.Source = R"(
    .decl parent(child:symbol, parent:symbol)
    .decl ancestor(person:symbol, ancestor:symbol)
    ancestor(c, p) :- parent(c, p).
    ancestor(c, a) :- ancestor(c, p), parent(p, a).
  )";
  S.Outputs = {"ancestor"};
  S.MakeInputs = [](core::Program &Prog) {
    SymbolTable &Symbols = Prog.getSymbolTable();
    std::vector<DynTuple> Parents;
    for (int I = 0; I + 1 < 24; ++I)
      Parents.push_back({Symbols.intern("p" + std::to_string(I)),
                         Symbols.intern("p" + std::to_string(I + 1))});
    for (int I = 0; I < 8; ++I)
      Parents.push_back({Symbols.intern("q" + std::to_string(I)),
                         Symbols.intern(I == 7 ? "p12"
                                               : "q" + std::to_string(I + 1))});
    return FactBatch{{"parent", Parents}};
  };
  return S;
}

Subject reachabilitySubject() {
  Subject S;
  S.Name = "reachability";
  S.Source = R"(
    .decl in_subnet(inst:number, subnet:number)
    .decl subnet_link(a:number, b:number)
    .decl allows(inst:number, port:number)
    .decl listens(inst:number, port:number)

    .decl subnet_reach(a:number, b:number)
    subnet_reach(a, b) :- subnet_link(a, b).
    subnet_reach(a, c) :- subnet_reach(a, b), subnet_link(b, c).

    .decl can_talk(a:number, b:number, port:number)
    can_talk(a, b, p) :-
        in_subnet(a, sa), in_subnet(b, sb), subnet_reach(sa, sb),
        allows(a, p), listens(b, p), a != b.
  )";
  S.Outputs = {"subnet_reach", "can_talk"};
  S.MakeInputs = [](core::Program &) {
    std::vector<DynTuple> InSubnet, Links, Allows, Listens;
    constexpr RamDomain NumSubnets = 10, NumInstances = 60;
    for (RamDomain I = 0; I < NumInstances; ++I) {
      InSubnet.push_back({I, I % NumSubnets});
      Allows.push_back({I, 20 + I % 6});
      Listens.push_back({I, 20 + (I * 3) % 6});
    }
    for (RamDomain Sub = 0; Sub < NumSubnets; ++Sub) {
      Links.push_back({Sub, (Sub + 1) % NumSubnets});
      if (Sub % 3 == 0)
        Links.push_back({Sub, (Sub + 4) % NumSubnets});
    }
    return FactBatch{{"in_subnet", InSubnet},
                     {"subnet_link", Links},
                     {"allows", Allows},
                     {"listens", Listens}};
  };
  return S;
}

Subject pointstoSubject() {
  Subject S;
  S.Name = "pointsto";
  S.Source = R"(
    .decl new_(v:number, o:number)
    .decl assign(v:number, w:number)
    .decl store(v:number, f:number, w:number)
    .decl load(v:number, w:number, f:number)

    .decl vpt(v:number, o:number)
    .decl hpt(o:number, f:number, p:number)

    vpt(v, o) :- new_(v, o).
    vpt(v, o) :- assign(v, w), vpt(w, o).
    hpt(o, f, p) :- store(v, f, w), vpt(v, o), vpt(w, p).
    vpt(v, p) :- load(v, w, f), vpt(w, o), hpt(o, f, p).
  )";
  S.Outputs = {"vpt", "hpt"};
  S.MakeInputs = [](core::Program &) {
    std::vector<DynTuple> News, Assigns, Stores, Loads;
    constexpr RamDomain NumVars = 50;
    for (RamDomain V = 0; V < NumVars; V += 3)
      News.push_back({V, V / 3});
    for (RamDomain V = 0; V + 1 < NumVars; ++V)
      if (V % 4 != 0)
        Assigns.push_back({V + 1, V});
    for (RamDomain V = 0; V < NumVars; V += 7) {
      Stores.push_back({V, 0, (V + 5) % NumVars});
      Loads.push_back({(V + 9) % NumVars, V, 0});
    }
    return FactBatch{{"new_", News},
                     {"assign", Assigns},
                     {"store", Stores},
                     {"load", Loads}};
  };
  return S;
}

/// Interning functors in the recursive section: workers intern new label
/// strings while the update program re-derives paths.
Subject internSubject() {
  Subject S;
  S.Name = "intern_path_labels";
  S.Source = R"(
    .decl edge(a:symbol, b:symbol)
    .decl path(a:symbol, b:symbol, label:symbol)
    path(a, b, cat(a, cat("->", b))) :- edge(a, b).
    path(a, c, cat(l, cat("->", c))) :- path(a, b, l), edge(b, c).
  )";
  S.Outputs = {"path"};
  S.MakeInputs = [](core::Program &Prog) {
    SymbolTable &Symbols = Prog.getSymbolTable();
    auto Node = [&](int I) { return Symbols.intern("n" + std::to_string(I)); };
    std::vector<DynTuple> Edges;
    constexpr int NumNodes = 14;
    for (int I = 0; I + 1 < NumNodes; ++I) {
      Edges.push_back({Node(I), Node(I + 1)});
      if (I % 4 == 0 && I + 2 < NumNodes)
        Edges.push_back({Node(I), Node(I + 2)});
    }
    return FactBatch{{"edge", Edges}};
  };
  return S;
}

/// Negation and an aggregate: the negation strata are maintained
/// precisely; the aggregate strata ride the scoped per-stratum Reeval
/// fallback (counted, never a whole-program rebuild).
Subject dataflowSubject() {
  Subject S;
  S.Name = "dataflow_fallback";
  S.Source = R"(
    .decl def(b:number, v:number)
    .decl use(b:number, v:number)
    .decl succ(a:number, b:number)

    .decl reach(d:number, v:number, b:number)
    reach(d, v, d) :- def(d, v).
    reach(d, v, b) :- reach(d, v, a), succ(a, b), !def(b, v).

    .decl live_use(b:number, v:number, d:number)
    live_use(b, v, d) :- use(b, v), reach(d, v, b).

    .decl undefined_use(b:number, v:number)
    undefined_use(b, v) :- use(b, v), !live_use(b, v, _).

    .decl fanin(b:number, v:number, n:number)
    fanin(b, v, n) :- use(b, v), n = count : { live_use(b, v, _) }.
  )";
  S.Outputs = {"reach", "live_use", "undefined_use", "fanin"};
  S.ExpectReevalFallback = true;
  S.MakeInputs = [](core::Program &) {
    std::vector<DynTuple> Defs, Uses, Succs;
    constexpr RamDomain NumBlocks = 40, NumVars = 6;
    for (RamDomain B = 0; B + 1 < NumBlocks; ++B) {
      Succs.push_back({B, B + 1});
      if (B % 5 == 0 && B + 3 < NumBlocks)
        Succs.push_back({B, B + 3});
    }
    for (RamDomain B = 0; B < NumBlocks; ++B) {
      if (B % 3 == 0)
        Defs.push_back({B, B % NumVars});
      if (B % 2 == 0)
        Uses.push_back({B, (B + 1) % NumVars});
    }
    return FactBatch{{"def", Defs}, {"use", Uses}, {"succ", Succs}};
  };
  return S;
}

/// Program facts plus recursive negation: maintained precisely (the
/// acceptance bar — negation alone must never fall back), and the seeded
/// fact ("while" is unsafe) must survive every batch.
Subject securitySubject() {
  Subject S;
  S.Name = "security_fallback";
  S.Source = R"(
    .decl Unsafe(b:symbol)
    .decl Edge(a:symbol, b:symbol)
    .decl Protect(b:symbol)
    .decl Vulnerable(b:symbol)
    .decl Violation(b:symbol)
    Unsafe("while").
    Unsafe(y) :- Unsafe(x), Edge(x, y), !Protect(y).
    Violation(x) :- Vulnerable(x), Unsafe(x).
  )";
  S.Outputs = {"Unsafe", "Violation"};
  S.MakeInputs = [](core::Program &Prog) {
    SymbolTable &Symbols = Prog.getSymbolTable();
    auto Block = [&](int I) {
      return Symbols.intern("block" + std::to_string(I));
    };
    constexpr int NumBlocks = 60;
    std::vector<DynTuple> Edges, Protects, Vulnerables;
    Edges.push_back({Symbols.intern("while"), Block(0)});
    for (int I = 0; I + 1 < NumBlocks; ++I) {
      Edges.push_back({Block(I), Block(I + 1)});
      if (I % 7 == 0 && I + 3 < NumBlocks)
        Edges.push_back({Block(I), Block(I + 3)});
      if (I % 11 == 5)
        Protects.push_back({Block(I)});
      if (I % 5 == 2)
        Vulnerables.push_back({Block(I)});
    }
    return FactBatch{{"Edge", Edges},
                     {"Protect", Protects},
                     {"Vulnerable", Vulnerables}};
  };
  return S;
}

/// Equivalence relations cannot be maintained from tuple deltas (union
/// find does not commute with deletion), so their strata ride the scoped
/// Reeval fallback.
Subject eqrelSubject() {
  Subject S;
  S.Name = "eqrel_fallback";
  S.Source = R"(
    .decl link(a:number, b:number)
    .decl same(a:number, b:number) eqrel
    same(a, b) :- link(a, b).
    .decl rep(a:number, b:number)
    rep(a, b) :- same(a, b), a <= b.
  )";
  S.Outputs = {"same", "rep"};
  S.ExpectReevalFallback = true;
  S.MakeInputs = [](core::Program &) {
    std::vector<DynTuple> Links;
    for (RamDomain Base : {0, 100, 200})
      for (RamDomain I = 0; I < 9; ++I)
        Links.push_back({Base + I, Base + I + 1});
    Links.push_back({5, 100});
    return FactBatch{{"link", Links}};
  };
  return S;
}

std::vector<Subject> subjects() {
  return {quickstartSubject(), reachabilitySubject(), pointstoSubject(),
          internSubject(),     dataflowSubject(),     securitySubject(),
          eqrelSubject()};
}

constexpr int NumSubjects = 7;

//===----------------------------------------------------------------------===//
// The equivalence harness
//===----------------------------------------------------------------------===//

/// Splits every relation's tuples into \p NumBatches contiguous chunks;
/// batch I carries chunk I of each relation (possibly empty).
std::vector<FactBatch> splitBatches(const FactBatch &Inputs,
                                    std::size_t NumBatches) {
  std::vector<FactBatch> Batches(NumBatches);
  for (const auto &[Relation, Tuples] : Inputs) {
    const std::size_t Chunk = (Tuples.size() + NumBatches - 1) / NumBatches;
    for (std::size_t B = 0; B < NumBatches; ++B) {
      const std::size_t Begin = std::min(B * Chunk, Tuples.size());
      const std::size_t End = std::min(Begin + Chunk, Tuples.size());
      Batches[B].emplace_back(
          Relation,
          std::vector<DynTuple>(Tuples.begin() + Begin, Tuples.begin() + End));
    }
  }
  return Batches;
}

/// Tuples with symbol ordinals resolved and re-sorted: the comparable
/// ground truth across program instances.
std::vector<std::vector<std::string>>
resolveTuples(const SymbolTable &Symbols,
              const std::vector<ColumnTypeKind> &Types,
              const std::vector<DynTuple> &Tuples) {
  std::vector<std::vector<std::string>> Result;
  Result.reserve(Tuples.size());
  for (const DynTuple &Tuple : Tuples) {
    std::vector<std::string> Row;
    for (std::size_t I = 0; I < Tuple.size(); ++I)
      if (Types[I] == ColumnTypeKind::Symbol)
        Row.push_back(Symbols.resolve(Tuple[I]));
      else
        Row.push_back(std::to_string(Tuple[I]));
    Result.push_back(std::move(Row));
  }
  std::sort(Result.begin(), Result.end());
  return Result;
}

using NamedContents =
    std::vector<std::pair<std::string, std::vector<std::vector<std::string>>>>;

/// The one-shot reference: a plain engine (no update program emitted) over
/// all facts at once — exactly the pipeline a batch-mode user runs.
NamedContents runOneShot(const Subject &S, std::size_t NumThreads,
                         translate::SipsStrategy Sips) {
  core::CompileOptions Compile;
  Compile.Sips = Sips;
  std::vector<std::string> Errors;
  auto Prog = core::Program::fromSource(S.Source, &Errors, Compile);
  EXPECT_NE(Prog, nullptr) << (Errors.empty() ? "" : Errors[0]);
  if (!Prog)
    return {};
  interp::EngineOptions Options;
  Options.NumThreads = NumThreads;
  Options.EchoPrintSize = false;
  auto Engine = Prog->makeEngine(Options);
  for (const auto &[Relation, Tuples] : S.MakeInputs(*Prog))
    Engine->insertTuples(Relation, Tuples);
  Engine->run();

  NamedContents Result;
  for (const std::string &Relation : S.Outputs) {
    const ram::Relation *Decl = nullptr;
    for (const auto &Candidate : Prog->getRam().getRelations())
      if (Candidate->getName() == Relation)
        Decl = Candidate.get();
    EXPECT_NE(Decl, nullptr) << Relation;
    Result.emplace_back(Relation,
                        resolveTuples(Prog->getSymbolTable(),
                                      Decl->getColumnTypes(),
                                      Engine->getTuples(Relation)));
  }
  return Result;
}

/// The session under test: the same facts split into \p NumBatches loads.
NamedContents runSession(const Subject &S, std::size_t NumBatches,
                         std::size_t NumThreads,
                         translate::SipsStrategy Sips) {
  SessionOptions Options;
  Options.Engine.NumThreads = NumThreads;
  Options.Compile.Sips = Sips;
  std::vector<std::string> Errors;
  auto Session = EngineSession::fromSource(S.Source, Options, &Errors);
  EXPECT_NE(Session, nullptr) << (Errors.empty() ? "" : Errors[0]);
  if (!Session)
    return {};
  EXPECT_EQ(Session->isIncremental(), S.ExpectIncremental) << S.Name;

  // Intern through the session's own symbol table, then split.
  auto MutableProg = const_cast<core::Program *>(&Session->program());
  const std::vector<FactBatch> Batches =
      splitBatches(S.MakeInputs(*MutableProg), NumBatches);
  for (const FactBatch &Batch : Batches) {
    const BatchResult R = Session->loadFacts(Batch);
    EXPECT_EQ(R.Incremental, S.ExpectIncremental) << S.Name;
    EXPECT_TRUE(R.Error.empty()) << S.Name << ": " << R.Error;
  }
  EXPECT_EQ(Session->epoch(), NumBatches);

  const MaintTelemetry Tel = Session->maintTelemetry();
  EXPECT_EQ(Tel.Enabled, S.ExpectIncremental) << S.Name;
  EXPECT_EQ(Tel.ReevalStrata > 0, S.ExpectReevalFallback)
      << S.Name << " scoped-fallback expectation flipped";
  EXPECT_EQ(Tel.Rebuilds, 0u)
      << S.Name << " fell back to a whole-program rebuild";

  Snapshot Snap = Session->snapshot();
  NamedContents Result;
  for (const std::string &Relation : S.Outputs) {
    const std::vector<ColumnTypeKind> *Types =
        Session->relationTypes(Relation);
    EXPECT_NE(Types, nullptr) << Relation;
    if (!Types)
      continue;
    Result.emplace_back(Relation, resolveTuples(Session->symbols(), *Types,
                                                Snap.tuples(Relation)));
  }
  return Result;
}

/// (subject, threads, sips): the resident session must match the one-shot
/// pipeline under every join-ordering strategy too — the update program is
/// planned by the same SIPS pass, so reordered delta joins get the same
/// differential scrutiny as the cold path.
class SessionEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

translate::SipsStrategy sipsOf(int Index) {
  return Index == 0 ? translate::SipsStrategy::Source
                    : translate::SipsStrategy::MaxBound;
}

TEST_P(SessionEquivalenceTest, BatchedLoadsMatchOneShot) {
  auto [SubjectIndex, NumThreads, SipsIndex] = GetParam();
  const translate::SipsStrategy Sips = sipsOf(SipsIndex);
  const Subject S = subjects()[SubjectIndex];
  const NamedContents Reference = runOneShot(S, NumThreads, Sips);
  bool AnyTuples = false;
  for (const auto &[Relation, Tuples] : Reference)
    AnyTuples = AnyTuples || !Tuples.empty();
  EXPECT_TRUE(AnyTuples) << S.Name << " produced no tuples at all";

  for (std::size_t NumBatches : {1u, 2u, 5u}) {
    const NamedContents Batched =
        runSession(S, NumBatches, NumThreads, Sips);
    ASSERT_EQ(Batched.size(), Reference.size());
    for (std::size_t I = 0; I < Reference.size(); ++I)
      EXPECT_EQ(Batched[I], Reference[I])
          << S.Name << " relation " << Reference[I].first
          << " differs from one-shot with " << NumBatches << " batches at -j"
          << NumThreads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Subjects, SessionEquivalenceTest,
    ::testing::Combine(::testing::Range(0, NumSubjects),
                       ::testing::Values(1, 4), ::testing::Values(0, 1)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>> &Info) {
      static const std::vector<Subject> All = subjects();
      return All[std::get<0>(Info.param)].Name + "_j" +
             std::to_string(std::get<1>(Info.param)) +
             (std::get<2>(Info.param) == 0 ? "_source" : "_maxbound");
    });

//===----------------------------------------------------------------------===//
// Session semantics beyond equivalence
//===----------------------------------------------------------------------===//

constexpr const char *TcSource = R"(
  .decl edge(a:number, b:number)
  .decl path(a:number, b:number)
  path(x, y) :- edge(x, y).
  path(x, z) :- path(x, y), edge(y, z).
)";

FactBatch edgeBatch(std::initializer_list<std::pair<RamDomain, RamDomain>>
                        Edges) {
  std::vector<DynTuple> Tuples;
  for (const auto &[A, B] : Edges)
    Tuples.push_back({A, B});
  return {{"edge", Tuples}};
}

TEST(SessionTest, SnapshotIsolatesFromLaterBatches) {
  auto Session = EngineSession::fromSource(TcSource);
  ASSERT_NE(Session, nullptr);
  Session->loadFacts(edgeBatch({{1, 2}, {2, 3}}));

  Snapshot Old = Session->snapshot();
  EXPECT_EQ(Old.epoch(), 1u);
  EXPECT_EQ(Old.tuples("path").size(), 3u);

  // A later batch must not leak into the pinned snapshot...
  Session->loadFacts(edgeBatch({{3, 4}}));
  EXPECT_EQ(Old.epoch(), 1u);
  EXPECT_EQ(Old.tuples("path").size(), 3u);

  // ...while a fresh snapshot observes it.
  Snapshot Fresh = Session->snapshot();
  EXPECT_EQ(Fresh.epoch(), 2u);
  EXPECT_EQ(Fresh.tuples("path").size(), 6u);
}

TEST(SessionTest, DuplicateTuplesAreCountedNotRederived) {
  auto Session = EngineSession::fromSource(TcSource);
  ASSERT_NE(Session, nullptr);
  BatchResult First = Session->loadFacts(edgeBatch({{1, 2}, {2, 3}}));
  EXPECT_EQ(First.Inserted, 2u);
  EXPECT_EQ(First.Duplicates, 0u);

  BatchResult Second = Session->loadFacts(edgeBatch({{2, 3}, {3, 4}}));
  EXPECT_EQ(Second.Inserted, 1u);
  EXPECT_EQ(Second.Duplicates, 1u);
  EXPECT_EQ(Session->query("path", Pattern(2)).size(), 6u);
}

TEST(SessionTest, QueryPatternsUseBoundPrefixes) {
  auto Session = EngineSession::fromSource(TcSource);
  ASSERT_NE(Session, nullptr);
  Session->loadFacts(edgeBatch({{1, 2}, {2, 3}, {3, 4}}));

  Snapshot Snap = Session->snapshot();
  QueryPlan Plan;
  Pattern P(2);
  P[0] = 1;
  std::vector<DynTuple> From1 = Snap.query("path", P, &Plan);
  EXPECT_EQ(From1.size(), 3u);
  EXPECT_GE(Plan.PrefixLen, 1u);
  for (const DynTuple &Tuple : From1)
    EXPECT_EQ(Tuple[0], 1);

  // A second-column binding has no index prefix but must still filter.
  Pattern Q(2);
  Q[1] = 4;
  std::vector<DynTuple> To4 = Snap.query("path", Q);
  EXPECT_EQ(To4.size(), 3u);
  for (const DynTuple &Tuple : To4)
    EXPECT_EQ(Tuple[1], 4);
}

TEST(SessionTest, TextBatchesReportMalformedRows) {
  auto Session = EngineSession::fromSource(TcSource);
  ASSERT_NE(Session, nullptr);
  TextBatch Batch = {{"edge", {{"1", "2"}, {"2", "oops"}, {"3"}}},
                     {"nosuch", {{"9"}}}};
  std::vector<FactError> Errors;
  BatchResult R = Session->loadFacts(Batch, Errors);
  EXPECT_EQ(R.Inserted, 1u);
  ASSERT_EQ(Errors.size(), 3u);
  EXPECT_EQ(Errors[0].Line, 2u);
  EXPECT_EQ(Errors[0].Column, 2u);
  EXPECT_NE(Errors[0].Message.find("malformed number"), std::string::npos);
  EXPECT_NE(Errors[1].Message.find("1 columns"), std::string::npos);
  EXPECT_NE(Errors[2].Message.find("unknown relation"), std::string::npos);
  EXPECT_EQ(Session->query("path", Pattern(2)).size(), 1u);
}

/// The left-right TSan subject: readers continuously snapshot and query
/// while a writer publishes batches. Every observed state must be one the
/// writer actually published — path sizes only ever grow, and each
/// snapshot's contents are internally consistent with its epoch.
TEST(SessionTest, ConcurrentReadersObserveConsistentEpochs) {
  auto Session = EngineSession::fromSource(TcSource);
  ASSERT_NE(Session, nullptr);
  constexpr std::size_t NumBatches = 24;
  // Epoch E publishes a chain of E edges -> E*(E+1)/2 paths.
  auto PathsAt = [](std::uint64_t Epoch) {
    return static_cast<std::size_t>(Epoch * (Epoch + 1) / 2);
  };

  std::atomic<bool> Done{false};
  std::vector<std::thread> Readers;
  std::atomic<std::size_t> Observations{0};
  for (int R = 0; R < 3; ++R)
    Readers.emplace_back([&] {
      while (!Done.load(std::memory_order_acquire)) {
        Snapshot Snap = Session->snapshot();
        const std::uint64_t Epoch = Snap.epoch();
        EXPECT_EQ(Snap.tuples("path").size(), PathsAt(Epoch));
        EXPECT_EQ(Snap.tuples("edge").size(), Epoch);
        Observations.fetch_add(1, std::memory_order_relaxed);
      }
    });

  for (RamDomain I = 0; I < RamDomain(NumBatches); ++I)
    Session->loadFacts(edgeBatch({{I, I + 1}}));
  // On a loaded machine the writer can outrun the readers entirely; keep
  // the readers spinning until each has demonstrably observed something.
  while (Observations.load(std::memory_order_relaxed) < 8)
    std::this_thread::yield();
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();

  EXPECT_GE(Observations.load(), 8u);
  EXPECT_EQ(Session->query("path", Pattern(2)).size(), PathsAt(NumBatches));
}

/// The retraction TSan subject: readers snapshot and query while the
/// writer grows a chain edge by edge and then retracts it from the front,
/// every shrink maintained in place (DRed over-delete/rederive), never a
/// rebuild. Each snapshot must be one of the published states: the edge
/// and path counts are a function of the epoch alone.
TEST(SessionTest, ConcurrentReadersObserveConsistentRetractions) {
  auto Session = EngineSession::fromSource(TcSource);
  ASSERT_NE(Session, nullptr);
  ASSERT_TRUE(Session->isMaintained());
  constexpr std::uint64_t NumEdges = 12;
  // Epochs 1..N publish a chain of E edges; epochs N+1..2N retract edges
  // from the front, leaving a suffix chain of 2N - E edges.
  auto EdgesAt = [](std::uint64_t Epoch) {
    return static_cast<std::size_t>(Epoch <= NumEdges ? Epoch
                                                      : 2 * NumEdges - Epoch);
  };
  auto PathsAt = [&](std::uint64_t Epoch) {
    const std::size_t E = EdgesAt(Epoch);
    return E * (E + 1) / 2;
  };

  std::atomic<bool> Done{false};
  std::vector<std::thread> Readers;
  std::atomic<std::size_t> Observations{0};
  for (int R = 0; R < 3; ++R)
    Readers.emplace_back([&] {
      while (!Done.load(std::memory_order_acquire)) {
        Snapshot Snap = Session->snapshot();
        const std::uint64_t Epoch = Snap.epoch();
        EXPECT_EQ(Snap.tuples("edge").size(), EdgesAt(Epoch));
        EXPECT_EQ(Snap.tuples("path").size(), PathsAt(Epoch));
        Observations.fetch_add(1, std::memory_order_relaxed);
      }
    });

  auto edgeOp = [](RamDomain From, bool Retract) {
    inc::RelationOps Ops;
    Ops.Relation = "edge";
    DynTuple Edge(2);
    Edge[0] = From;
    Edge[1] = From + 1;
    (Retract ? Ops.Retracts : Ops.Inserts).push_back(std::move(Edge));
    return inc::MixedBatch{std::move(Ops)};
  };
  for (RamDomain I = 0; I < RamDomain(NumEdges); ++I) {
    const BatchResult R = Session->applyMixed(edgeOp(I, /*Retract=*/false));
    ASSERT_TRUE(R.Error.empty()) << R.Error;
    EXPECT_EQ(R.Inserted, 1u);
  }
  for (RamDomain I = 0; I < RamDomain(NumEdges); ++I) {
    const BatchResult R = Session->applyMixed(edgeOp(I, /*Retract=*/true));
    ASSERT_TRUE(R.Error.empty()) << R.Error;
    EXPECT_EQ(R.Deleted, 1u);
    EXPECT_TRUE(R.Maintained);
  }
  while (Observations.load(std::memory_order_relaxed) < 8)
    std::this_thread::yield();
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();

  EXPECT_GE(Observations.load(), 8u);
  EXPECT_EQ(Session->query("path", Pattern(2)).size(), 0u);
  EXPECT_EQ(Session->maintTelemetry().Rebuilds, 0u);
}

//===----------------------------------------------------------------------===//
// Query-result cache vs snapshot swaps
//===----------------------------------------------------------------------===//

/// One cache-aware query, the way the wire layer issues them: pin a
/// snapshot, consult the cache at its epoch, fill on miss.
std::size_t cachedCount(EngineSession &Session, QueryCache &Cache,
                        const std::string &Relation, const Pattern &P,
                        bool *WasHit = nullptr) {
  Snapshot Snap = Session.snapshot();
  const std::string Key = QueryCache::key(Relation, P);
  if (std::shared_ptr<const QueryCache::CachedResult> Hit =
          Cache.lookup(Key, Snap.epoch())) {
    if (WasHit)
      *WasHit = true;
    return Hit->Count;
  }
  if (WasHit)
    *WasHit = false;
  auto Result = std::make_shared<QueryCache::CachedResult>();
  Result->Count = Snap.query(Relation, P).size();
  Cache.insert(Key, Snap.epoch(), Result);
  return Result->Count;
}

/// The invalidation-equivalence contract: across every snapshot swap, a
/// cache-mediated query must agree with a direct query against a fresh
/// snapshot — hits and misses alike.
TEST(SessionCacheTest, CachedQueriesStayEquivalentAcrossSwaps) {
  auto Session = EngineSession::fromSource(TcSource);
  ASSERT_NE(Session, nullptr);
  QueryCache Cache;
  Pattern From1(2);
  From1[0] = 1;

  for (RamDomain I = 1; I <= 6; ++I) {
    Session->loadFacts(edgeBatch({{I, I + 1}}));
    bool Hit = true;
    const std::size_t Cold =
        cachedCount(*Session, Cache, "path", From1, &Hit);
    EXPECT_FALSE(Hit) << "epoch " << I << ": stale entry served after swap";
    const std::size_t Warm =
        cachedCount(*Session, Cache, "path", From1, &Hit);
    EXPECT_TRUE(Hit) << "epoch " << I;
    const std::size_t Direct = Session->query("path", From1).size();
    EXPECT_EQ(Cold, Direct);
    EXPECT_EQ(Warm, Direct);
    EXPECT_EQ(Direct, static_cast<std::size_t>(I))
        << "chain 1..N has N paths from node 1";
  }

  const QueryCache::Counters C = Cache.counters();
  EXPECT_EQ(C.Hits, 6u);
  EXPECT_EQ(C.Misses, 6u);
  // Swaps 2..6 each dropped one populated entry; the first miss found an
  // empty cache.
  EXPECT_EQ(C.Invalidations, 5u);
}

TEST(SessionCacheTest, KeysDistinguishRelationsAndPatterns) {
  Pattern A(2), B(2), C(2);
  A[0] = 1;
  B[1] = 1;
  C[0] = 256; // same bytes as ordinal 1 under a naive 1-byte encoding
  EXPECT_NE(QueryCache::key("path", A), QueryCache::key("edge", A));
  EXPECT_NE(QueryCache::key("path", A), QueryCache::key("path", B));
  EXPECT_NE(QueryCache::key("path", A), QueryCache::key("path", C));
  EXPECT_NE(QueryCache::key("path", A), QueryCache::key("path", Pattern(2)));
  EXPECT_EQ(QueryCache::key("path", A), QueryCache::key("path", A));
}

TEST(SessionCacheTest, StaleEpochInsertsAreDropped) {
  auto Session = EngineSession::fromSource(TcSource);
  ASSERT_NE(Session, nullptr);
  Session->loadFacts(edgeBatch({{1, 2}}));
  QueryCache Cache;
  const Pattern Any(2);
  const std::string Key = QueryCache::key("path", Any);

  // A reader computed a result at epoch 1, but a publish to epoch 2 beat
  // its insert: the stale result must not land.
  EXPECT_EQ(Cache.lookup(Key, 2), nullptr);
  auto Stale = std::make_shared<QueryCache::CachedResult>();
  Stale->Count = 1;
  Cache.insert(Key, 1, Stale);
  EXPECT_EQ(Cache.lookup(Key, 2), nullptr)
      << "insert from a superseded snapshot must be discarded";
  EXPECT_EQ(Cache.counters().Entries, 0u);
}

/// The cache's TSan subject: concurrent cache-mediated readers against a
/// publishing writer. Every count a reader observes — cached or not —
/// must be one of the writer's published states.
TEST(SessionCacheTest, ConcurrentCachedReadersSeeOnlyPublishedStates) {
  auto Session = EngineSession::fromSource(TcSource);
  ASSERT_NE(Session, nullptr);
  QueryCache Cache;
  constexpr std::size_t NumBatches = 16;
  auto PathsAt = [](std::uint64_t Epoch) {
    return static_cast<std::size_t>(Epoch * (Epoch + 1) / 2);
  };

  std::atomic<bool> Done{false};
  std::atomic<std::size_t> Observations{0};
  std::vector<std::thread> Readers;
  for (int R = 0; R < 3; ++R)
    Readers.emplace_back([&] {
      const Pattern Any(2);
      const std::string Key = QueryCache::key("path", Any);
      while (!Done.load(std::memory_order_acquire)) {
        Snapshot Snap = Session->snapshot();
        std::size_t Count;
        if (auto Hit = Cache.lookup(Key, Snap.epoch())) {
          Count = Hit->Count;
        } else {
          auto Result = std::make_shared<QueryCache::CachedResult>();
          Result->Count = Snap.query("path", Any).size();
          Cache.insert(Key, Snap.epoch(), Result);
          Count = Result->Count;
        }
        EXPECT_EQ(Count, PathsAt(Snap.epoch()));
        Observations.fetch_add(1, std::memory_order_relaxed);
      }
    });

  for (RamDomain I = 0; I < RamDomain(NumBatches); ++I)
    Session->loadFacts(edgeBatch({{I, I + 1}}));
  while (Observations.load(std::memory_order_relaxed) < 8)
    std::this_thread::yield();
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();
  EXPECT_GE(Observations.load(), 8u);
}

TEST(SessionTest, RelationMetadataListsDeclaredRelationsOnly) {
  auto Session = EngineSession::fromSource(TcSource);
  ASSERT_NE(Session, nullptr);
  const std::vector<std::string> Names = Session->relationNames();
  EXPECT_EQ(Names, (std::vector<std::string>{"edge", "path"}));
  ASSERT_NE(Session->relationTypes("edge"), nullptr);
  EXPECT_EQ(Session->relationTypes("edge")->size(), 2u);
  EXPECT_EQ(Session->relationTypes("delta_path"), nullptr);
  EXPECT_EQ(Session->relationTypes("nosuch"), nullptr);
}

TEST(SessionTest, CompileErrorsAreReportedNotFatal) {
  std::vector<std::string> Errors;
  auto Session = EngineSession::fromSource(".decl p(x:number)\np(y) :- q(y).",
                                           {}, &Errors);
  EXPECT_EQ(Session, nullptr);
  EXPECT_FALSE(Errors.empty());
}

} // namespace
