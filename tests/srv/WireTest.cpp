//===- tests/srv/WireTest.cpp - stird-wire-v1 protocol tests ------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire layer in two halves, without a server: framing over a
/// socketpair (round trips, clean EOF vs truncation, the oversized-frame
/// guard) and handleRequest as a pure protocol function (command dispatch,
/// error replies that keep the connection usable, the load/query/stats
/// flows and their reply schemas).
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "srv/Session.h"
#include "srv/Wire.h"

#include <gtest/gtest.h>

#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace stird;
using namespace stird::srv;
using obs::json::Value;

namespace {

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

struct SocketPair {
  int Fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0); }
  ~SocketPair() {
    for (int Fd : Fds)
      if (Fd >= 0)
        ::close(Fd);
  }
  void closeWriter() {
    ::close(Fds[0]);
    Fds[0] = -1;
  }
};

TEST(WireFramingTest, RoundTripsPayloads) {
  SocketPair S;
  // A frame larger than the socket buffer forces both sides to loop over
  // partial reads/writes, so the writer runs on its own thread.
  for (const std::string &Payload :
       {std::string(""), std::string("{\"cmd\":\"stats\"}"),
        std::string(1 << 20, 'x')}) {
    std::thread Writer(
        [&] { EXPECT_TRUE(writeFrame(S.Fds[0], Payload)); });
    std::string Read;
    ASSERT_TRUE(readFrame(S.Fds[1], Read));
    Writer.join();
    EXPECT_EQ(Read, Payload);
  }
}

TEST(WireFramingTest, BackToBackFramesStayAligned) {
  SocketPair S;
  ASSERT_TRUE(writeFrame(S.Fds[0], "first"));
  ASSERT_TRUE(writeFrame(S.Fds[0], ""));
  ASSERT_TRUE(writeFrame(S.Fds[0], "third"));
  std::string Read;
  ASSERT_TRUE(readFrame(S.Fds[1], Read));
  EXPECT_EQ(Read, "first");
  ASSERT_TRUE(readFrame(S.Fds[1], Read));
  EXPECT_EQ(Read, "");
  ASSERT_TRUE(readFrame(S.Fds[1], Read));
  EXPECT_EQ(Read, "third");
}

TEST(WireFramingTest, CleanEofIsNotAnError) {
  SocketPair S;
  S.closeWriter();
  std::string Read, Error = "sentinel";
  EXPECT_FALSE(readFrame(S.Fds[1], Read, &Error));
  EXPECT_EQ(Error, "") << "EOF at a frame boundary must report no error";
}

TEST(WireFramingTest, TruncatedHeaderAndPayloadAreErrors) {
  {
    SocketPair S;
    const char Partial[2] = {0, 0};
    ASSERT_EQ(::write(S.Fds[0], Partial, 2), 2);
    S.closeWriter();
    std::string Read, Error;
    EXPECT_FALSE(readFrame(S.Fds[1], Read, &Error));
    EXPECT_NE(Error.find("truncated frame header"), std::string::npos);
  }
  {
    SocketPair S;
    const unsigned char Header[4] = {0, 0, 0, 10}; // promises 10 bytes
    ASSERT_EQ(::write(S.Fds[0], Header, 4), 4);
    ASSERT_EQ(::write(S.Fds[0], "abc", 3), 3);
    S.closeWriter();
    std::string Read, Error;
    EXPECT_FALSE(readFrame(S.Fds[1], Read, &Error));
    EXPECT_NE(Error.find("truncated frame payload"), std::string::npos);
  }
}

TEST(WireFramingTest, OversizedFrameIsRejected) {
  SocketPair S;
  const unsigned char Header[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(::write(S.Fds[0], Header, 4), 4);
  std::string Read, Error;
  EXPECT_FALSE(readFrame(S.Fds[1], Read, &Error));
  EXPECT_NE(Error.find("exceeds"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Request handling
//===----------------------------------------------------------------------===//

constexpr const char *TcSource = R"(
  .decl edge(a:number, b:number)
  .decl path(a:number, b:number)
  path(x, y) :- edge(x, y).
  path(x, z) :- path(x, y), edge(y, z).
)";

class WireRequestTest : public ::testing::Test {
protected:
  void SetUp() override {
    Session = EngineSession::fromSource(TcSource);
    ASSERT_NE(Session, nullptr);
  }

  /// Dispatches one request and parses the reply document.
  Value reply(const std::string &Payload, bool *Shutdown = nullptr) {
    RequestOutcome Outcome = handleRequest(*Session, Latency, Payload);
    if (Shutdown)
      *Shutdown = Outcome.Shutdown;
    return std::move(Outcome.Reply);
  }

  static bool okOf(const Value &Reply) {
    const Value *Ok = Reply.find("ok");
    return Ok && Ok->isBool() && Ok->asBool();
  }

  static std::string errorOf(const Value &Reply) {
    const Value *Error = Reply.find("error");
    return Error && Error->isString() ? Error->asString() : "";
  }

  std::unique_ptr<EngineSession> Session;
  obs::LatencyAggregator Latency;
};

TEST_F(WireRequestTest, MalformedRequestsYieldErrorReplies) {
  EXPECT_NE(errorOf(reply("{not json")).find("malformed request"),
            std::string::npos);
  EXPECT_NE(errorOf(reply("[1,2]")).find("must be a JSON object"),
            std::string::npos);
  EXPECT_NE(errorOf(reply("{\"x\":1}")).find("\"cmd\" string"),
            std::string::npos);
  EXPECT_NE(errorOf(reply("{\"cmd\":\"frobnicate\"}"))
                .find("unknown command 'frobnicate'"),
            std::string::npos);
  // Every reply, error or not, carries the handling time.
  const Value R = reply("{bad");
  ASSERT_NE(R.find("micros"), nullptr);
}

TEST_F(WireRequestTest, LoadDerivesAndReportsCounts) {
  const Value R = reply(
      R"({"cmd":"load","facts":{"edge":[["1","2"],[2,3],["1","2"]]}})");
  ASSERT_TRUE(okOf(R)) << errorOf(R);
  EXPECT_EQ(R.find("inserted")->asNumber(), 2);
  EXPECT_EQ(R.find("duplicates")->asNumber(), 1);
  EXPECT_EQ(R.find("epoch")->asNumber(), 1);
  EXPECT_TRUE(R.find("incremental")->asBool());

  const Value Q = reply(R"({"cmd":"query","relation":"path"})");
  ASSERT_TRUE(okOf(Q)) << errorOf(Q);
  EXPECT_EQ(Q.find("count")->asNumber(), 3);
}

TEST_F(WireRequestTest, LoadReportsMalformedRowsAsWarnings) {
  const Value R = reply(
      R"({"cmd":"load","facts":{"edge":[["1","2"],["x","3"]]}})");
  ASSERT_TRUE(okOf(R));
  EXPECT_EQ(R.find("inserted")->asNumber(), 1);
  const auto &Warnings = R.find("warnings")->asArray();
  ASSERT_EQ(Warnings.size(), 1u);
  EXPECT_NE(Warnings[0].asString().find("malformed number"),
            std::string::npos);
}

TEST_F(WireRequestTest, LoadRejectsMalformedShapes) {
  EXPECT_NE(errorOf(reply(R"({"cmd":"load"})")).find("\"facts\" object"),
            std::string::npos);
  EXPECT_NE(errorOf(reply(R"({"cmd":"load","facts":{"edge":[[true]]}})"))
                .find("strings or numbers"),
            std::string::npos);
}

TEST_F(WireRequestTest, QueryBindsPatternsAndReportsThePlan) {
  reply(R"({"cmd":"load","facts":{"edge":[[1,2],[2,3],[3,4]]}})");
  const Value R =
      reply(R"({"cmd":"query","relation":"path","pattern":[1,null]})");
  ASSERT_TRUE(okOf(R)) << errorOf(R);
  EXPECT_EQ(R.find("count")->asNumber(), 3);
  const auto &Tuples = R.find("tuples")->asArray();
  for (const Value &Row : Tuples)
    EXPECT_EQ(Row.asArray()[0].asString(), "1");
  const Value *Plan = R.find("plan");
  ASSERT_NE(Plan, nullptr);
  EXPECT_GE(Plan->find("prefix_len")->asNumber(), 1);
}

TEST_F(WireRequestTest, QueryValidatesRelationAndPattern) {
  EXPECT_NE(errorOf(reply(R"({"cmd":"query"})")).find("\"relation\""),
            std::string::npos);
  EXPECT_NE(errorOf(reply(R"({"cmd":"query","relation":"nosuch"})"))
                .find("unknown relation 'nosuch'"),
            std::string::npos);
  EXPECT_NE(errorOf(reply(R"({"cmd":"query","relation":"path",
                             "pattern":[1]})"))
                .find("1 columns, expected 2"),
            std::string::npos);
  EXPECT_NE(errorOf(reply(R"({"cmd":"query","relation":"path",
                             "pattern":["x",null]})"))
                .find("pattern column 1"),
            std::string::npos);
}

TEST_F(WireRequestTest, UnknownSymbolsInPatternsMatchNothing) {
  auto Symbolic = EngineSession::fromSource(R"(
    .decl name(x:symbol)
    .decl seen(x:symbol)
    seen(x) :- name(x).
  )");
  ASSERT_NE(Symbolic, nullptr);
  obs::LatencyAggregator Agg;
  handleRequest(*Symbolic, Agg, R"({"cmd":"load","facts":{"name":[["a"]]}})");
  const std::size_t InternedBefore = Symbolic->symbols().size();

  RequestOutcome Outcome = handleRequest(
      *Symbolic, Agg,
      R"({"cmd":"query","relation":"seen","pattern":["never-interned"]})");
  ASSERT_TRUE(okOf(Outcome.Reply));
  EXPECT_EQ(Outcome.Reply.find("count")->asNumber(), 0);
  // The read-only miss must not grow the shared symbol table.
  EXPECT_EQ(Symbolic->symbols().size(), InternedBefore);
}

TEST_F(WireRequestTest, StatsReportsProtocolRelationsAndLatency) {
  reply(R"({"cmd":"load","facts":{"edge":[[1,2]]}})");
  reply(R"({"cmd":"query","relation":"path"})");
  const Value R = reply(R"({"cmd":"stats"})");
  ASSERT_TRUE(okOf(R));
  EXPECT_EQ(R.find("protocol")->asString(), WireProtocolVersion);
  EXPECT_EQ(R.find("epoch")->asNumber(), 1);

  const auto &Relations = R.find("relations")->asArray();
  ASSERT_EQ(Relations.size(), 2u) << "declared relations only, no aux";
  EXPECT_EQ(Relations[0].find("name")->asString(), "edge");
  EXPECT_EQ(Relations[0].find("size")->asNumber(), 1);
  EXPECT_EQ(Relations[1].find("name")->asString(), "path");
  ASSERT_NE(Relations[1].find("inserts"), nullptr)
      << "RelationStats counters missing from stats reply";

  const Value *LatencyVal = R.find("latency");
  ASSERT_NE(LatencyVal, nullptr);
  EXPECT_EQ(LatencyVal->find("load")->find("count")->asNumber(), 1);
  EXPECT_EQ(LatencyVal->find("query")->find("count")->asNumber(), 1);
}

TEST_F(WireRequestTest, ShutdownFlagsTheConnection) {
  bool Shutdown = false;
  const Value R = reply(R"({"cmd":"shutdown"})", &Shutdown);
  EXPECT_TRUE(okOf(R));
  EXPECT_TRUE(Shutdown);
  // Non-shutdown commands leave the flag clear.
  Shutdown = true;
  reply(R"({"cmd":"stats"})", &Shutdown);
  EXPECT_FALSE(Shutdown);
}

} // namespace
