//===- tests/srv/WireTest.cpp - stird-wire-v1 protocol tests ------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire layer in two halves, without a server: framing over a
/// socketpair (round trips, clean EOF vs truncation, the oversized-frame
/// guard) and handleRequest as a pure protocol function (command dispatch,
/// error replies that keep the connection usable, the load/query/stats
/// flows and their reply schemas).
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "srv/Session.h"
#include "srv/Wire.h"

#include "../obs/MetricsTestSupport.h"

#include <gtest/gtest.h>

#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace stird;
using namespace stird::srv;
using obs::json::Value;

namespace {

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

struct SocketPair {
  int Fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0); }
  ~SocketPair() {
    for (int Fd : Fds)
      if (Fd >= 0)
        ::close(Fd);
  }
  void closeWriter() {
    ::close(Fds[0]);
    Fds[0] = -1;
  }
};

TEST(WireFramingTest, RoundTripsPayloads) {
  SocketPair S;
  // A frame larger than the socket buffer forces both sides to loop over
  // partial reads/writes, so the writer runs on its own thread.
  for (const std::string &Payload :
       {std::string(""), std::string("{\"cmd\":\"stats\"}"),
        std::string(1 << 20, 'x')}) {
    std::thread Writer(
        [&] { EXPECT_TRUE(writeFrame(S.Fds[0], Payload)); });
    std::string Read;
    ASSERT_TRUE(readFrame(S.Fds[1], Read));
    Writer.join();
    EXPECT_EQ(Read, Payload);
  }
}

TEST(WireFramingTest, BackToBackFramesStayAligned) {
  SocketPair S;
  ASSERT_TRUE(writeFrame(S.Fds[0], "first"));
  ASSERT_TRUE(writeFrame(S.Fds[0], ""));
  ASSERT_TRUE(writeFrame(S.Fds[0], "third"));
  std::string Read;
  ASSERT_TRUE(readFrame(S.Fds[1], Read));
  EXPECT_EQ(Read, "first");
  ASSERT_TRUE(readFrame(S.Fds[1], Read));
  EXPECT_EQ(Read, "");
  ASSERT_TRUE(readFrame(S.Fds[1], Read));
  EXPECT_EQ(Read, "third");
}

TEST(WireFramingTest, CleanEofIsNotAnError) {
  SocketPair S;
  S.closeWriter();
  std::string Read, Error = "sentinel";
  EXPECT_FALSE(readFrame(S.Fds[1], Read, &Error));
  EXPECT_EQ(Error, "") << "EOF at a frame boundary must report no error";
}

TEST(WireFramingTest, TruncatedHeaderAndPayloadAreErrors) {
  {
    SocketPair S;
    const char Partial[2] = {0, 0};
    ASSERT_EQ(::write(S.Fds[0], Partial, 2), 2);
    S.closeWriter();
    std::string Read, Error;
    EXPECT_FALSE(readFrame(S.Fds[1], Read, &Error));
    EXPECT_NE(Error.find("truncated frame header"), std::string::npos);
  }
  {
    SocketPair S;
    const unsigned char Header[4] = {0, 0, 0, 10}; // promises 10 bytes
    ASSERT_EQ(::write(S.Fds[0], Header, 4), 4);
    ASSERT_EQ(::write(S.Fds[0], "abc", 3), 3);
    S.closeWriter();
    std::string Read, Error;
    EXPECT_FALSE(readFrame(S.Fds[1], Read, &Error));
    EXPECT_NE(Error.find("truncated frame payload"), std::string::npos);
  }
}

TEST(WireFramingTest, OversizedFrameIsRejected) {
  SocketPair S;
  const unsigned char Header[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(::write(S.Fds[0], Header, 4), 4);
  std::string Read, Error;
  EXPECT_FALSE(readFrame(S.Fds[1], Read, &Error));
  EXPECT_NE(Error.find("exceeds"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// FrameDecoder
//===----------------------------------------------------------------------===//

TEST(FrameDecoderTest, ReassemblesFramesFedByteByByte) {
  FrameDecoder Decoder(MaxFrameBytes);
  const std::string Wire =
      encodeFrame("first") + encodeFrame("") + encodeFrame("third");
  std::vector<std::string> Frames;
  for (char Byte : Wire) {
    Decoder.feed(&Byte, 1);
    std::string Payload;
    while (Decoder.next(Payload) == FrameDecoder::Result::Frame)
      Frames.push_back(Payload);
  }
  ASSERT_EQ(Frames, (std::vector<std::string>{"first", "", "third"}));
  EXPECT_EQ(Decoder.buffered(), 0u);
}

TEST(FrameDecoderTest, DrainsMultipleFramesFromOneFeed) {
  FrameDecoder Decoder(MaxFrameBytes);
  const std::string Wire = encodeFrame("a") + encodeFrame("bb");
  Decoder.feed(Wire.data(), Wire.size());
  std::string Payload;
  ASSERT_EQ(Decoder.next(Payload), FrameDecoder::Result::Frame);
  EXPECT_EQ(Payload, "a");
  ASSERT_EQ(Decoder.next(Payload), FrameDecoder::Result::Frame);
  EXPECT_EQ(Payload, "bb");
  EXPECT_EQ(Decoder.next(Payload), FrameDecoder::Result::NeedMore);
}

TEST(FrameDecoderTest, TruncatedFrameStaysNeedMore) {
  FrameDecoder Decoder(MaxFrameBytes);
  const std::string Wire = encodeFrame("0123456789");
  Decoder.feed(Wire.data(), Wire.size() - 3);
  std::string Payload;
  EXPECT_EQ(Decoder.next(Payload), FrameDecoder::Result::NeedMore);
  Decoder.feed(Wire.data() + Wire.size() - 3, 3);
  ASSERT_EQ(Decoder.next(Payload), FrameDecoder::Result::Frame);
  EXPECT_EQ(Payload, "0123456789");
}

TEST(FrameDecoderTest, OversizedLengthPoisonsWithoutAllocating) {
  // 0xFFFFFFFF would be a 4 GiB allocation if the guard ran after the
  // resize; the decoder must reject on the prefix alone and stay poisoned.
  FrameDecoder Decoder(MaxFrameBytes);
  const unsigned char Header[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  Decoder.feed(reinterpret_cast<const char *>(Header), 4);
  std::string Payload, Error;
  EXPECT_EQ(Decoder.next(Payload, &Error), FrameDecoder::Result::Error);
  EXPECT_NE(Error.find("exceeds"), std::string::npos);
  EXPECT_TRUE(Decoder.poisoned());
  // Further bytes are discarded, further next() calls keep erroring.
  const std::string More = encodeFrame("valid");
  Decoder.feed(More.data(), More.size());
  EXPECT_EQ(Decoder.buffered(), 0u);
  EXPECT_EQ(Decoder.next(Payload), FrameDecoder::Result::Error);
}

TEST(FrameDecoderTest, NegativeAsSignedLengthIsRejected) {
  FrameDecoder Decoder(MaxFrameBytes);
  const unsigned char Header[4] = {0x80, 0x00, 0x00, 0x01}; // -2^31+1 signed
  Decoder.feed(reinterpret_cast<const char *>(Header), 4);
  std::string Payload, Error;
  EXPECT_EQ(Decoder.next(Payload, &Error), FrameDecoder::Result::Error);
  EXPECT_TRUE(Decoder.poisoned());
}

TEST(FrameDecoderTest, HonorsACustomLimit) {
  FrameDecoder Decoder(/*MaxBytes=*/8);
  const std::string Small = encodeFrame("12345678");
  Decoder.feed(Small.data(), Small.size());
  std::string Payload;
  ASSERT_EQ(Decoder.next(Payload), FrameDecoder::Result::Frame);
  EXPECT_EQ(Payload, "12345678");

  FrameDecoder Strict(/*MaxBytes=*/8);
  const std::string Big = encodeFrame("123456789");
  Strict.feed(Big.data(), Big.size());
  EXPECT_EQ(Strict.next(Payload), FrameDecoder::Result::Error);
}

//===----------------------------------------------------------------------===//
// Request handling
//===----------------------------------------------------------------------===//

constexpr const char *TcSource = R"(
  .decl edge(a:number, b:number)
  .decl path(a:number, b:number)
  path(x, y) :- edge(x, y).
  path(x, z) :- path(x, y), edge(y, z).
)";

class WireRequestTest : public ::testing::Test {
protected:
  void SetUp() override {
    Session = EngineSession::fromSource(TcSource);
    ASSERT_NE(Session, nullptr);
  }

  /// Dispatches one request and parses the reply document.
  Value reply(const std::string &Payload, bool *Shutdown = nullptr) {
    RequestOutcome Outcome = handleRequest(*Session, Latency, Payload);
    if (Shutdown)
      *Shutdown = Outcome.Shutdown;
    return std::move(Outcome.Reply);
  }

  static bool okOf(const Value &Reply) {
    const Value *Ok = Reply.find("ok");
    return Ok && Ok->isBool() && Ok->asBool();
  }

  static std::string errorOf(const Value &Reply) {
    const Value *Error = Reply.find("error");
    return Error && Error->isString() ? Error->asString() : "";
  }

  std::unique_ptr<EngineSession> Session;
  obs::LatencyAggregator Latency;
};

TEST_F(WireRequestTest, MalformedRequestsYieldErrorReplies) {
  EXPECT_NE(errorOf(reply("{not json")).find("malformed request"),
            std::string::npos);
  EXPECT_NE(errorOf(reply("[1,2]")).find("must be a JSON object"),
            std::string::npos);
  EXPECT_NE(errorOf(reply("{\"x\":1}")).find("\"cmd\" string"),
            std::string::npos);
  EXPECT_NE(errorOf(reply("{\"cmd\":\"frobnicate\"}"))
                .find("unknown command 'frobnicate'"),
            std::string::npos);
  // Every reply, error or not, carries the handling time.
  const Value R = reply("{bad");
  ASSERT_NE(R.find("micros"), nullptr);
}

TEST_F(WireRequestTest, LoadDerivesAndReportsCounts) {
  const Value R = reply(
      R"({"cmd":"load","facts":{"edge":[["1","2"],[2,3],["1","2"]]}})");
  ASSERT_TRUE(okOf(R)) << errorOf(R);
  EXPECT_EQ(R.find("inserted")->asNumber(), 2);
  EXPECT_EQ(R.find("duplicates")->asNumber(), 1);
  EXPECT_EQ(R.find("epoch")->asNumber(), 1);
  EXPECT_TRUE(R.find("incremental")->asBool());

  const Value Q = reply(R"({"cmd":"query","relation":"path"})");
  ASSERT_TRUE(okOf(Q)) << errorOf(Q);
  EXPECT_EQ(Q.find("count")->asNumber(), 3);
}

TEST_F(WireRequestTest, RetractCommandRemovesFactsAndDerivations) {
  reply(R"({"cmd":"load","facts":{"edge":[[1,2],[2,3],[3,4]]}})");
  const Value R =
      reply(R"({"cmd":"retract","facts":{"edge":[[3,4],[9,9]]}})");
  ASSERT_TRUE(okOf(R)) << errorOf(R);
  EXPECT_EQ(R.find("deleted")->asNumber(), 1);
  EXPECT_EQ(R.find("missing")->asNumber(), 1);
  EXPECT_EQ(R.find("inserted")->asNumber(), 0);
  EXPECT_TRUE(R.find("maintained")->asBool());
  EXPECT_TRUE(R.find("incremental")->asBool());
  EXPECT_EQ(R.find("epoch")->asNumber(), 2);

  // The derived closure shrinks with the retracted edge.
  const Value Q = reply(R"({"cmd":"query","relation":"path"})");
  ASSERT_TRUE(okOf(Q));
  EXPECT_EQ(Q.find("count")->asNumber(), 3);
}

TEST_F(WireRequestTest, LoadAcceptsAMixedRetractBlock) {
  reply(R"({"cmd":"load","facts":{"edge":[[1,2],[2,3]]}})");
  const Value R = reply(
      R"({"cmd":"load","facts":{"edge":[[3,4]]},"retract":{"edge":[[1,2]]}})");
  ASSERT_TRUE(okOf(R)) << errorOf(R);
  EXPECT_EQ(R.find("inserted")->asNumber(), 1);
  EXPECT_EQ(R.find("deleted")->asNumber(), 1);
  const Value Q = reply(R"({"cmd":"query","relation":"path"})");
  EXPECT_EQ(Q.find("count")->asNumber(), 3); // 2->3, 3->4, 2->4
}

TEST_F(WireRequestTest, RetractValidatesItsTargets) {
  reply(R"({"cmd":"load","facts":{"edge":[[1,2]]}})");
  EXPECT_NE(errorOf(reply(R"({"cmd":"retract","facts":{"path":[[1,2]]}})"))
                .find("derived"),
            std::string::npos);
  EXPECT_NE(errorOf(reply(R"({"cmd":"retract"})")).find("\"facts\""),
            std::string::npos);
  // A rejected batch does not advance the epoch.
  const Value S = reply(R"({"cmd":"stats"})");
  EXPECT_EQ(S.find("epoch")->asNumber(), 1);
  // Unknown relations surface as warnings, exactly like load does.
  const Value W = reply(R"({"cmd":"retract","facts":{"nosuch":[[1]]}})");
  ASSERT_TRUE(okOf(W));
  ASSERT_EQ(W.find("warnings")->asArray().size(), 1u);
  EXPECT_NE(W.find("warnings")->asArray()[0].asString().find(
                "unknown relation"),
            std::string::npos);
}

TEST_F(WireRequestTest, LoadReportsMalformedRowsAsWarnings) {
  const Value R = reply(
      R"({"cmd":"load","facts":{"edge":[["1","2"],["x","3"]]}})");
  ASSERT_TRUE(okOf(R));
  EXPECT_EQ(R.find("inserted")->asNumber(), 1);
  const auto &Warnings = R.find("warnings")->asArray();
  ASSERT_EQ(Warnings.size(), 1u);
  EXPECT_NE(Warnings[0].asString().find("malformed number"),
            std::string::npos);
}

TEST_F(WireRequestTest, LoadRejectsMalformedShapes) {
  EXPECT_NE(errorOf(reply(R"({"cmd":"load"})")).find("\"facts\" object"),
            std::string::npos);
  EXPECT_NE(errorOf(reply(R"({"cmd":"load","facts":{"edge":[[true]]}})"))
                .find("strings or numbers"),
            std::string::npos);
}

TEST_F(WireRequestTest, QueryBindsPatternsAndReportsThePlan) {
  reply(R"({"cmd":"load","facts":{"edge":[[1,2],[2,3],[3,4]]}})");
  const Value R =
      reply(R"({"cmd":"query","relation":"path","pattern":[1,null]})");
  ASSERT_TRUE(okOf(R)) << errorOf(R);
  EXPECT_EQ(R.find("count")->asNumber(), 3);
  // Rendered tuples travel as a preserialized fragment; reparse its dump
  // the way a wire client would.
  std::optional<Value> Tuples = obs::json::parse(R.find("tuples")->dump());
  ASSERT_TRUE(Tuples && Tuples->isArray());
  for (const Value &Row : Tuples->asArray())
    EXPECT_EQ(Row.asArray()[0].asString(), "1");
  const Value *Plan = R.find("plan");
  ASSERT_NE(Plan, nullptr);
  EXPECT_GE(Plan->find("prefix_len")->asNumber(), 1);
}

TEST_F(WireRequestTest, QueryValidatesRelationAndPattern) {
  EXPECT_NE(errorOf(reply(R"({"cmd":"query"})")).find("\"relation\""),
            std::string::npos);
  EXPECT_NE(errorOf(reply(R"({"cmd":"query","relation":"nosuch"})"))
                .find("unknown relation 'nosuch'"),
            std::string::npos);
  EXPECT_NE(errorOf(reply(R"({"cmd":"query","relation":"path",
                             "pattern":[1]})"))
                .find("1 columns, expected 2"),
            std::string::npos);
  EXPECT_NE(errorOf(reply(R"({"cmd":"query","relation":"path",
                             "pattern":["x",null]})"))
                .find("pattern column 1"),
            std::string::npos);
}

TEST_F(WireRequestTest, UnknownSymbolsInPatternsMatchNothing) {
  auto Symbolic = EngineSession::fromSource(R"(
    .decl name(x:symbol)
    .decl seen(x:symbol)
    seen(x) :- name(x).
  )");
  ASSERT_NE(Symbolic, nullptr);
  obs::LatencyAggregator Agg;
  handleRequest(*Symbolic, Agg, R"({"cmd":"load","facts":{"name":[["a"]]}})");
  const std::size_t InternedBefore = Symbolic->symbols().size();

  RequestOutcome Outcome = handleRequest(
      *Symbolic, Agg,
      R"({"cmd":"query","relation":"seen","pattern":["never-interned"]})");
  ASSERT_TRUE(okOf(Outcome.Reply));
  EXPECT_EQ(Outcome.Reply.find("count")->asNumber(), 0);
  // The read-only miss must not grow the shared symbol table.
  EXPECT_EQ(Symbolic->symbols().size(), InternedBefore);
}

TEST_F(WireRequestTest, StatsReportsProtocolRelationsAndLatency) {
  reply(R"({"cmd":"load","facts":{"edge":[[1,2]]}})");
  reply(R"({"cmd":"query","relation":"path"})");
  const Value R = reply(R"({"cmd":"stats"})");
  ASSERT_TRUE(okOf(R));
  EXPECT_EQ(R.find("protocol")->asString(), WireProtocolVersion);
  EXPECT_EQ(R.find("epoch")->asNumber(), 1);

  const auto &Relations = R.find("relations")->asArray();
  ASSERT_EQ(Relations.size(), 2u) << "declared relations only, no aux";
  EXPECT_EQ(Relations[0].find("name")->asString(), "edge");
  EXPECT_EQ(Relations[0].find("size")->asNumber(), 1);
  EXPECT_EQ(Relations[1].find("name")->asString(), "path");
  ASSERT_NE(Relations[1].find("inserts"), nullptr)
      << "RelationStats counters missing from stats reply";

  const Value *LatencyVal = R.find("latency");
  ASSERT_NE(LatencyVal, nullptr);
  EXPECT_EQ(LatencyVal->find("load")->find("count")->asNumber(), 1);
  EXPECT_EQ(LatencyVal->find("query")->find("count")->asNumber(), 1);

  const Value *Maint = R.find("maintenance");
  ASSERT_NE(Maint, nullptr);
  EXPECT_TRUE(Maint->find("enabled")->asBool());
  EXPECT_EQ(Maint->find("batches")->asNumber(), 1);
  EXPECT_EQ(Maint->find("rebuild_fallbacks")->asNumber(), 0);
  ASSERT_NE(Maint->find("fallbacks"), nullptr);
}

TEST_F(WireRequestTest, ShutdownFlagsTheConnection) {
  bool Shutdown = false;
  const Value R = reply(R"({"cmd":"shutdown"})", &Shutdown);
  EXPECT_TRUE(okOf(R));
  EXPECT_TRUE(Shutdown);
  // Non-shutdown commands leave the flag clear.
  Shutdown = true;
  reply(R"({"cmd":"stats"})", &Shutdown);
  EXPECT_FALSE(Shutdown);
}

TEST_F(WireRequestTest, RequestIdsEchoVerbatim) {
  const Value Num = reply(R"({"cmd":"stats","id":42})");
  ASSERT_NE(Num.find("id"), nullptr);
  EXPECT_EQ(Num.find("id")->asNumber(), 42);

  const Value Str = reply(R"({"cmd":"stats","id":"req-7"})");
  ASSERT_NE(Str.find("id"), nullptr);
  EXPECT_EQ(Str.find("id")->asString(), "req-7");

  // Ids ride along on error replies too — a pipelining client must be
  // able to correlate failures.
  const Value Bad = reply(R"({"cmd":"frobnicate","id":9})");
  EXPECT_FALSE(okOf(Bad));
  ASSERT_NE(Bad.find("id"), nullptr);
  EXPECT_EQ(Bad.find("id")->asNumber(), 9);

  // Non-scalar ids are a protocol error (and clearly have no id echo).
  const Value Obj = reply(R"({"cmd":"stats","id":{}})");
  EXPECT_FALSE(okOf(Obj));
  EXPECT_NE(errorOf(Obj).find("\"id\""), std::string::npos);

  // Requests without an id get no id member at all.
  EXPECT_EQ(reply(R"({"cmd":"stats"})").find("id"), nullptr);
}

TEST_F(WireRequestTest, V1EndpointRejectsTenantRouting) {
  const Value R = reply(R"({"cmd":"stats","tenant":"other"})");
  EXPECT_FALSE(okOf(R));
  EXPECT_NE(errorOf(R).find("tenant"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Multi-tenant routing and the query cache
//===----------------------------------------------------------------------===//

class WireTenantTest : public ::testing::Test {
protected:
  void SetUp() override {
    A = EngineSession::fromSource(TcSource);
    B = EngineSession::fromSource(TcSource);
    ASSERT_NE(A, nullptr);
    ASSERT_NE(B, nullptr);
    Tenants.add("default", *A);
    Tenants.add("other", *B);
  }

  Value reply(const std::string &Payload) {
    return handleRequest(Tenants, Payload).Reply;
  }

  static bool okOf(const Value &Reply) {
    const Value *Ok = Reply.find("ok");
    return Ok && Ok->isBool() && Ok->asBool();
  }

  std::unique_ptr<EngineSession> A, B;
  TenantRegistry Tenants;
};

TEST_F(WireTenantTest, RequestsRouteByTenantName) {
  reply(R"({"cmd":"load","facts":{"edge":[[1,2]]}})");
  reply(R"({"cmd":"load","tenant":"other","facts":{"edge":[[1,2],[2,3]]}})");
  EXPECT_EQ(A->epoch(), 1u);
  EXPECT_EQ(B->epoch(), 1u);

  const Value Qa = reply(R"({"cmd":"query","relation":"path"})");
  const Value Qb =
      reply(R"({"cmd":"query","tenant":"other","relation":"path"})");
  ASSERT_TRUE(okOf(Qa));
  ASSERT_TRUE(okOf(Qb));
  EXPECT_EQ(Qa.find("count")->asNumber(), 1);
  EXPECT_EQ(Qb.find("count")->asNumber(), 3);

  const Value Unknown = reply(R"({"cmd":"stats","tenant":"nosuch"})");
  EXPECT_FALSE(okOf(Unknown));
  EXPECT_NE(Unknown.find("error")->asString().find("unknown tenant"),
            std::string::npos);
}

TEST_F(WireTenantTest, StatsReportTenantsAndPerTenantCaches) {
  reply(R"({"cmd":"load","facts":{"edge":[[1,2]]}})");
  reply(R"({"cmd":"query","relation":"path","pattern":[1,null]})");
  reply(R"({"cmd":"query","relation":"path","pattern":[1,null]})");

  const Value R = reply(R"({"cmd":"stats"})");
  ASSERT_TRUE(okOf(R));
  EXPECT_EQ(R.find("tenant")->asString(), "default");
  const auto &Names = R.find("tenants")->asArray();
  ASSERT_EQ(Names.size(), 2u);
  EXPECT_EQ(Names[0].asString(), "default");
  EXPECT_EQ(Names[1].asString(), "other");
  const Value *Cache = R.find("cache");
  ASSERT_NE(Cache, nullptr);
  EXPECT_EQ(Cache->find("hits")->asNumber(), 1);
  EXPECT_EQ(Cache->find("misses")->asNumber(), 1);

  // The other tenant's cache saw none of it.
  const Value Rb = reply(R"({"cmd":"stats","tenant":"other"})");
  EXPECT_EQ(Rb.find("cache")->find("hits")->asNumber(), 0);
  EXPECT_EQ(Rb.find("cache")->find("misses")->asNumber(), 0);
}

TEST_F(WireTenantTest, RepeatedQueriesHitTheCacheWithIdenticalReplies) {
  reply(R"({"cmd":"load","facts":{"edge":[[1,2],[2,3]]}})");
  const std::string Q =
      R"({"cmd":"query","relation":"path","pattern":[1,null]})";
  Value Cold = reply(Q);
  Value Warm = reply(Q);
  ASSERT_TRUE(okOf(Cold));
  ASSERT_TRUE(okOf(Warm));
  EXPECT_FALSE(Cold.find("cached")->asBool());
  EXPECT_TRUE(Warm.find("cached")->asBool());
  // Identical payloads modulo the cache flag and timing.
  for (const char *Member : {"tuples", "count", "epoch", "plan"}) {
    ASSERT_NE(Cold.find(Member), nullptr) << Member;
    ASSERT_NE(Warm.find(Member), nullptr) << Member;
    EXPECT_EQ(Cold.find(Member)->dump(), Warm.find(Member)->dump())
        << Member;
  }
}

TEST_F(WireRequestTest, V1EndpointRejectsTheMetricsCommand) {
  const Value R = reply(R"({"cmd":"metrics"})");
  EXPECT_FALSE(okOf(R));
  EXPECT_NE(errorOf(R).find("metrics"), std::string::npos);
}

TEST_F(WireTenantTest, MetricsCommandDeliversTheExpositionInBand) {
  reply(R"({"cmd":"load","facts":{"edge":[[1,2]]}})");
  reply(R"({"cmd":"query","relation":"path","pattern":[1,null]})");

  const Value R = reply(R"({"cmd":"metrics","id":9})");
  ASSERT_TRUE(okOf(R)) << R.dump();
  EXPECT_EQ(R.find("id")->asNumber(), 9);
  const Value *Text = R.find("metrics");
  ASSERT_NE(Text, nullptr);
  ASSERT_TRUE(Text->isString());
  // The in-band document is the same exposition the HTTP endpoint serves:
  // well-formed 0.0.4 text with the tenant and latency families.
  EXPECT_EQ(obs::prom::validatePrometheusText(Text->asString()), "")
      << Text->asString();
  EXPECT_NE(Text->asString().find("stird_tenant_epoch{tenant=\"default\"}"),
            std::string::npos);
  EXPECT_NE(Text->asString().find("stird_request_latency_micros_bucket"),
            std::string::npos);
}

TEST_F(WireTenantTest, StatsCarryTelemetryMembersWhenAttached) {
  // Without an attached front end there is no "server"/"trace" member.
  EXPECT_EQ(reply(R"({"cmd":"stats"})").find("server"), nullptr);
  EXPECT_EQ(reply(R"({"cmd":"stats"})").find("trace"), nullptr);

  ServeTelemetry Telemetry;
  Tenants.Telemetry = &Telemetry;
  const Value R = reply(R"({"cmd":"stats"})");
  ASSERT_TRUE(okOf(R));
  const Value *Server = R.find("server");
  ASSERT_NE(Server, nullptr);
  EXPECT_NE(Server->find("requests_dispatched"), nullptr);
  EXPECT_NE(Server->find("metrics_scrapes"), nullptr);
  const Value *Trace = R.find("trace");
  ASSERT_NE(Trace, nullptr);
  for (const char *Member :
       {"started", "sampled", "retained", "slow", "sample_every", "recent"})
    EXPECT_NE(Trace->find(Member), nullptr) << Member;
  Tenants.Telemetry = nullptr;
}

TEST_F(WireTenantTest, SnapshotPublishInvalidatesTheCache) {
  reply(R"({"cmd":"load","facts":{"edge":[[1,2]]}})");
  const std::string Q =
      R"({"cmd":"query","relation":"path","pattern":[1,null]})";
  reply(Q); // populate
  EXPECT_TRUE(reply(Q).find("cached")->asBool());

  // New batch -> new epoch -> the stale entry must not serve.
  reply(R"({"cmd":"load","facts":{"edge":[[2,3]]}})");
  const Value Fresh = reply(Q);
  EXPECT_FALSE(Fresh.find("cached")->asBool());
  EXPECT_EQ(Fresh.find("count")->asNumber(), 2)
      << "invalidated cache must re-run against the new snapshot";
  EXPECT_TRUE(reply(Q).find("cached")->asBool());
}

} // namespace
