//===- tests/ast/ParserTest.cpp - Parser tests ---------------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "ast/Parser.h"

#include <gtest/gtest.h>

using namespace stird;
using namespace stird::ast;

namespace {

std::unique_ptr<Program> parseOk(const std::string &Source) {
  ParseResult Result = parseProgram(Source);
  EXPECT_TRUE(Result.succeeded())
      << (Result.Errors.empty() ? "" : Result.Errors[0]);
  return std::move(Result.Prog);
}

TEST(ParserTest, RelationDeclaration) {
  auto Prog = parseOk(".decl edge(a:number, b:number)");
  ASSERT_EQ(Prog->Relations.size(), 1u);
  const RelationDecl &Rel = *Prog->Relations[0];
  EXPECT_EQ(Rel.getName(), "edge");
  ASSERT_EQ(Rel.getArity(), 2u);
  EXPECT_EQ(Rel.getAttributes()[0].Name, "a");
  EXPECT_EQ(Rel.getAttributes()[0].Type, TypeKind::Number);
  EXPECT_EQ(Rel.getStructure(), StructureKind::Btree);
}

TEST(ParserTest, AllAttributeTypes) {
  auto Prog = parseOk(".decl r(a:number, b:unsigned, c:float, d:symbol)");
  const auto &Attrs = Prog->Relations[0]->getAttributes();
  EXPECT_EQ(Attrs[0].Type, TypeKind::Number);
  EXPECT_EQ(Attrs[1].Type, TypeKind::Unsigned);
  EXPECT_EQ(Attrs[2].Type, TypeKind::Float);
  EXPECT_EQ(Attrs[3].Type, TypeKind::Symbol);
}

TEST(ParserTest, StructureQualifiers) {
  auto Prog = parseOk(".decl a(x:number) brie\n"
                      ".decl b(x:number, y:number) eqrel\n"
                      ".decl c(x:number) btree");
  EXPECT_EQ(Prog->Relations[0]->getStructure(), StructureKind::Brie);
  EXPECT_EQ(Prog->Relations[1]->getStructure(), StructureKind::Eqrel);
  EXPECT_EQ(Prog->Relations[2]->getStructure(), StructureKind::Btree);
}

TEST(ParserTest, IoDirectives) {
  auto Prog = parseOk(".decl e(a:number)\n.input e\n.output e(\"out.csv\")\n"
                      ".printsize e");
  const RelationDecl &Rel = *Prog->Relations[0];
  EXPECT_TRUE(Rel.isInput());
  EXPECT_TRUE(Rel.isOutput());
  EXPECT_TRUE(Rel.isPrintSize());
  EXPECT_EQ(Rel.getOutputPath(), "out.csv");
  EXPECT_TRUE(Rel.getInputPath().empty());
}

TEST(ParserTest, FactAndRule) {
  auto Prog = parseOk(".decl e(a:number, b:number)\n"
                      ".decl p(a:number, b:number)\n"
                      "e(1, 2).\n"
                      "p(x, y) :- e(x, y).\n"
                      "p(x, z) :- p(x, y), e(y, z).");
  ASSERT_EQ(Prog->Clauses.size(), 3u);
  EXPECT_TRUE(Prog->Clauses[0]->isFact());
  EXPECT_FALSE(Prog->Clauses[1]->isFact());
  EXPECT_EQ(Prog->Clauses[2]->getBody().size(), 2u);
  EXPECT_EQ(Prog->Clauses[2]->toString(),
            "p(x, z) :- p(x, y), e(y, z).");
}

TEST(ParserTest, NegationAndConstraints) {
  auto Prog = parseOk(".decl a(x:number)\n.decl b(x:number)\n"
                      "a(x) :- b(x), !a(x), x < 10, x != 3.");
  const auto &Body = Prog->Clauses[0]->getBody();
  ASSERT_EQ(Body.size(), 4u);
  EXPECT_EQ(Body[0]->getKind(), Literal::Kind::Atom);
  EXPECT_EQ(Body[1]->getKind(), Literal::Kind::Negation);
  EXPECT_EQ(Body[2]->getKind(), Literal::Kind::Constraint);
  EXPECT_EQ(static_cast<const Constraint &>(*Body[2]).getOp(),
            ConstraintOp::Lt);
  EXPECT_EQ(static_cast<const Constraint &>(*Body[3]).getOp(),
            ConstraintOp::Ne);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto Prog = parseOk(".decl a(x:number)\n.decl b(x:number)\n"
                      "a(x + 2 * 3) :- b(x).");
  const Argument &Head = *Prog->Clauses[0]->getHead().getArgs()[0];
  // x + (2 * 3), not (x + 2) * 3.
  EXPECT_EQ(Head.toString(), "(x + (2 * 3))");
}

TEST(ParserTest, PowerIsRightAssociative) {
  auto Prog = parseOk(".decl a(x:number)\n.decl b(x:number)\n"
                      "a(x ^ 2 ^ 3) :- b(x).");
  EXPECT_EQ(Prog->Clauses[0]->getHead().getArgs()[0]->toString(),
            "(x ^ (2 ^ 3))");
}

TEST(ParserTest, WordOperators) {
  auto Prog = parseOk(".decl a(x:number)\n.decl b(x:number)\n"
                      "a(x band 3 bor 1) :- b(x).");
  // band binds tighter than bor.
  EXPECT_EQ(Prog->Clauses[0]->getHead().getArgs()[0]->toString(),
            "((x band 3) bor 1)");
}

TEST(ParserTest, UnaryMinusFoldsIntoLiterals) {
  auto Prog = parseOk(".decl a(x:number)\na(-5).");
  const Argument &Arg = *Prog->Clauses[0]->getHead().getArgs()[0];
  ASSERT_EQ(Arg.getKind(), Argument::Kind::NumberConstant);
  EXPECT_EQ(static_cast<const NumberConstant &>(Arg).getValue(), -5);
}

TEST(ParserTest, NamedFunctors) {
  auto Prog = parseOk(
      ".decl a(s:symbol)\n.decl b(s:symbol)\n"
      "a(cat(s, \"x\")) :- b(s), strlen(s) > 2.");
  const Argument &Head = *Prog->Clauses[0]->getHead().getArgs()[0];
  ASSERT_EQ(Head.getKind(), Argument::Kind::Functor);
  EXPECT_EQ(static_cast<const Functor &>(Head).getOp(), FunctorOp::Cat);
}

TEST(ParserTest, MinMaxAsFunctorsAndAggregates) {
  // With '(': binary functor. Without: aggregate.
  auto Prog = parseOk(".decl a(x:number)\n.decl b(x:number)\n"
                      "a(min(x, 3)) :- b(x).\n"
                      "a(m) :- b(_), m = min y : { b(y) }.");
  const Argument &F = *Prog->Clauses[0]->getHead().getArgs()[0];
  ASSERT_EQ(F.getKind(), Argument::Kind::Functor);
  EXPECT_EQ(static_cast<const Functor &>(F).getOp(), FunctorOp::Min);

  const auto &Body = Prog->Clauses[1]->getBody();
  const auto &Eq = static_cast<const Constraint &>(*Body[1]);
  ASSERT_EQ(Eq.getRhs().getKind(), Argument::Kind::Aggregator);
  EXPECT_EQ(static_cast<const Aggregator &>(Eq.getRhs()).getOp(),
            AggregateOp::Min);
}

TEST(ParserTest, CountAggregate) {
  auto Prog = parseOk(".decl e(a:number, b:number)\n.decl c(n:number)\n"
                      "c(n) :- n = count : { e(_, _) }.");
  const auto &Eq =
      static_cast<const Constraint &>(*Prog->Clauses[0]->getBody()[0]);
  const auto &Agg = static_cast<const Aggregator &>(Eq.getRhs());
  EXPECT_EQ(Agg.getOp(), AggregateOp::Count);
  EXPECT_EQ(Agg.getTarget(), nullptr);
  EXPECT_EQ(Agg.getBody().size(), 1u);
}

TEST(ParserTest, CounterArgument) {
  auto Prog = parseOk(".decl a(x:number, y:number)\n.decl b(x:number)\n"
                      "a($, x) :- b(x).");
  EXPECT_EQ(Prog->Clauses[0]->getHead().getArgs()[0]->getKind(),
            Argument::Kind::Counter);
}

TEST(ParserTest, ErrorUndeclaredIoTarget) {
  ParseResult Result = parseProgram(".input nosuch");
  ASSERT_FALSE(Result.succeeded());
  EXPECT_NE(Result.Errors[0].find("undeclared"), std::string::npos);
}

TEST(ParserTest, ErrorMissingDot) {
  ParseResult Result =
      parseProgram(".decl a(x:number)\na(1)\na(2).");
  EXPECT_FALSE(Result.succeeded());
}

TEST(ParserTest, ErrorEqrelArity) {
  ParseResult Result = parseProgram(".decl e(a:number) eqrel");
  ASSERT_FALSE(Result.succeeded());
  EXPECT_NE(Result.Errors[0].find("binary"), std::string::npos);
}

TEST(ParserTest, ErrorArityLimit) {
  std::string Decl = ".decl wide(";
  for (int I = 0; I < 17; ++I) {
    if (I)
      Decl += ", ";
    Decl += "a" + std::to_string(I) + ":number";
  }
  Decl += ")";
  ParseResult Result = parseProgram(Decl);
  ASSERT_FALSE(Result.succeeded());
  EXPECT_NE(Result.Errors[0].find("maximum supported arity"),
            std::string::npos);
}

TEST(ParserTest, ErrorRedefinition) {
  ParseResult Result =
      parseProgram(".decl a(x:number)\n.decl a(y:number)");
  ASSERT_FALSE(Result.succeeded());
  EXPECT_NE(Result.Errors[0].find("redefinition"), std::string::npos);
}

TEST(ParserTest, RecoveryProducesMultipleErrors) {
  ParseResult Result = parseProgram(".decl a(x:number)\n"
                                    "a( :- .\n"
                                    "a(1)\n"
                                    ".decl a(x:number)");
  EXPECT_GE(Result.Errors.size(), 2u);
}

TEST(ParserTest, ClauseRoundTripsThroughToString) {
  const std::string Text =
      "unsafe(y) :- unsafe(x), edge(x, y), !protect(y).";
  auto Prog = parseOk(".decl unsafe(a:number)\n"
                      ".decl edge(a:number, b:number)\n"
                      ".decl protect(a:number)\n" +
                      Text);
  EXPECT_EQ(Prog->Clauses[0]->toString(), Text);
}

} // namespace
