//===- tests/ast/SemanticTest.cpp - Semantic analysis tests --------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "ast/SemanticAnalysis.h"

#include "ast/Parser.h"

#include <gtest/gtest.h>

using namespace stird;
using namespace stird::ast;

namespace {

SemanticInfo analyzeSource(const std::string &Source,
                           std::unique_ptr<Program> &ProgOut) {
  ParseResult Result = parseProgram(Source);
  EXPECT_TRUE(Result.succeeded())
      << (Result.Errors.empty() ? "" : Result.Errors[0]);
  ProgOut = std::move(Result.Prog);
  return analyze(*ProgOut);
}

SemanticInfo analyzeSource(const std::string &Source) {
  std::unique_ptr<Program> Prog;
  return analyzeSource(Source, Prog);
}

bool hasError(const SemanticInfo &Info, const std::string &Needle) {
  for (const auto &Message : Info.Errors)
    if (Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

TEST(SemanticTest, AcceptsWellTypedProgram) {
  SemanticInfo Info = analyzeSource(
      ".decl e(a:number, b:number)\n.decl p(a:number, b:number)\n"
      "p(x, y) :- e(x, y).\np(x, z) :- p(x, y), e(y, z).");
  EXPECT_TRUE(Info.succeeded())
      << (Info.Errors.empty() ? "" : Info.Errors[0]);
}

TEST(SemanticTest, UndeclaredRelation) {
  SemanticInfo Info = analyzeSource(".decl a(x:number)\na(x) :- nope(x).");
  EXPECT_TRUE(hasError(Info, "undeclared relation 'nope'"));
}

TEST(SemanticTest, ArityMismatch) {
  SemanticInfo Info =
      analyzeSource(".decl a(x:number)\n.decl b(x:number, y:number)\n"
                    "a(x) :- b(x).");
  EXPECT_TRUE(hasError(Info, "arity mismatch"));
}

TEST(SemanticTest, TypeMismatchAcrossVariableUses) {
  SemanticInfo Info = analyzeSource(
      ".decl n(x:number)\n.decl s(x:symbol)\n.decl r(x:number)\n"
      "r(x) :- n(x), s(x).");
  EXPECT_TRUE(hasError(Info, "used as both"));
}

TEST(SemanticTest, LiteralTypeChecking) {
  SemanticInfo Info =
      analyzeSource(".decl s(x:symbol)\ns(42) :- s(_).");
  EXPECT_TRUE(hasError(Info, "number literal"));

  SemanticInfo Info2 =
      analyzeSource(".decl n(x:number)\nn(\"text\") :- n(_).");
  EXPECT_TRUE(hasError(Info2, "string literal"));

  SemanticInfo Info3 =
      analyzeSource(".decl f(x:float)\n.decl n(x:number)\n"
                    "n(x) :- f(x).");
  EXPECT_FALSE(Info3.succeeded());
}

TEST(SemanticTest, FactsMustBeConstant) {
  SemanticInfo Info = analyzeSource(".decl a(x:number)\na(x).");
  EXPECT_TRUE(hasError(Info, "constant"));
}

TEST(SemanticTest, UngroundedHeadVariable) {
  SemanticInfo Info =
      analyzeSource(".decl a(x:number)\n.decl b(x:number)\n"
                    "a(y) :- b(x).");
  EXPECT_TRUE(hasError(Info, "ungrounded variable 'y'"));
}

TEST(SemanticTest, UngroundedNegationVariable) {
  SemanticInfo Info =
      analyzeSource(".decl a(x:number)\n.decl b(x:number)\n"
                    ".decl c(x:number)\n"
                    "a(x) :- b(x), !c(y).");
  EXPECT_TRUE(hasError(Info, "ungrounded variable 'y'"));
}

TEST(SemanticTest, EqualityGroundsVariables) {
  SemanticInfo Info =
      analyzeSource(".decl a(x:number)\n.decl b(x:number)\n"
                    "a(y) :- b(x), y = x + 1.");
  EXPECT_TRUE(Info.succeeded())
      << (Info.Errors.empty() ? "" : Info.Errors[0]);
}

TEST(SemanticTest, ChainedEqualitiesGroundTransitively) {
  SemanticInfo Info =
      analyzeSource(".decl a(x:number)\n.decl b(x:number)\n"
                    "a(z) :- b(x), z = y * 2, y = x + 1.");
  EXPECT_TRUE(Info.succeeded())
      << (Info.Errors.empty() ? "" : Info.Errors[0]);
}

TEST(SemanticTest, CyclicEqualityIsUngrounded) {
  SemanticInfo Info =
      analyzeSource(".decl a(x:number)\n.decl b(x:number)\n"
                    "a(y) :- b(_), y = z, z = y.");
  EXPECT_TRUE(hasError(Info, "ungrounded"));
}

TEST(SemanticTest, StratificationOrdersDependencies) {
  std::unique_ptr<Program> Prog;
  SemanticInfo Info = analyzeSource(
      ".decl base(x:number)\n.decl mid(x:number)\n.decl top(x:number)\n"
      "mid(x) :- base(x).\ntop(x) :- mid(x).",
      Prog);
  ASSERT_TRUE(Info.succeeded());
  EXPECT_LT(Info.StratumOf.at("base"), Info.StratumOf.at("mid"));
  EXPECT_LT(Info.StratumOf.at("mid"), Info.StratumOf.at("top"));
}

TEST(SemanticTest, MutualRecursionSharesStratum) {
  SemanticInfo Info = analyzeSource(
      ".decl a(x:number)\n.decl b(x:number)\n.decl e(x:number, y:number)\n"
      "a(y) :- b(x), e(x, y).\nb(y) :- a(x), e(x, y).");
  ASSERT_TRUE(Info.succeeded());
  EXPECT_EQ(Info.StratumOf.at("a"), Info.StratumOf.at("b"));
  EXPECT_TRUE(Info.Strata[Info.StratumOf.at("a")].Recursive);
}

TEST(SemanticTest, SelfRecursionMarksRecursive) {
  SemanticInfo Info = analyzeSource(
      ".decl e(x:number, y:number)\n.decl p(x:number, y:number)\n"
      "p(x, y) :- e(x, y).\np(x, z) :- p(x, y), e(y, z).");
  ASSERT_TRUE(Info.succeeded());
  EXPECT_TRUE(Info.Strata[Info.StratumOf.at("p")].Recursive);
  EXPECT_FALSE(Info.Strata[Info.StratumOf.at("e")].Recursive);
}

TEST(SemanticTest, NegativeCycleRejected) {
  SemanticInfo Info =
      analyzeSource(".decl a(x:number)\n.decl b(x:number)\n"
                    "a(x) :- b(x), !a(x).");
  EXPECT_TRUE(hasError(Info, "not stratifiable"));
}

TEST(SemanticTest, MutualNegativeCycleRejected) {
  SemanticInfo Info =
      analyzeSource(".decl a(x:number)\n.decl b(x:number)\n"
                    ".decl s(x:number)\n"
                    "a(x) :- s(x), !b(x).\nb(x) :- s(x), !a(x).");
  EXPECT_TRUE(hasError(Info, "not stratifiable"));
}

TEST(SemanticTest, NegationAcrossStrataAllowed) {
  SemanticInfo Info =
      analyzeSource(".decl a(x:number)\n.decl b(x:number)\n"
                    ".decl s(x:number)\n"
                    "a(x) :- s(x).\nb(x) :- s(x), !a(x).");
  EXPECT_TRUE(Info.succeeded())
      << (Info.Errors.empty() ? "" : Info.Errors[0]);
  EXPECT_LT(Info.StratumOf.at("a"), Info.StratumOf.at("b"));
}

TEST(SemanticTest, AggregateActsLikeNegationForStratification) {
  SemanticInfo Info = analyzeSource(
      ".decl a(x:number)\n.decl c(x:number)\n"
      "c(n) :- n = count : { a(_) }.\na(x) :- c(x).");
  EXPECT_TRUE(hasError(Info, "not stratifiable"));
}

TEST(SemanticTest, AggregateOverLowerStratumAllowed) {
  SemanticInfo Info = analyzeSource(
      ".decl a(x:number)\n.decl c(x:number)\n"
      "a(1).\nc(n) :- n = count : { a(_) }.");
  EXPECT_TRUE(Info.succeeded())
      << (Info.Errors.empty() ? "" : Info.Errors[0]);
}

TEST(SemanticTest, FunctorTypeRules) {
  // cat over numbers is a type error.
  SemanticInfo Info =
      analyzeSource(".decl n(x:number)\nn(x) :- n(y), x = cat(y, y).");
  EXPECT_FALSE(Info.succeeded());

  // strlen produces a number.
  SemanticInfo Info2 = analyzeSource(
      ".decl s(x:symbol)\n.decl n(x:number)\n"
      "n(strlen(x)) :- s(x).");
  EXPECT_TRUE(Info2.succeeded())
      << (Info2.Errors.empty() ? "" : Info2.Errors[0]);

  // '%' on float is rejected.
  SemanticInfo Info3 = analyzeSource(
      ".decl f(x:float)\nf(x % 2.0) :- f(x).");
  EXPECT_TRUE(hasError(Info3, "not defined on float"));
}

TEST(SemanticTest, ClausesGroupedByHead) {
  std::unique_ptr<Program> Prog;
  SemanticInfo Info = analyzeSource(
      ".decl a(x:number)\n.decl b(x:number)\n"
      "a(1).\na(2).\nb(x) :- a(x).",
      Prog);
  ASSERT_TRUE(Info.succeeded());
  EXPECT_EQ(Info.ClausesOf.at("a").size(), 2u);
  EXPECT_EQ(Info.ClausesOf.at("b").size(), 1u);
}

TEST(SemanticTest, ExprTypesRecorded) {
  std::unique_ptr<Program> Prog;
  SemanticInfo Info = analyzeSource(
      ".decl f(x:float)\n.decl g(x:float)\n"
      "g(x + 1.5) :- f(x).",
      Prog);
  ASSERT_TRUE(Info.succeeded());
  const Argument &Head = *Prog->Clauses[0]->getHead().getArgs()[0];
  EXPECT_EQ(Info.typeOf(&Head), TypeKind::Float);
}

} // namespace
