//===- tests/ast/FuzzParserTest.cpp - Parser robustness sweeps -----------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight fuzzing of the frontend: random token soups, truncations of
/// valid programs and byte mutations must produce diagnostics, never
/// crashes or accepted-garbage programs that later break translation.
///
//===----------------------------------------------------------------------===//

#include "ast/Parser.h"

#include "ast/SemanticAnalysis.h"
#include "translate/AstToRam.h"

#include <gtest/gtest.h>

#include <random>

using namespace stird;
using namespace stird::ast;

namespace {

/// The full pipeline must terminate without crashing on any input; if all
/// stages succeed the result must be a usable program.
void pipelineSurvives(const std::string &Source) {
  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.succeeded())
    return;
  SemanticInfo Info = analyze(*Parsed.Prog);
  if (!Info.succeeded())
    return;
  SymbolTable Symbols;
  auto Translated = translate::translateToRam(*Parsed.Prog, Info, Symbols);
  if (Translated.succeeded()) {
    EXPECT_NE(Translated.Prog, nullptr);
  }
}

class RandomTokenSoupTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomTokenSoupTest, NeverCrashes) {
  static const std::vector<std::string> Tokens = {
      ".decl", ".input",  ".output", "(",      ")",     ",",    ":",
      ":-",    ".",       "!",       "=",      "!=",    "<",    "<=",
      "x",     "y",       "rel",     "number", "symbol", "42",  "3.5",
      "7u",    "\"str\"", "_",       "$",      "+",      "-",   "*",
      "count", "sum",     "{",       "}",      "band",   "eqrel"};
  std::mt19937 Rng(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<std::size_t> Pick(0, Tokens.size() - 1);
  std::uniform_int_distribution<int> Len(1, 120);
  for (int Trial = 0; Trial < 50; ++Trial) {
    std::string Source;
    const int N = Len(Rng);
    for (int I = 0; I < N; ++I) {
      Source += Tokens[Pick(Rng)];
      Source += (Rng() % 4 == 0) ? "\n" : " ";
    }
    pipelineSurvives(Source);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomTokenSoupTest,
                         ::testing::Range(0, 8));

TEST(FuzzParserTest, TruncationsOfValidProgramNeverCrash) {
  const std::string Valid =
      ".decl edge(a:number, b:number)\n"
      ".decl path(a:number, b:number)\n"
      ".input edge\n.output path\n"
      "path(x, y) :- edge(x, y).\n"
      "path(x, z) :- path(x, y), edge(y, z), x != z, x + 1 > 0.\n"
      ".decl c(n:number)\nc(n) :- n = count : { edge(_, _) }.\n";
  for (std::size_t Len = 0; Len <= Valid.size(); ++Len)
    pipelineSurvives(Valid.substr(0, Len));
}

TEST(FuzzParserTest, ByteMutationsNeverCrash) {
  const std::string Valid =
      ".decl e(a:number, b:symbol)\n"
      "e(1, \"x\").\n"
      ".decl r(a:number)\n"
      "r(x + 2) :- e(x, s), strlen(s) > 0, !e(x, \"no\").\n";
  std::mt19937 Rng(99);
  std::uniform_int_distribution<std::size_t> Pos(0, Valid.size() - 1);
  std::uniform_int_distribution<int> Byte(32, 126);
  for (int Trial = 0; Trial < 300; ++Trial) {
    std::string Mutated = Valid;
    Mutated[Pos(Rng)] = static_cast<char>(Byte(Rng));
    pipelineSurvives(Mutated);
  }
}

TEST(FuzzParserTest, PathologicalNestingParses) {
  // Deep parentheses must not blow the stack unreasonably.
  std::string Source = ".decl a(x:number)\n.decl b(x:number)\nb(";
  for (int I = 0; I < 200; ++I)
    Source += "(";
  Source += "x";
  for (int I = 0; I < 200; ++I)
    Source += ")";
  Source += ") :- a(x).";
  pipelineSurvives(Source);
}

TEST(FuzzParserTest, LongClauseBodies) {
  std::string Source = ".decl e(a:number, b:number)\n.decl r(x:number)\n"
                       "r(x0) :- e(x0, x1)";
  for (int I = 1; I < 120; ++I)
    Source += ", e(x" + std::to_string(I) + ", x" + std::to_string(I + 1) +
              ")";
  Source += ".";
  ParseResult Parsed = parseProgram(Source);
  ASSERT_TRUE(Parsed.succeeded());
  EXPECT_EQ(Parsed.Prog->Clauses[0]->getBody().size(), 120u);
  pipelineSurvives(Source);
}

} // namespace
