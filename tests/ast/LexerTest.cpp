//===- tests/ast/LexerTest.cpp - Tokenizer tests -------------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "ast/Lexer.h"

#include <gtest/gtest.h>

using namespace stird;
using namespace stird::ast;

namespace {

std::vector<Token> lexOk(const std::string &Source) {
  std::vector<std::string> Errors;
  auto Tokens = lex(Source, Errors);
  EXPECT_TRUE(Errors.empty()) << (Errors.empty() ? "" : Errors[0]);
  return Tokens;
}

std::vector<TokenKind> kinds(const std::vector<Token> &Tokens) {
  std::vector<TokenKind> Result;
  for (const auto &Tok : Tokens)
    Result.push_back(Tok.Kind);
  return Result;
}

TEST(LexerTest, SimpleAtom) {
  auto Tokens = lexOk("edge(x, y).");
  EXPECT_EQ(kinds(Tokens),
            (std::vector<TokenKind>{TokenKind::Ident, TokenKind::LParen,
                                    TokenKind::Ident, TokenKind::Comma,
                                    TokenKind::Ident, TokenKind::RParen,
                                    TokenKind::Dot, TokenKind::Eof}));
  EXPECT_EQ(Tokens[0].Text, "edge");
}

TEST(LexerTest, DirectiveVersusDot) {
  auto Tokens = lexOk(".decl a(x:number)\na(1).");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Directive);
  EXPECT_EQ(Tokens[0].Text, "decl");
  // The clause terminator is a plain Dot.
  bool SawDot = false;
  for (const auto &Tok : Tokens)
    SawDot |= Tok.Kind == TokenKind::Dot;
  EXPECT_TRUE(SawDot);
}

TEST(LexerTest, NumberLiterals) {
  auto Tokens = lexOk("42 0x1F 7u 3.5");
  ASSERT_EQ(Tokens.size(), 5u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Number);
  EXPECT_EQ(Tokens[0].Number, 42);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Number);
  EXPECT_EQ(Tokens[1].Number, 31);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Unsigned);
  EXPECT_EQ(Tokens[2].UnsignedValue, 7u);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::Float);
  EXPECT_FLOAT_EQ(Tokens[3].FloatValue, 3.5f);
}

TEST(LexerTest, StringEscapes) {
  auto Tokens = lexOk(R"("a\tb\nc\"d\\e")");
  ASSERT_EQ(Tokens[0].Kind, TokenKind::String);
  EXPECT_EQ(Tokens[0].Text, "a\tb\nc\"d\\e");
}

TEST(LexerTest, Operators) {
  auto Tokens = lexOk(":- != <= >= < > = ! + - * / % ^ $ _ :");
  EXPECT_EQ(kinds(Tokens),
            (std::vector<TokenKind>{
                TokenKind::If, TokenKind::Ne, TokenKind::Le, TokenKind::Ge,
                TokenKind::Lt, TokenKind::Gt, TokenKind::Eq,
                TokenKind::Bang, TokenKind::Plus, TokenKind::Minus,
                TokenKind::Star, TokenKind::Slash, TokenKind::Percent,
                TokenKind::Caret, TokenKind::Dollar,
                TokenKind::Underscore, TokenKind::Colon, TokenKind::Eof}));
}

TEST(LexerTest, CommentsAreSkipped) {
  auto Tokens = lexOk("a // line comment\n/* block\ncomment */ b");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(LexerTest, UnderscoreInsideIdentifier) {
  auto Tokens = lexOk("foo_bar _x _");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Ident);
  EXPECT_EQ(Tokens[0].Text, "foo_bar");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Ident);
  EXPECT_EQ(Tokens[1].Text, "_x");
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Underscore);
}

TEST(LexerTest, LineNumbersTracked) {
  auto Tokens = lexOk("a\nb\n  c");
  EXPECT_EQ(Tokens[0].Loc.Line, 1);
  EXPECT_EQ(Tokens[1].Loc.Line, 2);
  EXPECT_EQ(Tokens[2].Loc.Line, 3);
  EXPECT_EQ(Tokens[2].Loc.Col, 3);
}

TEST(LexerTest, ErrorsReported) {
  std::vector<std::string> Errors;
  lex("a @ b", Errors);
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_NE(Errors[0].find("unexpected character"), std::string::npos);

  Errors.clear();
  lex("\"unterminated", Errors);
  EXPECT_FALSE(Errors.empty());

  Errors.clear();
  lex("/* never closed", Errors);
  EXPECT_FALSE(Errors.empty());
}

} // namespace
