//===- tools/ToolOptions.h - Shared tool flag registrations -----*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine-facing flags shared by stird and stird-serve (-F/-D/-j/
/// --backend and the paper's ablation toggles), registered onto a
/// util::Args parser so every tool spells and validates them identically.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_TOOLS_TOOLOPTIONS_H
#define STIRD_TOOLS_TOOLOPTIONS_H

#include "core/Program.h"
#include "interp/Engine.h"
#include "translate/Sips.h"
#include "util/Args.h"

#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

namespace stird::tools {

/// `-j 0` / `-j auto`: one thread per hardware thread. The standard allows
/// hardware_concurrency() to report 0 (unknown); fall back to 1.
inline std::size_t hardwareThreads() {
  const unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : static_cast<std::size_t>(N);
}

inline const char *backendName(interp::Backend B) {
  switch (B) {
  case interp::Backend::StaticLambda:
    return "sti";
  case interp::Backend::StaticPlain:
    return "sti-plain";
  case interp::Backend::DynamicAdapter:
    return "dynamic";
  case interp::Backend::Legacy:
    return "legacy";
  }
  return "unknown";
}

/// A sink that stores the raw value into \p Target.
inline std::function<std::string(const std::string &)>
pathSink(std::string &Target) {
  return [&Target](const std::string &Value) {
    Target = Value;
    return std::string();
  };
}

/// A sink accepting a non-negative thread count or "auto" (0 and "auto"
/// mean every hardware thread, like make -j).
inline std::function<std::string(const std::string &)>
threadsSink(std::size_t &Target) {
  return [&Target](const std::string &Value) -> std::string {
    if (Value == "auto") {
      Target = hardwareThreads();
      return "";
    }
    char *End = nullptr;
    const long N = std::strtol(Value.c_str(), &End, 10);
    if (End == Value.c_str() || *End != '\0' || N < 0)
      return "invalid thread count '" + Value +
             "' (expected a non-negative integer or 'auto')";
    Target = N == 0 ? hardwareThreads() : static_cast<std::size_t>(N);
    return "";
  };
}

/// A sink accepting a positive tuple count for --morsel-size.
inline std::function<std::string(const std::string &)>
morselSink(std::size_t &Target) {
  return [&Target](const std::string &Value) -> std::string {
    char *End = nullptr;
    const long N = std::strtol(Value.c_str(), &End, 10);
    if (End == Value.c_str() || *End != '\0' || N < 1)
      return "invalid morsel size '" + Value +
             "' (expected a positive integer)";
    Target = static_cast<std::size_t>(N);
    return "";
  };
}

/// A sink resolving a backend name.
inline std::function<std::string(const std::string &)>
backendSink(interp::Backend &Target) {
  return [&Target](const std::string &Name) -> std::string {
    if (Name == "sti")
      Target = interp::Backend::StaticLambda;
    else if (Name == "sti-plain")
      Target = interp::Backend::StaticPlain;
    else if (Name == "dynamic")
      Target = interp::Backend::DynamicAdapter;
    else if (Name == "legacy")
      Target = interp::Backend::Legacy;
    else
      return "unknown backend '" + Name + "'";
    return "";
  };
}

/// Registers the engine-configuration flags shared by the evaluating tools.
inline void addEngineOptions(util::Args &Args, interp::EngineOptions &Options,
                             bool WithIoDirs = true) {
  if (WithIoDirs) {
    Args.option({"-F", "--facts"}, "dir", "fact-file directory (default .)",
                pathSink(Options.FactDir));
    Args.option({"-D", "--output"}, "dir", "output directory (default .)",
                pathSink(Options.OutputDir));
  }
  Args.option({"-j", "--jobs"}, "n",
              "evaluation threads (0 or 'auto': every hardware thread)",
              threadsSink(Options.NumThreads));
  Args.option({"--morsel-size"}, "n",
              "tuples per work-stealing morsel (default 256)",
              morselSink(Options.MorselSize));
  Args.option({"--backend"}, "name", "sti | sti-plain | dynamic | legacy",
              backendSink(Options.TheBackend));
  Args.flag({"--no-super"}, "disable super-instructions (Section 4.4)",
            [&Options] { Options.SuperInstructions = false; });
  Args.flag({"--no-reorder"}, "disable static tuple reordering (Section 4.2)",
            [&Options] { Options.StaticReordering = false; });
  Args.flag({"--fuse-conditions"},
            "enable fused-condition super-instructions (Section 5.2)",
            [&Options] { Options.FuseConditions = true; });
}

/// Registers the compile-time planning flags shared by stird and
/// stird-serve. \p SipsExplicit records whether --sips appeared at all, so
/// resolveCompileOptions() can make --feedback imply --sips=profile without
/// overriding an explicit choice.
inline void addCompileOptions(util::Args &Args, core::CompileOptions &Options,
                              bool &SipsExplicit) {
  Args.option({"--sips"}, "strategy",
              "rule-body join order: source | max-bound | profile",
              [&Options, &SipsExplicit](const std::string &Name) -> std::string {
                std::optional<translate::SipsStrategy> Strategy =
                    translate::parseSipsStrategy(Name);
                if (!Strategy)
                  return "unknown sips strategy '" + Name +
                         "' (expected source, max-bound or profile)";
                Options.Sips = *Strategy;
                SipsExplicit = true;
                return "";
              });
  Args.option({"--feedback"}, "profile.json",
              "stird-profile-v1/-v2 document seeding the profile strategy "
              "(implies --sips=profile; v2 also drives per-relation "
              "substrate selection)",
              pathSink(Options.FeedbackPath));
  Args.option({"--substrate"}, "rel:kind,...",
              "force per-relation substrates (kind: btree | brie | art); "
              "inapplicable entries warn and are ignored",
              [&Options](const std::string &Value) -> std::string {
                std::size_t Start = 0;
                while (Start <= Value.size()) {
                  std::size_t Comma = Value.find(',', Start);
                  if (Comma == std::string::npos)
                    Comma = Value.size();
                  const std::string Entry = Value.substr(Start, Comma - Start);
                  Start = Comma + 1;
                  if (Entry.empty())
                    continue;
                  const std::size_t Colon = Entry.find(':');
                  if (Colon == std::string::npos || Colon == 0 ||
                      Colon + 1 == Entry.size())
                    return "invalid --substrate entry '" + Entry +
                           "' (expected rel:kind)";
                  Options.SubstrateOverrides[Entry.substr(0, Colon)] =
                      Entry.substr(Colon + 1);
                }
                return "";
              });
  Args.flag({"--no-substrate-feedback"},
            "disable feedback-driven per-relation substrate selection",
            [&Options] { Options.SubstrateFromFeedback = false; });
}

/// Applies the flag-interaction defaults after parsing.
inline void resolveCompileOptions(core::CompileOptions &Options,
                                  bool SipsExplicit) {
  if (!SipsExplicit && !Options.FeedbackPath.empty())
    Options.Sips = translate::SipsStrategy::Profile;
}

} // namespace stird::tools

#endif // STIRD_TOOLS_TOOLOPTIONS_H
