//===- tools/stird-serve.cpp - Resident serving daemon ------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// stird-serve: compiles a Datalog program once, keeps its de-specialized
/// relations resident, and serves stird-wire-v1 requests (load / query /
/// stats / shutdown) over a Unix or TCP socket. See docs/wire-protocol.md.
///
//===----------------------------------------------------------------------===//

#include "ToolOptions.h"
#include "srv/Server.h"
#include "srv/Session.h"
#include "util/Args.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace stird;

int main(int Argc, char **Argv) {
  std::string ProgramPath;
  srv::SessionOptions Session;
  srv::ServerOptions Server;
  std::string PortText;

  util::Args Args("stird-serve",
                  "serve a resident Datalog program over a socket");
  Args.positional("program.dl", tools::pathSink(ProgramPath));
  Args.option({"--socket"}, "path", "listen on a Unix socket at this path",
              tools::pathSink(Server.UnixPath));
  Args.option({"--host"}, "addr", "TCP listen address (default 127.0.0.1)",
              tools::pathSink(Server.Host));
  Args.option({"--port"}, "n", "TCP port (0 lets the kernel pick)",
              [&](const std::string &Value) -> std::string {
                char *End = nullptr;
                const long N = std::strtol(Value.c_str(), &End, 10);
                if (End == Value.c_str() || *End != '\0' || N < 0 ||
                    N > 65535)
                  return "invalid port '" + Value + "'";
                Server.Port = static_cast<int>(N);
                PortText = Value;
                return "";
              });
  Args.flag({"--run-io"},
            "execute the program's .input/.output directives at bootstrap",
            [&Session] { Session.RunIo = true; });
  tools::addEngineOptions(Args, Session.Engine);
  bool SipsExplicit = false;
  tools::addCompileOptions(Args, Session.Compile, SipsExplicit);
  Args.parseOrExit(Argc, Argv);
  tools::resolveCompileOptions(Session.Compile, SipsExplicit);

  if (Server.UnixPath.empty() && PortText.empty()) {
    std::fprintf(stderr,
                 "stird-serve: pick a listen endpoint: --socket or --port\n");
    return 1;
  }

  std::vector<std::string> Errors;
  std::unique_ptr<srv::EngineSession> Sess =
      srv::EngineSession::fromFile(ProgramPath, Session, &Errors);
  if (!Sess) {
    for (const std::string &Message : Errors)
      std::fprintf(stderr, "error: %s\n", Message.c_str());
    return 1;
  }

  srv::Server Srv(*Sess, Server);
  std::string Error;
  if (!Srv.start(&Error)) {
    std::fprintf(stderr, "stird-serve: %s\n", Error.c_str());
    return 1;
  }
  if (!Server.UnixPath.empty())
    std::fprintf(stderr, "stird-serve: listening on %s (%s)\n",
                 Server.UnixPath.c_str(),
                 Sess->isIncremental() ? "incremental" : "re-evaluating");
  else
    std::fprintf(stderr, "stird-serve: listening on %s:%d (%s)\n",
                 Server.Host.c_str(), Srv.boundPort(),
                 Sess->isIncremental() ? "incremental" : "re-evaluating");
  std::fflush(stderr);

  Srv.serve();
  std::fprintf(stderr, "stird-serve: shut down\n");
  return 0;
}
