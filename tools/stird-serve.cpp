//===- tools/stird-serve.cpp - Resident serving daemon ------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// stird-serve: compiles one or more Datalog programs once, keeps their
/// de-specialized relations resident, and serves stird-wire-v2 requests
/// (load / query / stats / shutdown) over a Unix or TCP socket through an
/// epoll event loop. The positional program becomes the "default" tenant;
/// --tenant name=path hosts additional sessions behind the same endpoint,
/// addressed by the request's "tenant" member. See docs/wire-protocol.md.
///
//===----------------------------------------------------------------------===//

#include "ToolOptions.h"
#include "srv/Server.h"
#include "srv/Session.h"
#include "util/Args.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

using namespace stird;

static std::string parseCount(const std::string &Value, std::size_t &Out) {
  char *End = nullptr;
  const long long N = std::strtoll(Value.c_str(), &End, 10);
  if (End == Value.c_str() || *End != '\0' || N <= 0)
    return "expected a positive count, got '" + Value + "'";
  Out = static_cast<std::size_t>(N);
  return "";
}

int main(int Argc, char **Argv) {
  std::string ProgramPath;
  srv::SessionOptions Session;
  srv::ServerOptions Server;
  std::string PortText;
  std::vector<std::pair<std::string, std::string>> TenantSpecs;

  util::Args Args("stird-serve",
                  "serve resident Datalog programs over a socket");
  Args.positional("program.dl", tools::pathSink(ProgramPath));
  Args.option({"--socket"}, "path", "listen on a Unix socket at this path",
              tools::pathSink(Server.UnixPath));
  Args.option({"--host"}, "addr", "TCP listen address (default 127.0.0.1)",
              tools::pathSink(Server.Host));
  Args.option({"--port"}, "n", "TCP port (0 lets the kernel pick)",
              [&](const std::string &Value) -> std::string {
                char *End = nullptr;
                const long N = std::strtol(Value.c_str(), &End, 10);
                if (End == Value.c_str() || *End != '\0' || N < 0 ||
                    N > 65535)
                  return "invalid port '" + Value + "'";
                Server.Port = static_cast<int>(N);
                PortText = Value;
                return "";
              });
  Args.option({"--tenant"}, "name=program.dl",
              "host an additional session, addressed by request \"tenant\"",
              [&TenantSpecs](const std::string &Value) -> std::string {
                const std::size_t Eq = Value.find('=');
                if (Eq == 0 || Eq == std::string::npos ||
                    Eq + 1 == Value.size())
                  return "expected name=program.dl, got '" + Value + "'";
                TenantSpecs.emplace_back(Value.substr(0, Eq),
                                         Value.substr(Eq + 1));
                return "";
              });
  Args.option({"--backlog"}, "n", "listen(2) backlog (default SOMAXCONN)",
              [&Server](const std::string &Value) -> std::string {
                std::size_t N = 0;
                const std::string E = parseCount(Value, N);
                if (E.empty())
                  Server.Backlog = static_cast<int>(N);
                return E;
              });
  Args.option({"--max-connections"}, "n",
              "close connections beyond this many (default 8192)",
              [&Server](const std::string &Value) {
                return parseCount(Value, Server.MaxConnections);
              });
  Args.option({"--max-inflight"}, "n",
              "total in-flight request budget before admission control "
              "answers \"overloaded\" (default 1024)",
              [&Server](const std::string &Value) {
                return parseCount(Value, Server.MaxInFlightTotal);
              });
  Args.option({"--max-inflight-per-connection"}, "n",
              "pipelining window per connection (default 32)",
              [&Server](const std::string &Value) {
                return parseCount(Value, Server.MaxInFlightPerConnection);
              });
  Args.option({"--pool-threads"}, "n",
              "request-execution pool size (default: session threads)",
              [&Server](const std::string &Value) {
                return parseCount(Value, Server.PoolThreads);
              });
  Args.option({"--metrics-port"}, "n",
              "serve Prometheus text metrics over HTTP on this TCP port "
              "(0 lets the kernel pick)",
              [&](const std::string &Value) -> std::string {
                char *End = nullptr;
                const long N = std::strtol(Value.c_str(), &End, 10);
                if (End == Value.c_str() || *End != '\0' || N < 0 ||
                    N > 65535)
                  return "invalid port '" + Value + "'";
                Server.MetricsPort = static_cast<int>(N);
                return "";
              });
  Args.option({"--trace-sample"}, "n",
              "record a lifecycle trace for every nth request "
              "(see the stats \"trace\" member; 0 disables)",
              [&Server](const std::string &Value) {
                std::size_t N = 0;
                const std::string E = parseCount(Value, N);
                if (E.empty())
                  Server.TraceSampleEvery = N;
                return E;
              });
  Args.option({"--trace-out"}, "file",
              "write retained request traces as Chrome trace-event JSON "
              "at shutdown",
              tools::pathSink(Server.TraceOutPath));
  Args.option({"--slow-query-log"}, "file",
              "append a JSONL record for every request at or above "
              "--slow-query-micros",
              tools::pathSink(Server.SlowQueryLogPath));
  Args.option({"--slow-query-micros"}, "n",
              "slow-query threshold in microseconds (default 10000; 0 "
              "logs every request)",
              [&Server](const std::string &Value) -> std::string {
                char *End = nullptr;
                const long long N = std::strtoll(Value.c_str(), &End, 10);
                if (End == Value.c_str() || *End != '\0' || N < 0)
                  return "expected a non-negative count, got '" + Value +
                         "'";
                Server.SlowQueryMicros = static_cast<std::uint64_t>(N);
                return "";
              });
  Args.option({"--slow-query-log-max-bytes"}, "n",
              "rotate the slow-query log past this size (default: never)",
              [&Server](const std::string &Value) {
                std::size_t N = 0;
                const std::string E = parseCount(Value, N);
                if (E.empty())
                  Server.SlowQueryLogMaxBytes = N;
                return E;
              });
  Args.flag({"--run-io"},
            "execute the program's .input/.output directives at bootstrap",
            [&Session] { Session.RunIo = true; });
  tools::addEngineOptions(Args, Session.Engine);
  bool SipsExplicit = false;
  tools::addCompileOptions(Args, Session.Compile, SipsExplicit);
  Args.parseOrExit(Argc, Argv);
  tools::resolveCompileOptions(Session.Compile, SipsExplicit);

  if (Server.UnixPath.empty() && PortText.empty()) {
    std::fprintf(stderr,
                 "stird-serve: pick a listen endpoint: --socket or --port\n");
    return 1;
  }

  auto boot = [&Session](const std::string &Path)
      -> std::unique_ptr<srv::EngineSession> {
    std::vector<std::string> Errors;
    std::unique_ptr<srv::EngineSession> Sess =
        srv::EngineSession::fromFile(Path, Session, &Errors);
    if (!Sess)
      for (const std::string &Message : Errors)
        std::fprintf(stderr, "error: %s: %s\n", Path.c_str(),
                     Message.c_str());
    return Sess;
  };

  std::vector<std::unique_ptr<srv::EngineSession>> Sessions;
  srv::TenantRegistry Tenants;
  std::unique_ptr<srv::EngineSession> Default = boot(ProgramPath);
  if (!Default)
    return 1;
  Tenants.add("default", *Default);
  Sessions.push_back(std::move(Default));
  for (const auto &[Name, Path] : TenantSpecs) {
    if (Tenants.find(Name)) {
      std::fprintf(stderr, "stird-serve: duplicate tenant '%s'\n",
                   Name.c_str());
      return 1;
    }
    std::unique_ptr<srv::EngineSession> Sess = boot(Path);
    if (!Sess)
      return 1;
    Tenants.add(Name, *Sess);
    Sessions.push_back(std::move(Sess));
  }

  srv::Server Srv(Tenants, Server);
  std::string Error;
  if (!Srv.start(&Error)) {
    std::fprintf(stderr, "stird-serve: %s\n", Error.c_str());
    return 1;
  }
  const srv::EngineSession &Sess = *Tenants.defaultTenant()->Session;
  if (!Server.UnixPath.empty())
    std::fprintf(stderr, "stird-serve: listening on %s (%zu tenants, %s)\n",
                 Server.UnixPath.c_str(), Tenants.size(),
                 Sess.isIncremental() ? "incremental" : "re-evaluating");
  else
    std::fprintf(stderr,
                 "stird-serve: listening on %s:%d (%zu tenants, %s)\n",
                 Server.Host.c_str(), Srv.boundPort(), Tenants.size(),
                 Sess.isIncremental() ? "incremental" : "re-evaluating");
  if (Srv.metricsPort() != 0)
    std::fprintf(stderr, "stird-serve: metrics on http://%s:%d/metrics\n",
                 Server.UnixPath.empty() ? Server.Host.c_str()
                                         : "127.0.0.1",
                 Srv.metricsPort());
  std::fflush(stderr);

  Srv.serve();
  std::fprintf(stderr, "stird-serve: shut down\n");
  return 0;
}
