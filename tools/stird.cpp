//===- tools/stird.cpp - The stird command-line driver -------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Soufflé-style command-line driver:
///
///   stird program.dl [options]
///
///   -F, --facts <dir>     fact-file directory (default .)
///   -D, --output <dir>    output directory (default .)
///   -j, --jobs <n>        evaluation threads (default 1; 0 or "auto"
///                         uses every hardware thread)
///   --morsel-size <n>     tuples per work-stealing morsel (default 256;
///                         results are identical at any setting)
///   --backend <name>      sti | sti-plain | dynamic | legacy
///   --no-super            disable super-instructions (Section 4.4)
///   --no-reorder          disable static tuple reordering (Section 4.2)
///   --fuse-conditions     enable fused-condition super-instructions (5.2)
///   --sips <strategy>     rule-body join order: source | max-bound |
///                         profile (default source)
///   --feedback <file>     stird-profile-v1/-v2 JSON seeding --sips=profile
///                         (implies it); malformed or stale documents warn
///                         and fall back to max-bound; v2 access-pattern
///                         counters also drive per-relation substrate
///                         selection
///   --substrate <r:k,..>  force per-relation substrates (btree|brie|art)
///   --no-substrate-feedback
///                         disable feedback-driven substrate selection
///   --dump-ram            print the RAM program and exit
///   --profile             print the per-rule profile after the run
///   --profile=<file>      write the JSON profile document instead
///   --trace=<file>        write a Chrome trace-event timeline of the run
///   --synthesize <file>   write the synthesized C++ instead of running
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "obs/Profile.h"
#include "obs/Trace.h"
#include "synth/CppSynthesizer.h"
#include "ToolOptions.h"
#include "util/Args.h"
#include "util/Timer.h"

#include <cstdio>
#include <fstream>
#include <string>

using namespace stird;

int main(int argc, char **argv) {
  std::string ProgramPath;
  interp::EngineOptions Options;
  core::CompileOptions Compile;
  bool SipsExplicit = false;
  bool DumpRam = false;
  bool DumpTree = false;
  bool Profile = false;
  std::string ProfilePath;
  std::string TracePath;
  std::string SynthesizePath;

  util::Args Args("stird", "[options]");
  Args.positional("program.dl", tools::pathSink(ProgramPath));
  tools::addEngineOptions(Args, Options);
  tools::addCompileOptions(Args, Compile, SipsExplicit);
  Args.flag({"--dump-ram"}, "print the RAM program and exit",
            [&] { DumpRam = true; });
  Args.flag({"--dump-tree"}, "print the interpreter tree and exit",
            [&] { DumpTree = true; });
  Args.optionalValue({"--profile"}, "file.json",
                     "print the per-rule profile (or write the JSON document)",
                     [&](const std::string &Path) {
                       Profile = true;
                       ProfilePath = Path;
                       return std::string();
                     });
  Args.option({"--trace"}, "file.json",
              "write a Chrome trace-event timeline of the run",
              [&](const std::string &Path) {
                TracePath = Path;
                Options.EnableTrace = true;
                return std::string();
              });
  Args.option({"--synthesize"}, "file.cpp",
              "write the synthesized C++ instead of running",
              tools::pathSink(SynthesizePath));
  Args.parseOrExit(argc, argv);
  tools::resolveCompileOptions(Compile, SipsExplicit);

  auto Prog = core::Program::fromFile(ProgramPath, nullptr, Compile);
  if (!Prog)
    return 1;

  if (DumpRam) {
    std::printf("%s", Prog->dumpRam().c_str());
    return 0;
  }
  if (DumpTree) {
    auto Engine = Prog->makeEngine(Options);
    std::printf("%s", Engine->dumpTree().c_str());
    return 0;
  }
  if (!SynthesizePath.empty()) {
    std::ofstream Out(SynthesizePath);
    if (!Out) {
      std::fprintf(stderr, "cannot write '%s'\n", SynthesizePath.c_str());
      return 1;
    }
    Out << synth::synthesize(Prog->getRam(), Prog->getIndexes(),
                             Prog->getSymbolTable());
    std::printf("synthesized C++ written to %s\n", SynthesizePath.c_str());
    return 0;
  }

  auto Engine = Prog->makeEngine(Options);
  Timer T;
  Engine->run();
  const double TotalSeconds = T.seconds();
  for (const FactError &Err : Engine->getIoErrors())
    std::fprintf(stderr, "warning: %s (row skipped)\n", Err.render().c_str());
  std::fprintf(stderr, "runtime: %.6f s, %llu dispatches\n", TotalSeconds,
               static_cast<unsigned long long>(Engine->getNumDispatches()));

  if (Profile && ProfilePath.empty()) {
    std::fprintf(stderr, "%s",
                 obs::renderTextReport(*Engine).c_str());
  } else if (Profile) {
    obs::ProfileContext Ctx;
    Ctx.Program = ProgramPath;
    Ctx.Backend = tools::backendName(Options.TheBackend);
    Ctx.Threads = Options.NumThreads > 0 ? Options.NumThreads : 1;
    Ctx.TotalSeconds = TotalSeconds;
    Ctx.SubstrateDecisions = Prog->getSubstrateDecisions();
    std::ofstream Out(ProfilePath);
    if (!Out) {
      std::fprintf(stderr, "cannot write '%s'\n", ProfilePath.c_str());
      return 1;
    }
    Out << obs::buildProfile(*Engine, Ctx).dump(2);
    std::fprintf(stderr, "profile written to %s\n", ProfilePath.c_str());
  }
  if (!TracePath.empty()) {
    std::ofstream Out(TracePath);
    if (!Out) {
      std::fprintf(stderr, "cannot write '%s'\n", TracePath.c_str());
      return 1;
    }
    Out << Engine->getTrace()->toJson();
    std::fprintf(stderr, "trace written to %s\n", TracePath.c_str());
  }
  return 0;
}
