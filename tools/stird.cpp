//===- tools/stird.cpp - The stird command-line driver -------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Soufflé-style command-line driver:
///
///   stird program.dl [options]
///
///   -F, --facts <dir>     fact-file directory (default .)
///   -D, --output <dir>    output directory (default .)
///   -j, --jobs <n>        evaluation threads (default 1; 0 or "auto"
///                         uses every hardware thread)
///   --backend <name>      sti | sti-plain | dynamic | legacy
///   --no-super            disable super-instructions (Section 4.4)
///   --no-reorder          disable static tuple reordering (Section 4.2)
///   --fuse-conditions     enable fused-condition super-instructions (5.2)
///   --dump-ram            print the RAM program and exit
///   --profile             print the per-rule profile after the run
///   --profile=<file>      write the JSON profile document instead
///   --trace=<file>        write a Chrome trace-event timeline of the run
///   --synthesize <file>   write the synthesized C++ instead of running
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "obs/Profile.h"
#include "obs/Trace.h"
#include "synth/CppSynthesizer.h"
#include "util/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

using namespace stird;

static void usage() {
  std::fprintf(
      stderr,
      "usage: stird <program.dl> [-F factdir] [-D outdir] "
      "[-j threads|0|auto] [--backend sti|sti-plain|dynamic|legacy]\n"
      "             [--no-super] [--no-reorder] [--fuse-conditions]\n"
      "             [--dump-ram] [--dump-tree] [--profile[=<file.json>]] "
      "[--trace=<file.json>]\n"
      "             [--synthesize <file.cpp>]\n");
}

static const char *backendName(interp::Backend B) {
  switch (B) {
  case interp::Backend::StaticLambda:
    return "sti";
  case interp::Backend::StaticPlain:
    return "sti-plain";
  case interp::Backend::DynamicAdapter:
    return "dynamic";
  case interp::Backend::Legacy:
    return "legacy";
  }
  return "unknown";
}

/// `-j 0` / `-j auto`: one thread per hardware thread. The standard allows
/// hardware_concurrency() to report 0 (unknown); fall back to 1.
static std::size_t hardwareThreads() {
  const unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : static_cast<std::size_t>(N);
}

int main(int argc, char **argv) {
  std::string ProgramPath;
  interp::EngineOptions Options;
  bool DumpRam = false;
  bool DumpTree = false;
  bool Profile = false;
  std::string ProfilePath;
  std::string TracePath;
  std::string SynthesizePath;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        usage();
        std::exit(1);
      }
      return argv[++I];
    };
    if (Arg == "-F" || Arg == "--facts") {
      Options.FactDir = Next();
    } else if (Arg == "-D" || Arg == "--output") {
      Options.OutputDir = Next();
    } else if (Arg == "-j" || Arg == "--jobs") {
      const char *Value = Next();
      if (std::strcmp(Value, "auto") == 0) {
        Options.NumThreads = hardwareThreads();
      } else {
        char *End = nullptr;
        long N = std::strtol(Value, &End, 10);
        if (End == Value || *End != '\0' || N < 0) {
          std::fprintf(stderr,
                       "invalid thread count '%s' (expected a non-negative "
                       "integer or 'auto')\n",
                       Value);
          usage();
          return 1;
        }
        // 0 means "use every hardware thread", like make -j.
        Options.NumThreads =
            N == 0 ? hardwareThreads() : static_cast<std::size_t>(N);
      }
    } else if (Arg == "--backend") {
      std::string Name = Next();
      if (Name == "sti")
        Options.TheBackend = interp::Backend::StaticLambda;
      else if (Name == "sti-plain")
        Options.TheBackend = interp::Backend::StaticPlain;
      else if (Name == "dynamic")
        Options.TheBackend = interp::Backend::DynamicAdapter;
      else if (Name == "legacy")
        Options.TheBackend = interp::Backend::Legacy;
      else {
        std::fprintf(stderr, "unknown backend '%s'\n", Name.c_str());
        return 1;
      }
    } else if (Arg == "--no-super") {
      Options.SuperInstructions = false;
    } else if (Arg == "--no-reorder") {
      Options.StaticReordering = false;
    } else if (Arg == "--fuse-conditions") {
      Options.FuseConditions = true;
    } else if (Arg == "--dump-ram") {
      DumpRam = true;
    } else if (Arg == "--dump-tree") {
      DumpTree = true;
    } else if (Arg == "--profile") {
      Profile = true;
    } else if (Arg.rfind("--profile=", 0) == 0) {
      Profile = true;
      ProfilePath = Arg.substr(std::strlen("--profile="));
      if (ProfilePath.empty()) {
        std::fprintf(stderr, "--profile= requires a file name\n");
        return 1;
      }
    } else if (Arg.rfind("--trace=", 0) == 0) {
      TracePath = Arg.substr(std::strlen("--trace="));
      if (TracePath.empty()) {
        std::fprintf(stderr, "--trace= requires a file name\n");
        return 1;
      }
      Options.EnableTrace = true;
    } else if (Arg == "--synthesize") {
      SynthesizePath = Next();
    } else if (Arg == "-h" || Arg == "--help") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] != '-' && ProgramPath.empty()) {
      ProgramPath = Arg;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      usage();
      return 1;
    }
  }
  if (ProgramPath.empty()) {
    usage();
    return 1;
  }

  auto Prog = core::Program::fromFile(ProgramPath);
  if (!Prog)
    return 1;

  if (DumpRam) {
    std::printf("%s", Prog->dumpRam().c_str());
    return 0;
  }
  if (DumpTree) {
    auto Engine = Prog->makeEngine(Options);
    std::printf("%s", Engine->dumpTree().c_str());
    return 0;
  }
  if (!SynthesizePath.empty()) {
    std::ofstream Out(SynthesizePath);
    if (!Out) {
      std::fprintf(stderr, "cannot write '%s'\n", SynthesizePath.c_str());
      return 1;
    }
    Out << synth::synthesize(Prog->getRam(), Prog->getIndexes(),
                             Prog->getSymbolTable());
    std::printf("synthesized C++ written to %s\n", SynthesizePath.c_str());
    return 0;
  }

  auto Engine = Prog->makeEngine(Options);
  Timer T;
  Engine->run();
  const double TotalSeconds = T.seconds();
  std::fprintf(stderr, "runtime: %.6f s, %llu dispatches\n", TotalSeconds,
               static_cast<unsigned long long>(Engine->getNumDispatches()));

  if (Profile && ProfilePath.empty()) {
    std::fprintf(stderr, "%s",
                 obs::renderTextReport(*Engine).c_str());
  } else if (Profile) {
    obs::ProfileContext Ctx;
    Ctx.Program = ProgramPath;
    Ctx.Backend = backendName(Options.TheBackend);
    Ctx.Threads = Options.NumThreads > 0 ? Options.NumThreads : 1;
    Ctx.TotalSeconds = TotalSeconds;
    std::ofstream Out(ProfilePath);
    if (!Out) {
      std::fprintf(stderr, "cannot write '%s'\n", ProfilePath.c_str());
      return 1;
    }
    Out << obs::buildProfile(*Engine, Ctx).dump(2);
    std::fprintf(stderr, "profile written to %s\n", ProfilePath.c_str());
  }
  if (!TracePath.empty()) {
    std::ofstream Out(TracePath);
    if (!Out) {
      std::fprintf(stderr, "cannot write '%s'\n", TracePath.c_str());
      return 1;
    }
    Out << Engine->getTrace()->toJson();
    std::fprintf(stderr, "trace written to %s\n", TracePath.c_str());
  }
  return 0;
}
