//===- tools/stird-client.cpp - stird-serve wire client -----------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// stird-client: a thin stird-wire-v2 client. Each positional argument is
/// one JSON request (sent in order); with none, requests are read from
/// stdin, one per line. Every reply prints on its own stdout line, so
/// scripts (e.g. the CI serve-smoke job) can drive a server and assert on
/// the replies. --pipeline writes every request before reading any reply
/// (tagging requests without one with a numeric "id") and checks the
/// echoed ids come back in request order. Exits nonzero on connection
/// failures, protocol errors, or any {"ok":false} reply.
///
//===----------------------------------------------------------------------===//

#include "ToolOptions.h"
#include "obs/Json.h"
#include "srv/Wire.h"
#include "util/Args.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <vector>

using namespace stird;

static int connectUnix(const std::string &Path) {
  if (Path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "stird-client: socket path too long\n");
    return -1;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::fprintf(stderr, "stird-client: connect %s: %s\n", Path.c_str(),
                 std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

static int connectTcp(const std::string &Host, int Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    std::fprintf(stderr, "stird-client: invalid address '%s'\n",
                 Host.c_str());
    ::close(Fd);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::fprintf(stderr, "stird-client: connect %s:%d: %s\n", Host.c_str(),
                 Port, std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

static int printReply(const std::string &Reply,
                      obs::json::Value *DocOut = nullptr);

/// Sends one request and prints the reply line. Returns 0 on an ok reply,
/// 1 on {"ok":false}, 2 on transport failure.
static int roundTrip(int Fd, const std::string &Request) {
  std::string Error;
  if (!srv::writeFrame(Fd, Request, &Error)) {
    std::fprintf(stderr, "stird-client: %s\n", Error.c_str());
    return 2;
  }
  std::string Reply;
  if (!srv::readFrame(Fd, Reply, &Error)) {
    std::fprintf(stderr, "stird-client: %s\n",
                 Error.empty() ? "server closed the connection"
                               : Error.c_str());
    return 2;
  }
  return printReply(Reply);
}

/// Prints one reply and classifies it: 0 ok, 1 {"ok":false}, 2 malformed.
static int printReply(const std::string &Reply, obs::json::Value *DocOut) {
  std::printf("%s\n", Reply.c_str());
  std::optional<obs::json::Value> Doc = obs::json::parse(Reply);
  if (!Doc) {
    std::fprintf(stderr, "stird-client: malformed reply\n");
    return 2;
  }
  const obs::json::Value *Ok = Doc->find("ok");
  const int Status = (Ok && Ok->isBool() && Ok->asBool()) ? 0 : 1;
  if (DocOut)
    *DocOut = std::move(*Doc);
  return Status;
}

/// Writes every request before reading any reply, exercising stird-wire-v2
/// pipelining. Requests without an "id" get their 0-based index; the
/// echoed ids must come back in request order.
static int pipelineAll(int Fd, const std::vector<std::string> &Requests) {
  std::vector<double> ExpectedIds;
  std::string Error;
  for (std::size_t I = 0; I < Requests.size(); ++I) {
    std::optional<obs::json::Value> Doc = obs::json::parse(Requests[I]);
    if (!Doc || !Doc->isObject()) {
      std::fprintf(stderr, "stird-client: request %zu is not a JSON object\n",
                   I);
      return 2;
    }
    double Id = static_cast<double>(I);
    if (const obs::json::Value *Existing = Doc->find("id")) {
      if (!Existing->isNumber()) {
        std::fprintf(stderr,
                     "stird-client: --pipeline needs numeric ids "
                     "(request %zu)\n",
                     I);
        return 2;
      }
      Id = Existing->asNumber();
    } else {
      Doc->set("id", Id);
    }
    ExpectedIds.push_back(Id);
    if (!srv::writeFrame(Fd, Doc->dump(), &Error)) {
      std::fprintf(stderr, "stird-client: %s\n", Error.c_str());
      return 2;
    }
  }
  int Status = 0;
  for (std::size_t I = 0; I < Requests.size(); ++I) {
    std::string Reply;
    if (!srv::readFrame(Fd, Reply, &Error)) {
      std::fprintf(stderr, "stird-client: %s\n",
                   Error.empty() ? "server closed the connection"
                                 : Error.c_str());
      return 2;
    }
    obs::json::Value Doc;
    const int R = printReply(Reply, &Doc);
    Status = std::max(Status, R);
    if (R == 2)
      return 2;
    const obs::json::Value *Id = Doc.find("id");
    if (!Id || !Id->isNumber() || Id->asNumber() != ExpectedIds[I]) {
      std::fprintf(stderr,
                   "stird-client: reply %zu did not echo id %g in order\n",
                   I, ExpectedIds[I]);
      return 2;
    }
  }
  return Status;
}

/// One compact --watch line from a stats reply: request, cache and
/// scheduler counters plus the per-command p99s, fit for a terminal.
static void printWatchLine(const obs::json::Value &Doc) {
  auto Num = [](const obs::json::Value *V) -> double {
    return V && V->isNumber() ? V->asNumber() : 0.0;
  };
  std::string Line;
  char Buf[128];
  const obs::json::Value *Server = Doc.find("server");
  const obs::json::Value *Cache = Doc.find("cache");
  const obs::json::Value *Sched = Doc.find("scheduler");
  if (Server) {
    std::snprintf(Buf, sizeof(Buf), "req=%.0f over=%.0f",
                  Num(Server->find("requests_dispatched")),
                  Num(Server->find("requests_overloaded")));
    Line += Buf;
  }
  if (Cache) {
    std::snprintf(Buf, sizeof(Buf), " cache=%.0f/%.0f",
                  Num(Cache->find("hits")), Num(Cache->find("misses")));
    Line += Buf;
  }
  if (Sched) {
    std::snprintf(Buf, sizeof(Buf), " queue=%.0f stolen=%.0f",
                  Num(Sched->find("queue_depth")),
                  Num(Sched->find("tasks_stolen")));
    Line += Buf;
  }
  if (const obs::json::Value *Latency = Doc.find("latency"))
    if (Latency->isObject())
      for (const auto &[Command, Summary] : Latency->asObject()) {
        std::snprintf(Buf, sizeof(Buf), " %s:n=%.0f,p99=%.0fus",
                      Command.c_str(), Num(Summary.find("count")),
                      Num(Summary.find("p99_micros")));
        Line += Buf;
      }
  if (const obs::json::Value *Trace = Doc.find("trace")) {
    std::snprintf(Buf, sizeof(Buf), " traces=%.0f slow=%.0f",
                  Num(Trace->find("retained")), Num(Trace->find("slow")));
    Line += Buf;
  }
  std::printf("%s\n", Line.empty() ? "(no stats members)" : Line.c_str());
  std::fflush(stdout);
}

/// --watch loop: one stats request per interval on a persistent
/// connection, one compact line per reply, until the transport fails.
static int watchStats(int Fd, unsigned IntervalSeconds) {
  const std::string Request = "{\"cmd\":\"stats\"}";
  for (;;) {
    std::string Error;
    if (!srv::writeFrame(Fd, Request, &Error)) {
      std::fprintf(stderr, "stird-client: %s\n", Error.c_str());
      return 2;
    }
    std::string Reply;
    if (!srv::readFrame(Fd, Reply, &Error)) {
      std::fprintf(stderr, "stird-client: %s\n",
                   Error.empty() ? "server closed the connection"
                                 : Error.c_str());
      return 2;
    }
    std::optional<obs::json::Value> Doc = obs::json::parse(Reply);
    if (!Doc) {
      std::fprintf(stderr, "stird-client: malformed reply\n");
      return 2;
    }
    printWatchLine(*Doc);
    ::sleep(IntervalSeconds);
  }
}

int main(int Argc, char **Argv) {
  std::string UnixPath, Host = "127.0.0.1", PortText;
  int Port = 0;
  bool Pipeline = false;
  unsigned WatchSeconds = 0;
  std::vector<std::string> Requests;

  util::Args Args("stird-client",
                  "send stird-wire-v2 requests (args, or stdin lines)");
  Args.option({"--socket"}, "path", "connect to a Unix socket",
              tools::pathSink(UnixPath));
  Args.option({"--host"}, "addr", "TCP address (default 127.0.0.1)",
              tools::pathSink(Host));
  Args.option({"--port"}, "n", "TCP port",
              [&](const std::string &Value) -> std::string {
                char *End = nullptr;
                const long N = std::strtol(Value.c_str(), &End, 10);
                if (End == Value.c_str() || *End != '\0' || N <= 0 ||
                    N > 65535)
                  return "invalid port '" + Value + "'";
                Port = static_cast<int>(N);
                PortText = Value;
                return "";
              });
  Args.flag({"--pipeline"},
            "send every request before reading any reply (auto-ids)",
            [&Pipeline] { Pipeline = true; });
  Args.option({"--watch"}, "seconds",
              "poll stats at this interval and print one compact "
              "live-counters line per poll",
              [&WatchSeconds](const std::string &Value) -> std::string {
                char *End = nullptr;
                const long N = std::strtol(Value.c_str(), &End, 10);
                if (End == Value.c_str() || *End != '\0' || N <= 0)
                  return "expected a positive interval, got '" + Value +
                         "'";
                WatchSeconds = static_cast<unsigned>(N);
                return "";
              });
  Args.positional("request...",
                  [&Requests](const std::string &Value) {
                    Requests.push_back(Value);
                    return std::string();
                  },
                  /*Required=*/false, /*Variadic=*/true);
  Args.parseOrExit(Argc, Argv);

  if (UnixPath.empty() && PortText.empty()) {
    std::fprintf(stderr,
                 "stird-client: pick an endpoint: --socket or --port\n");
    return 1;
  }

  const int Fd =
      UnixPath.empty() ? connectTcp(Host, Port) : connectUnix(UnixPath);
  if (Fd < 0)
    return 2;

  if (WatchSeconds > 0) {
    const int Status = watchStats(Fd, WatchSeconds);
    ::close(Fd);
    return Status;
  }

  if (Requests.empty()) {
    std::string Line;
    while (std::getline(std::cin, Line))
      if (!Line.empty())
        Requests.push_back(Line);
  }

  int Status = 0;
  if (Pipeline) {
    Status = pipelineAll(Fd, Requests);
  } else {
    for (const std::string &Request : Requests) {
      const int R = roundTrip(Fd, Request);
      Status = std::max(Status, R);
      if (R == 2)
        break;
    }
  }
  ::close(Fd);
  return Status;
}
