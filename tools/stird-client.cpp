//===- tools/stird-client.cpp - stird-serve wire client -----------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// stird-client: a thin stird-wire-v2 client. Each positional argument is
/// one JSON request (sent in order); with none, requests are read from
/// stdin, one per line. Every reply prints on its own stdout line, so
/// scripts (e.g. the CI serve-smoke job) can drive a server and assert on
/// the replies. --pipeline writes every request before reading any reply
/// (tagging requests without one with a numeric "id") and checks the
/// echoed ids come back in request order. With --retract, arguments (or
/// stdin lines) are fact literals "rel(v, ...)" sent as one retract
/// request; --batch FILE sends one mixed load built from "+rel(v, ...)"
/// insert and "-rel(v, ...)" retract lines. Exits nonzero on connection
/// failures, protocol errors, or any {"ok":false} reply.
///
//===----------------------------------------------------------------------===//

#include "ToolOptions.h"
#include "obs/Json.h"
#include "srv/Wire.h"
#include "util/Args.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <vector>

using namespace stird;

static int connectUnix(const std::string &Path) {
  if (Path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "stird-client: socket path too long\n");
    return -1;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::fprintf(stderr, "stird-client: connect %s: %s\n", Path.c_str(),
                 std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

static int connectTcp(const std::string &Host, int Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    std::fprintf(stderr, "stird-client: invalid address '%s'\n",
                 Host.c_str());
    ::close(Fd);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::fprintf(stderr, "stird-client: connect %s:%d: %s\n", Host.c_str(),
                 Port, std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

static int printReply(const std::string &Reply,
                      obs::json::Value *DocOut = nullptr);

/// Sends one request and prints the reply line. Returns 0 on an ok reply,
/// 1 on {"ok":false}, 2 on transport failure.
static int roundTrip(int Fd, const std::string &Request) {
  std::string Error;
  if (!srv::writeFrame(Fd, Request, &Error)) {
    std::fprintf(stderr, "stird-client: %s\n", Error.c_str());
    return 2;
  }
  std::string Reply;
  if (!srv::readFrame(Fd, Reply, &Error)) {
    std::fprintf(stderr, "stird-client: %s\n",
                 Error.empty() ? "server closed the connection"
                               : Error.c_str());
    return 2;
  }
  return printReply(Reply);
}

/// Prints one reply and classifies it: 0 ok, 1 {"ok":false}, 2 malformed.
static int printReply(const std::string &Reply, obs::json::Value *DocOut) {
  std::printf("%s\n", Reply.c_str());
  std::optional<obs::json::Value> Doc = obs::json::parse(Reply);
  if (!Doc) {
    std::fprintf(stderr, "stird-client: malformed reply\n");
    return 2;
  }
  const obs::json::Value *Ok = Doc->find("ok");
  const int Status = (Ok && Ok->isBool() && Ok->asBool()) ? 0 : 1;
  if (DocOut)
    *DocOut = std::move(*Doc);
  return Status;
}

/// Writes every request before reading any reply, exercising stird-wire-v2
/// pipelining. Requests without an "id" get their 0-based index; the
/// echoed ids must come back in request order.
static int pipelineAll(int Fd, const std::vector<std::string> &Requests) {
  std::vector<double> ExpectedIds;
  std::string Error;
  for (std::size_t I = 0; I < Requests.size(); ++I) {
    std::optional<obs::json::Value> Doc = obs::json::parse(Requests[I]);
    if (!Doc || !Doc->isObject()) {
      std::fprintf(stderr, "stird-client: request %zu is not a JSON object\n",
                   I);
      return 2;
    }
    double Id = static_cast<double>(I);
    if (const obs::json::Value *Existing = Doc->find("id")) {
      if (!Existing->isNumber()) {
        std::fprintf(stderr,
                     "stird-client: --pipeline needs numeric ids "
                     "(request %zu)\n",
                     I);
        return 2;
      }
      Id = Existing->asNumber();
    } else {
      Doc->set("id", Id);
    }
    ExpectedIds.push_back(Id);
    if (!srv::writeFrame(Fd, Doc->dump(), &Error)) {
      std::fprintf(stderr, "stird-client: %s\n", Error.c_str());
      return 2;
    }
  }
  int Status = 0;
  for (std::size_t I = 0; I < Requests.size(); ++I) {
    std::string Reply;
    if (!srv::readFrame(Fd, Reply, &Error)) {
      std::fprintf(stderr, "stird-client: %s\n",
                   Error.empty() ? "server closed the connection"
                                 : Error.c_str());
      return 2;
    }
    obs::json::Value Doc;
    const int R = printReply(Reply, &Doc);
    Status = std::max(Status, R);
    if (R == 2)
      return 2;
    const obs::json::Value *Id = Doc.find("id");
    if (!Id || !Id->isNumber() || Id->asNumber() != ExpectedIds[I]) {
      std::fprintf(stderr,
                   "stird-client: reply %zu did not echo id %g in order\n",
                   I, ExpectedIds[I]);
      return 2;
    }
  }
  return Status;
}

/// One compact --watch line from a stats reply: request, cache and
/// scheduler counters plus the per-command p99s, fit for a terminal.
static void printWatchLine(const obs::json::Value &Doc) {
  auto Num = [](const obs::json::Value *V) -> double {
    return V && V->isNumber() ? V->asNumber() : 0.0;
  };
  std::string Line;
  char Buf[128];
  const obs::json::Value *Server = Doc.find("server");
  const obs::json::Value *Cache = Doc.find("cache");
  const obs::json::Value *Sched = Doc.find("scheduler");
  if (Server) {
    std::snprintf(Buf, sizeof(Buf), "req=%.0f over=%.0f",
                  Num(Server->find("requests_dispatched")),
                  Num(Server->find("requests_overloaded")));
    Line += Buf;
  }
  if (Cache) {
    std::snprintf(Buf, sizeof(Buf), " cache=%.0f/%.0f",
                  Num(Cache->find("hits")), Num(Cache->find("misses")));
    Line += Buf;
  }
  if (Sched) {
    std::snprintf(Buf, sizeof(Buf), " queue=%.0f stolen=%.0f",
                  Num(Sched->find("queue_depth")),
                  Num(Sched->find("tasks_stolen")));
    Line += Buf;
  }
  if (const obs::json::Value *Latency = Doc.find("latency"))
    if (Latency->isObject())
      for (const auto &[Command, Summary] : Latency->asObject()) {
        std::snprintf(Buf, sizeof(Buf), " %s:n=%.0f,p99=%.0fus",
                      Command.c_str(), Num(Summary.find("count")),
                      Num(Summary.find("p99_micros")));
        Line += Buf;
      }
  if (const obs::json::Value *Trace = Doc.find("trace")) {
    std::snprintf(Buf, sizeof(Buf), " traces=%.0f slow=%.0f",
                  Num(Trace->find("retained")), Num(Trace->find("slow")));
    Line += Buf;
  }
  std::printf("%s\n", Line.empty() ? "(no stats members)" : Line.c_str());
  std::fflush(stdout);
}

/// --watch loop: one stats request per interval on a persistent
/// connection, one compact line per reply, until the transport fails.
static int watchStats(int Fd, unsigned IntervalSeconds) {
  const std::string Request = "{\"cmd\":\"stats\"}";
  for (;;) {
    std::string Error;
    if (!srv::writeFrame(Fd, Request, &Error)) {
      std::fprintf(stderr, "stird-client: %s\n", Error.c_str());
      return 2;
    }
    std::string Reply;
    if (!srv::readFrame(Fd, Reply, &Error)) {
      std::fprintf(stderr, "stird-client: %s\n",
                   Error.empty() ? "server closed the connection"
                                 : Error.c_str());
      return 2;
    }
    std::optional<obs::json::Value> Doc = obs::json::parse(Reply);
    if (!Doc) {
      std::fprintf(stderr, "stird-client: malformed reply\n");
      return 2;
    }
    printWatchLine(*Doc);
    ::sleep(IntervalSeconds);
  }
}

static std::string trimmed(const std::string &S) {
  const char *WS = " \t\r\n";
  const std::size_t B = S.find_first_not_of(WS);
  if (B == std::string::npos)
    return std::string();
  return S.substr(B, S.find_last_not_of(WS) - B + 1);
}

/// Parses one fact literal "rel(v1, v2, ...)". Values are bare tokens or
/// double-quoted strings (quotes stripped, commas inside kept); every
/// value travels as a JSON string and the server resolves it against the
/// relation's declared column types. Returns a diagnostic or "".
static std::string parseFactLiteral(const std::string &Text,
                                    std::string &Name,
                                    std::vector<std::string> &Args) {
  const std::string Fact = trimmed(Text);
  const std::size_t Open = Fact.find('(');
  if (Open == std::string::npos || Fact.back() != ')')
    return "expected rel(v, ...), got '" + Fact + "'";
  Name = trimmed(Fact.substr(0, Open));
  if (Name.empty())
    return "missing relation name in '" + Fact + "'";
  const std::string Body = Fact.substr(Open + 1, Fact.size() - Open - 2);
  std::string Current;
  bool InQuote = false, SawQuote = false;
  for (char C : Body) {
    if (C == '"') {
      InQuote = !InQuote;
      SawQuote = true;
      continue;
    }
    if (C == ',' && !InQuote) {
      Args.push_back(trimmed(Current));
      Current.clear();
      continue;
    }
    Current += C;
  }
  if (InQuote)
    return "unterminated string in '" + Fact + "'";
  Current = trimmed(Current);
  if (!Current.empty() || !Args.empty() || SawQuote)
    Args.push_back(Current);
  return "";
}

/// Appends \p Args as one row under \p Name in a facts object, creating
/// the relation's row array on first use (insertion order preserved).
static void appendRow(obs::json::Object &Facts, const std::string &Name,
                      const std::vector<std::string> &Args) {
  obs::json::Array Row;
  for (const std::string &Arg : Args)
    Row.emplace_back(Arg);
  for (auto &[Key, Rows] : Facts)
    if (Key == Name) {
      Rows.asArray().push_back(obs::json::Value(std::move(Row)));
      return;
    }
  Facts.emplace_back(Name,
                     obs::json::Value(obs::json::Array{std::move(Row)}));
}

/// Builds the {"cmd":"retract"} request for --retract from fact
/// literals. Returns 0 and fills \p Request, or prints and returns 1.
static int buildRetractRequest(const std::vector<std::string> &Literals,
                               std::string &Request) {
  if (Literals.empty()) {
    std::fprintf(stderr, "stird-client: --retract needs fact literals\n");
    return 1;
  }
  obs::json::Object Facts;
  for (const std::string &Literal : Literals) {
    std::string Name;
    std::vector<std::string> Args;
    const std::string Error = parseFactLiteral(Literal, Name, Args);
    if (!Error.empty()) {
      std::fprintf(stderr, "stird-client: %s\n", Error.c_str());
      return 1;
    }
    appendRow(Facts, Name, Args);
  }
  obs::json::Value Doc{obs::json::Object{}};
  Doc.set("cmd", "retract");
  Doc.set("facts", obs::json::Value(std::move(Facts)));
  Request = Doc.dump();
  return 0;
}

/// Builds the mixed {"cmd":"load"} request for --batch. Each nonblank,
/// non-# line of \p Path is "+rel(v, ...)" (insert) or "-rel(v, ...)"
/// (retract); the server retracts before inserting within the batch.
/// Returns 0 and fills \p Request, or prints a diagnostic and returns 1.
static int buildBatchRequest(const std::string &Path, std::string &Request) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "stird-client: cannot open batch file '%s'\n",
                 Path.c_str());
    return 1;
  }
  obs::json::Object Inserts, Retracts;
  std::string Line;
  std::size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    Line = trimmed(Line);
    if (Line.empty() || Line[0] == '#')
      continue;
    if (Line[0] != '+' && Line[0] != '-') {
      std::fprintf(stderr,
                   "stird-client: %s:%zu: expected +rel(v, ...) or "
                   "-rel(v, ...), got '%s'\n",
                   Path.c_str(), LineNo, Line.c_str());
      return 1;
    }
    std::string Name;
    std::vector<std::string> Args;
    const std::string Error =
        parseFactLiteral(Line.substr(1), Name, Args);
    if (!Error.empty()) {
      std::fprintf(stderr, "stird-client: %s:%zu: %s\n", Path.c_str(),
                   LineNo, Error.c_str());
      return 1;
    }
    appendRow(Line[0] == '+' ? Inserts : Retracts, Name, Args);
  }
  obs::json::Value Doc{obs::json::Object{}};
  Doc.set("cmd", "load");
  Doc.set("facts", obs::json::Value(std::move(Inserts)));
  if (!Retracts.empty())
    Doc.set("retract", obs::json::Value(std::move(Retracts)));
  Request = Doc.dump();
  return 0;
}

int main(int Argc, char **Argv) {
  std::string UnixPath, Host = "127.0.0.1", PortText;
  int Port = 0;
  bool Pipeline = false, RetractFacts = false;
  unsigned WatchSeconds = 0;
  std::string BatchPath;
  std::vector<std::string> Requests;

  util::Args Args("stird-client",
                  "send stird-wire-v2 requests (args, or stdin lines)");
  Args.option({"--socket"}, "path", "connect to a Unix socket",
              tools::pathSink(UnixPath));
  Args.option({"--host"}, "addr", "TCP address (default 127.0.0.1)",
              tools::pathSink(Host));
  Args.option({"--port"}, "n", "TCP port",
              [&](const std::string &Value) -> std::string {
                char *End = nullptr;
                const long N = std::strtol(Value.c_str(), &End, 10);
                if (End == Value.c_str() || *End != '\0' || N <= 0 ||
                    N > 65535)
                  return "invalid port '" + Value + "'";
                Port = static_cast<int>(N);
                PortText = Value;
                return "";
              });
  Args.flag({"--pipeline"},
            "send every request before reading any reply (auto-ids)",
            [&Pipeline] { Pipeline = true; });
  Args.flag({"--retract"},
            "treat arguments (or stdin lines) as fact literals "
            "rel(v, ...) and send them as one retract request",
            [&RetractFacts] { RetractFacts = true; });
  Args.option({"--batch"}, "file",
              "send one mixed load from FILE: +rel(v, ...) inserts, "
              "-rel(v, ...) retracts, # comments",
              tools::pathSink(BatchPath));
  Args.option({"--watch"}, "seconds",
              "poll stats at this interval and print one compact "
              "live-counters line per poll",
              [&WatchSeconds](const std::string &Value) -> std::string {
                char *End = nullptr;
                const long N = std::strtol(Value.c_str(), &End, 10);
                if (End == Value.c_str() || *End != '\0' || N <= 0)
                  return "expected a positive interval, got '" + Value +
                         "'";
                WatchSeconds = static_cast<unsigned>(N);
                return "";
              });
  Args.positional("request...",
                  [&Requests](const std::string &Value) {
                    Requests.push_back(Value);
                    return std::string();
                  },
                  /*Required=*/false, /*Variadic=*/true);
  Args.parseOrExit(Argc, Argv);

  if (UnixPath.empty() && PortText.empty()) {
    std::fprintf(stderr,
                 "stird-client: pick an endpoint: --socket or --port\n");
    return 1;
  }

  const int Fd =
      UnixPath.empty() ? connectTcp(Host, Port) : connectUnix(UnixPath);
  if (Fd < 0)
    return 2;

  if (WatchSeconds > 0) {
    const int Status = watchStats(Fd, WatchSeconds);
    ::close(Fd);
    return Status;
  }

  if (Requests.empty() && BatchPath.empty()) {
    std::string Line;
    while (std::getline(std::cin, Line))
      if (!Line.empty())
        Requests.push_back(Line);
  }

  if (RetractFacts) {
    std::string Request;
    if (buildRetractRequest(Requests, Request) != 0) {
      ::close(Fd);
      return 1;
    }
    Requests.assign(1, Request);
  }
  if (!BatchPath.empty()) {
    std::string Request;
    if (buildBatchRequest(BatchPath, Request) != 0) {
      ::close(Fd);
      return 1;
    }
    Requests.insert(Requests.begin(), Request);
  }

  int Status = 0;
  if (Pipeline) {
    Status = pipelineAll(Fd, Requests);
  } else {
    for (const std::string &Request : Requests) {
      const int R = roundTrip(Fd, Request);
      Status = std::max(Status, R);
      if (R == 2)
        break;
    }
  }
  ::close(Fd);
  return Status;
}
