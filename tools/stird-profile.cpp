//===- tools/stird-profile.cpp - Profile log analyzer --------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reads a `stird --profile=<file>` JSON document and prints the analyses
/// the raw log buries: the hot-rule table, per-relation growth counters,
/// and the per-iteration convergence of every recursive rule.
///
///   stird-profile <profile.json> [--top N]
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/Profile.h"
#include "util/Args.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using stird::obs::json::Value;

namespace {

struct RuleRow {
  std::string Label;
  std::string Relation;
  std::int64_t Stratum = -1;
  bool Recursive = false;
  double Seconds = 0;
  std::uint64_t Invocations = 0;
  std::uint64_t Dispatches = 0;
  std::uint64_t DeltaTuples = 0;
  std::string Sips;
  std::vector<int> AtomOrder;
  const Value *Iterations = nullptr;
};

/// "[2,0,1]" — the body-atom evaluation order the planner chose, as
/// indices into the source clause.
std::string renderOrder(const std::vector<int> &Order) {
  std::string Text = "[";
  for (std::size_t I = 0; I < Order.size(); ++I) {
    if (I > 0)
      Text += ",";
    Text += std::to_string(Order[I]);
  }
  return Text + "]";
}

bool isIdentityOrder(const std::vector<int> &Order) {
  for (std::size_t I = 0; I < Order.size(); ++I)
    if (Order[I] != static_cast<int>(I))
      return false;
  return true;
}

double numberOr(const Value *V, double Default) {
  return V && V->isNumber() ? V->asNumber() : Default;
}

std::string stringOr(const Value *V, const std::string &Default) {
  return V && V->isString() ? V->asString() : Default;
}

[[noreturn]] void die(const std::string &Message) {
  std::fprintf(stderr, "stird-profile: %s\n", Message.c_str());
  std::exit(1);
}

} // namespace

int main(int argc, char **argv) {
  std::string Path;
  std::size_t TopN = 10;
  stird::util::Args Args("stird-profile", "[options]");
  Args.positional("profile.json", [&](const std::string &Value) {
    Path = Value;
    return std::string();
  });
  Args.option({"--top"}, "n", "rows in the hot-rule table (default 10)",
              [&](const std::string &Value) -> std::string {
                char *End = nullptr;
                const unsigned long N = std::strtoul(Value.c_str(), &End, 10);
                if (End == Value.c_str() || *End != '\0')
                  return "--top requires a number, got '" + Value + "'";
                TopN = static_cast<std::size_t>(N);
                return "";
              });
  Args.parseOrExit(argc, argv);

  std::ifstream In(Path);
  if (!In)
    die("cannot read '" + Path + "'");
  std::ostringstream Buffer;
  Buffer << In.rdbuf();

  std::string Error;
  std::optional<Value> Doc = stird::obs::json::parse(Buffer.str(), &Error);
  if (!Doc)
    die("malformed JSON in '" + Path + "': " + Error);

  const std::string Schema = stringOr(Doc->find("schema"), "");
  if (Schema != stird::obs::ProfileSchemaVersion)
    die("unsupported profile schema '" + Schema + "' (expected " +
        std::string(stird::obs::ProfileSchemaVersion) + ")");

  std::printf("program:  %s\n", stringOr(Doc->find("program"), "?").c_str());
  std::printf("backend:  %s, %llu thread(s)\n",
              stringOr(Doc->find("backend"), "?").c_str(),
              static_cast<unsigned long long>(
                  numberOr(Doc->find("threads"), 1)));
  std::printf("runtime:  %.6f s, %llu dispatches\n",
              numberOr(Doc->find("total_seconds"), 0),
              static_cast<unsigned long long>(
                  numberOr(Doc->find("dispatches"), 0)));

  const Value *Strata = Doc->find("strata");
  if (!Strata || !Strata->isArray())
    die("profile has no 'strata' array");

  std::vector<RuleRow> Rules;
  for (const Value &Stratum : Strata->asArray()) {
    const Value *RuleArr = Stratum.find("rules");
    if (!RuleArr || !RuleArr->isArray())
      continue;
    for (const Value &Rule : RuleArr->asArray()) {
      RuleRow Row;
      Row.Label = stringOr(Rule.find("label"), "?");
      Row.Relation = stringOr(Rule.find("relation"), "");
      Row.Stratum = static_cast<std::int64_t>(
          numberOr(Rule.find("stratum"), -1));
      const Value *Rec = Rule.find("recursive");
      Row.Recursive = Rec && Rec->isBool() && Rec->asBool();
      Row.Seconds = numberOr(Rule.find("seconds"), 0);
      Row.Invocations = static_cast<std::uint64_t>(
          numberOr(Rule.find("invocations"), 0));
      Row.Dispatches = static_cast<std::uint64_t>(
          numberOr(Rule.find("dispatches"), 0));
      Row.DeltaTuples = static_cast<std::uint64_t>(
          numberOr(Rule.find("delta_tuples"), 0));
      Row.Sips = stringOr(Rule.find("sips"), "");
      if (const Value *Order = Rule.find("atom_order");
          Order && Order->isArray())
        for (const Value &Idx : Order->asArray())
          Row.AtomOrder.push_back(static_cast<int>(numberOr(&Idx, 0)));
      Row.Iterations = Rule.find("iterations");
      Rules.push_back(std::move(Row));
    }
  }

  // Hot rules.
  std::vector<const RuleRow *> Hot;
  double TotalSeconds = 0;
  for (const RuleRow &Row : Rules) {
    Hot.push_back(&Row);
    TotalSeconds += Row.Seconds;
  }
  std::sort(Hot.begin(), Hot.end(), [](const RuleRow *A, const RuleRow *B) {
    if (A->Seconds != B->Seconds)
      return A->Seconds > B->Seconds;
    return A->Label < B->Label;
  });
  std::printf("\nHot rules (top %zu of %zu):\n",
              std::min(TopN, Hot.size()), Hot.size());
  std::printf("%12s %6s %8s %14s %12s  %s\n", "seconds", "%", "invocs",
              "dispatches", "tuples", "rule");
  for (std::size_t I = 0; I < Hot.size() && I < TopN; ++I) {
    const RuleRow &Row = *Hot[I];
    std::printf("%12.6f %6.1f %8llu %14llu %12llu  %s\n", Row.Seconds,
                TotalSeconds > 0 ? 100.0 * Row.Seconds / TotalSeconds : 0,
                static_cast<unsigned long long>(Row.Invocations),
                static_cast<unsigned long long>(Row.Dispatches),
                static_cast<unsigned long long>(Row.DeltaTuples),
                Row.Label.c_str());
  }

  // Plan choices: which strategy planned each rule and where it deviated
  // from source order. Profiles written before the planner existed carry
  // no "sips" key and skip the section entirely.
  bool PrintedPlanHeader = false;
  for (const RuleRow &Row : Rules) {
    if (Row.Sips.empty() ||
        (Row.Sips == "source" && isIdentityOrder(Row.AtomOrder)))
      continue;
    if (!PrintedPlanHeader) {
      std::printf("\nJoin plans (body-atom order by source position):\n");
      std::printf("%10s %16s  %s\n", "sips", "order", "rule");
      PrintedPlanHeader = true;
    }
    std::printf("%10s %16s  %s\n", Row.Sips.c_str(),
                Row.AtomOrder.empty()
                    ? "-"
                    : renderOrder(Row.AtomOrder).c_str(),
                Row.Label.c_str());
  }

  // Relation growth.
  const Value *Relations = Doc->find("relations");
  if (Relations && Relations->isArray()) {
    std::printf("\nRelations:\n");
    std::printf("%10s %10s %10s %10s %12s %12s %10s  %s\n", "final",
                "peak", "inserts", "new", "idx-scans", "idx-tuples",
                "reorders", "relation");
    for (const Value &Rel : Relations->asArray()) {
      std::printf(
          "%10llu %10llu %10llu %10llu %12llu %12llu %10llu  %s\n",
          static_cast<unsigned long long>(
              numberOr(Rel.find("final_size"), 0)),
          static_cast<unsigned long long>(
              numberOr(Rel.find("peak_size"), 0)),
          static_cast<unsigned long long>(numberOr(Rel.find("inserts"), 0)),
          static_cast<unsigned long long>(
              numberOr(Rel.find("inserts_new"), 0)),
          static_cast<unsigned long long>(
              numberOr(Rel.find("index_scans"), 0)),
          static_cast<unsigned long long>(
              numberOr(Rel.find("index_scan_tuples"), 0)),
          static_cast<unsigned long long>(
              numberOr(Rel.find("reorders"), 0)),
          stringOr(Rel.find("name"), "?").c_str());
    }
  }

  // Convergence of recursive rules: the per-iteration delta curve shows
  // how fast each fixpoint drains.
  bool PrintedHeader = false;
  for (const RuleRow &Row : Rules) {
    if (!Row.Recursive || !Row.Iterations || !Row.Iterations->isArray() ||
        Row.Iterations->asArray().empty())
      continue;
    if (!PrintedHeader) {
      std::printf("\nConvergence (tuples per iteration):\n");
      PrintedHeader = true;
    }
    std::printf("  %s\n", Row.Label.c_str());
    std::printf("  %6s %12s %12s %14s\n", "iter", "seconds", "tuples",
                "dispatches");
    std::size_t Iter = 0;
    for (const Value &Sample : Row.Iterations->asArray()) {
      std::printf("  %6zu %12.6f %12llu %14llu\n", Iter++,
                  numberOr(Sample.find("seconds"), 0),
                  static_cast<unsigned long long>(
                      numberOr(Sample.find("delta_tuples"), 0)),
                  static_cast<unsigned long long>(
                      numberOr(Sample.find("dispatches"), 0)));
    }
  }
  return 0;
}
