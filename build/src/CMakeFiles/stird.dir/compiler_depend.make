# Empty compiler generated dependencies file for stird.
# This may be replaced when dependencies are built.
