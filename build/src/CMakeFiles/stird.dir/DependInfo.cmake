
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/Ast.cpp" "src/CMakeFiles/stird.dir/ast/Ast.cpp.o" "gcc" "src/CMakeFiles/stird.dir/ast/Ast.cpp.o.d"
  "/root/repo/src/ast/Lexer.cpp" "src/CMakeFiles/stird.dir/ast/Lexer.cpp.o" "gcc" "src/CMakeFiles/stird.dir/ast/Lexer.cpp.o.d"
  "/root/repo/src/ast/Parser.cpp" "src/CMakeFiles/stird.dir/ast/Parser.cpp.o" "gcc" "src/CMakeFiles/stird.dir/ast/Parser.cpp.o.d"
  "/root/repo/src/ast/SemanticAnalysis.cpp" "src/CMakeFiles/stird.dir/ast/SemanticAnalysis.cpp.o" "gcc" "src/CMakeFiles/stird.dir/ast/SemanticAnalysis.cpp.o.d"
  "/root/repo/src/core/Program.cpp" "src/CMakeFiles/stird.dir/core/Program.cpp.o" "gcc" "src/CMakeFiles/stird.dir/core/Program.cpp.o.d"
  "/root/repo/src/der/EquivalenceRelation.cpp" "src/CMakeFiles/stird.dir/der/EquivalenceRelation.cpp.o" "gcc" "src/CMakeFiles/stird.dir/der/EquivalenceRelation.cpp.o.d"
  "/root/repo/src/der/Instantiations.cpp" "src/CMakeFiles/stird.dir/der/Instantiations.cpp.o" "gcc" "src/CMakeFiles/stird.dir/der/Instantiations.cpp.o.d"
  "/root/repo/src/interp/DynamicEngine.cpp" "src/CMakeFiles/stird.dir/interp/DynamicEngine.cpp.o" "gcc" "src/CMakeFiles/stird.dir/interp/DynamicEngine.cpp.o.d"
  "/root/repo/src/interp/Engine.cpp" "src/CMakeFiles/stird.dir/interp/Engine.cpp.o" "gcc" "src/CMakeFiles/stird.dir/interp/Engine.cpp.o.d"
  "/root/repo/src/interp/Generator.cpp" "src/CMakeFiles/stird.dir/interp/Generator.cpp.o" "gcc" "src/CMakeFiles/stird.dir/interp/Generator.cpp.o.d"
  "/root/repo/src/interp/NodePrinter.cpp" "src/CMakeFiles/stird.dir/interp/NodePrinter.cpp.o" "gcc" "src/CMakeFiles/stird.dir/interp/NodePrinter.cpp.o.d"
  "/root/repo/src/interp/Profiler.cpp" "src/CMakeFiles/stird.dir/interp/Profiler.cpp.o" "gcc" "src/CMakeFiles/stird.dir/interp/Profiler.cpp.o.d"
  "/root/repo/src/interp/Relation.cpp" "src/CMakeFiles/stird.dir/interp/Relation.cpp.o" "gcc" "src/CMakeFiles/stird.dir/interp/Relation.cpp.o.d"
  "/root/repo/src/interp/StaticEngineLambda.cpp" "src/CMakeFiles/stird.dir/interp/StaticEngineLambda.cpp.o" "gcc" "src/CMakeFiles/stird.dir/interp/StaticEngineLambda.cpp.o.d"
  "/root/repo/src/interp/StaticEnginePlain.cpp" "src/CMakeFiles/stird.dir/interp/StaticEnginePlain.cpp.o" "gcc" "src/CMakeFiles/stird.dir/interp/StaticEnginePlain.cpp.o.d"
  "/root/repo/src/ram/Clone.cpp" "src/CMakeFiles/stird.dir/ram/Clone.cpp.o" "gcc" "src/CMakeFiles/stird.dir/ram/Clone.cpp.o.d"
  "/root/repo/src/ram/Ram.cpp" "src/CMakeFiles/stird.dir/ram/Ram.cpp.o" "gcc" "src/CMakeFiles/stird.dir/ram/Ram.cpp.o.d"
  "/root/repo/src/ram/RamPrinter.cpp" "src/CMakeFiles/stird.dir/ram/RamPrinter.cpp.o" "gcc" "src/CMakeFiles/stird.dir/ram/RamPrinter.cpp.o.d"
  "/root/repo/src/ram/Transforms.cpp" "src/CMakeFiles/stird.dir/ram/Transforms.cpp.o" "gcc" "src/CMakeFiles/stird.dir/ram/Transforms.cpp.o.d"
  "/root/repo/src/synth/CompilerDriver.cpp" "src/CMakeFiles/stird.dir/synth/CompilerDriver.cpp.o" "gcc" "src/CMakeFiles/stird.dir/synth/CompilerDriver.cpp.o.d"
  "/root/repo/src/synth/CppSynthesizer.cpp" "src/CMakeFiles/stird.dir/synth/CppSynthesizer.cpp.o" "gcc" "src/CMakeFiles/stird.dir/synth/CppSynthesizer.cpp.o.d"
  "/root/repo/src/translate/AstToRam.cpp" "src/CMakeFiles/stird.dir/translate/AstToRam.cpp.o" "gcc" "src/CMakeFiles/stird.dir/translate/AstToRam.cpp.o.d"
  "/root/repo/src/translate/IndexSelection.cpp" "src/CMakeFiles/stird.dir/translate/IndexSelection.cpp.o" "gcc" "src/CMakeFiles/stird.dir/translate/IndexSelection.cpp.o.d"
  "/root/repo/src/util/Csv.cpp" "src/CMakeFiles/stird.dir/util/Csv.cpp.o" "gcc" "src/CMakeFiles/stird.dir/util/Csv.cpp.o.d"
  "/root/repo/src/util/SymbolTable.cpp" "src/CMakeFiles/stird.dir/util/SymbolTable.cpp.o" "gcc" "src/CMakeFiles/stird.dir/util/SymbolTable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
