file(REMOVE_RECURSE
  "libstird.a"
)
