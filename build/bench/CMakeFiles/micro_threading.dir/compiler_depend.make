# Empty compiler generated dependencies file for micro_threading.
# This may be replaced when dependencies are built.
