file(REMOVE_RECURSE
  "CMakeFiles/fig19_superinstructions.dir/fig19_superinstructions.cpp.o"
  "CMakeFiles/fig19_superinstructions.dir/fig19_superinstructions.cpp.o.d"
  "fig19_superinstructions"
  "fig19_superinstructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_superinstructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
