# Empty dependencies file for fig19_superinstructions.
# This may be replaced when dependencies are built.
