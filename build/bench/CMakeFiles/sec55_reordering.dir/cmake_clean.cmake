file(REMOVE_RECURSE
  "CMakeFiles/sec55_reordering.dir/sec55_reordering.cpp.o"
  "CMakeFiles/sec55_reordering.dir/sec55_reordering.cpp.o.d"
  "sec55_reordering"
  "sec55_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec55_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
