# Empty dependencies file for sec55_reordering.
# This may be replaced when dependencies are built.
