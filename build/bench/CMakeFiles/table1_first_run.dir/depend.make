# Empty dependencies file for table1_first_run.
# This may be replaced when dependencies are built.
