file(REMOVE_RECURSE
  "CMakeFiles/table1_first_run.dir/table1_first_run.cpp.o"
  "CMakeFiles/table1_first_run.dir/table1_first_run.cpp.o.d"
  "table1_first_run"
  "table1_first_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_first_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
