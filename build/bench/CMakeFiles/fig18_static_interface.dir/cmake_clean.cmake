file(REMOVE_RECURSE
  "CMakeFiles/fig18_static_interface.dir/fig18_static_interface.cpp.o"
  "CMakeFiles/fig18_static_interface.dir/fig18_static_interface.cpp.o.d"
  "fig18_static_interface"
  "fig18_static_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_static_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
