# Empty dependencies file for micro_der.
# This may be replaced when dependencies are built.
