file(REMOVE_RECURSE
  "CMakeFiles/micro_der.dir/micro_der.cpp.o"
  "CMakeFiles/micro_der.dir/micro_der.cpp.o.d"
  "micro_der"
  "micro_der.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_der.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
