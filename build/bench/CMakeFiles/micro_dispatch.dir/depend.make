# Empty dependencies file for micro_dispatch.
# This may be replaced when dependencies are built.
