file(REMOVE_RECURSE
  "CMakeFiles/fig15_overall.dir/fig15_overall.cpp.o"
  "CMakeFiles/fig15_overall.dir/fig15_overall.cpp.o.d"
  "fig15_overall"
  "fig15_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
