# Empty dependencies file for sec55_register_pressure.
# This may be replaced when dependencies are built.
