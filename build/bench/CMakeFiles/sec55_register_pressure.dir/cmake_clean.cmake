file(REMOVE_RECURSE
  "CMakeFiles/sec55_register_pressure.dir/sec55_register_pressure.cpp.o"
  "CMakeFiles/sec55_register_pressure.dir/sec55_register_pressure.cpp.o.d"
  "sec55_register_pressure"
  "sec55_register_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec55_register_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
