file(REMOVE_RECURSE
  "../lib/libbench_workloads.a"
  "../lib/libbench_workloads.pdb"
  "CMakeFiles/bench_workloads.dir/workloads/Harness.cpp.o"
  "CMakeFiles/bench_workloads.dir/workloads/Harness.cpp.o.d"
  "CMakeFiles/bench_workloads.dir/workloads/Workloads.cpp.o"
  "CMakeFiles/bench_workloads.dir/workloads/Workloads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
