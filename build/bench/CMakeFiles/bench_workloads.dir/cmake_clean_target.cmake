file(REMOVE_RECURSE
  "../lib/libbench_workloads.a"
)
