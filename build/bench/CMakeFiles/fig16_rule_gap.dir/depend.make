# Empty dependencies file for fig16_rule_gap.
# This may be replaced when dependencies are built.
