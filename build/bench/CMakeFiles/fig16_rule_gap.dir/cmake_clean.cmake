file(REMOVE_RECURSE
  "CMakeFiles/fig16_rule_gap.dir/fig16_rule_gap.cpp.o"
  "CMakeFiles/fig16_rule_gap.dir/fig16_rule_gap.cpp.o.d"
  "fig16_rule_gap"
  "fig16_rule_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_rule_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
