file(REMOVE_RECURSE
  "CMakeFiles/test_frontend.dir/ast/FuzzParserTest.cpp.o"
  "CMakeFiles/test_frontend.dir/ast/FuzzParserTest.cpp.o.d"
  "CMakeFiles/test_frontend.dir/ast/LexerTest.cpp.o"
  "CMakeFiles/test_frontend.dir/ast/LexerTest.cpp.o.d"
  "CMakeFiles/test_frontend.dir/ast/ParserTest.cpp.o"
  "CMakeFiles/test_frontend.dir/ast/ParserTest.cpp.o.d"
  "CMakeFiles/test_frontend.dir/ast/SemanticTest.cpp.o"
  "CMakeFiles/test_frontend.dir/ast/SemanticTest.cpp.o.d"
  "test_frontend"
  "test_frontend.pdb"
  "test_frontend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
