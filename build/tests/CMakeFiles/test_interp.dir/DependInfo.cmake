
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/interp/EngineTest.cpp" "tests/CMakeFiles/test_interp.dir/interp/EngineTest.cpp.o" "gcc" "tests/CMakeFiles/test_interp.dir/interp/EngineTest.cpp.o.d"
  "/root/repo/tests/interp/NodePrinterTest.cpp" "tests/CMakeFiles/test_interp.dir/interp/NodePrinterTest.cpp.o" "gcc" "tests/CMakeFiles/test_interp.dir/interp/NodePrinterTest.cpp.o.d"
  "/root/repo/tests/interp/OptimizationTest.cpp" "tests/CMakeFiles/test_interp.dir/interp/OptimizationTest.cpp.o" "gcc" "tests/CMakeFiles/test_interp.dir/interp/OptimizationTest.cpp.o.d"
  "/root/repo/tests/interp/RelationTest.cpp" "tests/CMakeFiles/test_interp.dir/interp/RelationTest.cpp.o" "gcc" "tests/CMakeFiles/test_interp.dir/interp/RelationTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stird.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
