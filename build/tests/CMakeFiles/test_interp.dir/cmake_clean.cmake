file(REMOVE_RECURSE
  "CMakeFiles/test_interp.dir/interp/EngineTest.cpp.o"
  "CMakeFiles/test_interp.dir/interp/EngineTest.cpp.o.d"
  "CMakeFiles/test_interp.dir/interp/NodePrinterTest.cpp.o"
  "CMakeFiles/test_interp.dir/interp/NodePrinterTest.cpp.o.d"
  "CMakeFiles/test_interp.dir/interp/OptimizationTest.cpp.o"
  "CMakeFiles/test_interp.dir/interp/OptimizationTest.cpp.o.d"
  "CMakeFiles/test_interp.dir/interp/RelationTest.cpp.o"
  "CMakeFiles/test_interp.dir/interp/RelationTest.cpp.o.d"
  "test_interp"
  "test_interp.pdb"
  "test_interp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
