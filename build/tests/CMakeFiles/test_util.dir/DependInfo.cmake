
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/CsvTest.cpp" "tests/CMakeFiles/test_util.dir/util/CsvTest.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/CsvTest.cpp.o.d"
  "/root/repo/tests/util/OrderTest.cpp" "tests/CMakeFiles/test_util.dir/util/OrderTest.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/OrderTest.cpp.o.d"
  "/root/repo/tests/util/SymbolTableTest.cpp" "tests/CMakeFiles/test_util.dir/util/SymbolTableTest.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/SymbolTableTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stird.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
