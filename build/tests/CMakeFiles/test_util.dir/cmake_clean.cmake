file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/util/CsvTest.cpp.o"
  "CMakeFiles/test_util.dir/util/CsvTest.cpp.o.d"
  "CMakeFiles/test_util.dir/util/OrderTest.cpp.o"
  "CMakeFiles/test_util.dir/util/OrderTest.cpp.o.d"
  "CMakeFiles/test_util.dir/util/SymbolTableTest.cpp.o"
  "CMakeFiles/test_util.dir/util/SymbolTableTest.cpp.o.d"
  "test_util"
  "test_util.pdb"
  "test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
