# Empty dependencies file for test_der.
# This may be replaced when dependencies are built.
