file(REMOVE_RECURSE
  "CMakeFiles/test_der.dir/der/BTreeSetTest.cpp.o"
  "CMakeFiles/test_der.dir/der/BTreeSetTest.cpp.o.d"
  "CMakeFiles/test_der.dir/der/BrieTest.cpp.o"
  "CMakeFiles/test_der.dir/der/BrieTest.cpp.o.d"
  "CMakeFiles/test_der.dir/der/EquivalenceRelationTest.cpp.o"
  "CMakeFiles/test_der.dir/der/EquivalenceRelationTest.cpp.o.d"
  "test_der"
  "test_der.pdb"
  "test_der[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_der.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
