# Empty dependencies file for test_ram.
# This may be replaced when dependencies are built.
