file(REMOVE_RECURSE
  "CMakeFiles/test_ram.dir/ram/TransformsTest.cpp.o"
  "CMakeFiles/test_ram.dir/ram/TransformsTest.cpp.o.d"
  "test_ram"
  "test_ram.pdb"
  "test_ram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
