
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/CrossEngineTest.cpp" "tests/CMakeFiles/test_core.dir/core/CrossEngineTest.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/CrossEngineTest.cpp.o.d"
  "/root/repo/tests/core/ProgramTest.cpp" "tests/CMakeFiles/test_core.dir/core/ProgramTest.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/ProgramTest.cpp.o.d"
  "/root/repo/tests/core/RobustnessTest.cpp" "tests/CMakeFiles/test_core.dir/core/RobustnessTest.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/RobustnessTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stird.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
