file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/CrossEngineTest.cpp.o"
  "CMakeFiles/test_core.dir/core/CrossEngineTest.cpp.o.d"
  "CMakeFiles/test_core.dir/core/ProgramTest.cpp.o"
  "CMakeFiles/test_core.dir/core/ProgramTest.cpp.o.d"
  "CMakeFiles/test_core.dir/core/RobustnessTest.cpp.o"
  "CMakeFiles/test_core.dir/core/RobustnessTest.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
