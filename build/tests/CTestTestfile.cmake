# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_der[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_ram[1]_include.cmake")
include("/root/repo/build/tests/test_translate[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
