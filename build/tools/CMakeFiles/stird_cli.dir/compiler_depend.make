# Empty compiler generated dependencies file for stird_cli.
# This may be replaced when dependencies are built.
