file(REMOVE_RECURSE
  "CMakeFiles/stird_cli.dir/stird.cpp.o"
  "CMakeFiles/stird_cli.dir/stird.cpp.o.d"
  "stird"
  "stird.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stird_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
