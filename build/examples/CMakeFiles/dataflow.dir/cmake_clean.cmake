file(REMOVE_RECURSE
  "CMakeFiles/dataflow.dir/dataflow.cpp.o"
  "CMakeFiles/dataflow.dir/dataflow.cpp.o.d"
  "dataflow"
  "dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
