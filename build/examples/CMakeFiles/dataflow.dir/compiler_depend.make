# Empty compiler generated dependencies file for dataflow.
# This may be replaced when dependencies are built.
