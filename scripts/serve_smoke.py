#!/usr/bin/env python3
"""CI smoke test for the serving layer (stird-wire-v2).

Starts stird-serve on examples/tc.dl over a Unix socket and checks the
protocol end to end — not just exit codes:

 1. a pipelined conversation through stird-client --pipeline (every
    request written before any reply is read; the client verifies the
    echoed ids come back in request order): the loaded edges must
    produce exactly the transitive-closure paths, a repeated query must
    be served from the result cache, a retract plus a mixed
    insert/retract load must be incrementally maintained and re-queried
    exactly, and the stats must report the v2 protocol, the tenant, the
    cache counters, the server counters and maintenance health;
 2. a small load generator speaking the framing directly over several
    concurrent connections, recording per-request round-trip latency
    and writing a JSON artifact (p50/p99/max) for CI to upload;
 3. a scrape of the --metrics-port Prometheus endpoint, validated with
    check_observability.py --metrics and cross-checked against the
    conversation (request counts, cache hits); the exposition is written
    next to the latency artifact for CI to upload;
 4. a clean shutdown that terminates the server.

Usage: scripts/serve_smoke.py <stird-serve> <stird-client> [latency.json]
"""

import json
import socket
import struct
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import check_observability

EDGES = [[1, 2], [2, 3], [3, 4], [4, 5]]
LOADGEN_CONNECTIONS = 8
LOADGEN_QUERIES = 400
POINT_QUERY = {"cmd": "query", "relation": "path", "pattern": [1, None]}


def expected_paths(edges):
    """Transitive closure over the edge list, as sorted string tuples."""
    paths = {(a, b) for a, b in edges}
    while True:
        new = {(a, d) for a, b in paths for c, d in paths if b == c} - paths
        if not new:
            break
        paths |= new
    return sorted([str(a), str(b)] for a, b in paths)


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def send_frame(sock, obj):
    data = json.dumps(obj).encode()
    sock.sendall(struct.pack(">I", len(data)) + data)


def recv_frame(sock):
    buf = b""
    while len(buf) < 4:
        chunk = sock.recv(4 - len(buf))
        if not chunk:
            fail("connection closed mid-frame")
        buf += chunk
    (length,) = struct.unpack(">I", buf)
    body = b""
    while len(body) < length:
        chunk = sock.recv(length - len(body))
        if not chunk:
            fail("connection closed mid-frame")
        body += chunk
    return json.loads(body)


def load_generator(socket_path, artifact):
    """Round-robins point queries over concurrent connections, measuring
    per-request round-trip latency; writes p50/p99 to the artifact."""
    conns = []
    for _ in range(LOADGEN_CONNECTIONS):
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.connect(socket_path)
        conns.append(s)

    latencies_us = []
    cached = 0
    for i in range(LOADGEN_QUERIES):
        s = conns[i % len(conns)]
        start = time.perf_counter()
        send_frame(s, POINT_QUERY)
        reply = recv_frame(s)
        latencies_us.append((time.perf_counter() - start) * 1e6)
        if not reply.get("ok"):
            fail(f"load-gen reply not ok: {reply}")
        if reply.get("cached"):
            cached += 1
    for s in conns:
        s.close()

    latencies_us.sort()

    def percentile(p):
        return latencies_us[int(p * (len(latencies_us) - 1))]

    summary = {
        "connections": LOADGEN_CONNECTIONS,
        "queries": LOADGEN_QUERIES,
        "p50_us": round(percentile(0.50), 1),
        "p99_us": round(percentile(0.99), 1),
        "max_us": round(latencies_us[-1], 1),
        "cached_fraction": round(cached / LOADGEN_QUERIES, 4),
    }
    if artifact:
        Path(artifact).parent.mkdir(parents=True, exist_ok=True)
        Path(artifact).write_text(json.dumps(summary, indent=2) + "\n")
    # Everything after the first miss per publish window should hit.
    if cached < LOADGEN_QUERIES // 2:
        fail(f"load-gen cache hit rate too low: {summary}")
    return summary


def free_tcp_port():
    """A TCP port that was free a moment ago (fine for a CI smoke run)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def scrape_metrics(port, expected_requests, artifact, tmp):
    """Fetches /metrics, validates the exposition and cross-checks it
    against the conversation that just happened."""
    url = f"http://127.0.0.1:{port}/metrics"
    with urllib.request.urlopen(url, timeout=30) as response:
        if response.status != 200:
            fail(f"metrics endpoint answered {response.status}")
        content_type = response.headers.get("Content-Type", "")
        if not content_type.startswith("text/plain; version=0.0.4"):
            fail(f"unexpected metrics content type: {content_type}")
        text = response.read().decode()

    scrape_path = Path(tmp) / "metrics.txt"
    scrape_path.write_text(text)
    totals = check_observability.check_metrics(str(scrape_path))

    if totals.get("stird_requests_dispatched_total") != expected_requests:
        fail(f"expected {expected_requests} dispatched requests, endpoint "
             f"reports {totals.get('stird_requests_dispatched_total')}")
    if totals.get("stird_cache_hits_total", 0) < 1:
        fail("endpoint reports no cache hits after the repeat queries")
    if totals.get("stird_maintenance_enabled", 0) != 1:
        fail("endpoint reports maintenance disabled for tc.dl")
    if totals.get("stird_maintenance_batches_total") != 3:
        fail("endpoint does not report three maintained batches")
    if totals.get("stird_maintenance_deleted_total") != 1:
        fail("endpoint does not report the retracted tuple")
    if totals.get("stird_maintenance_fallbacks_total", 0) != 0:
        fail("endpoint reports maintenance fallbacks on an eligible run")
    if "stird_request_latency_micros_bucket" not in text:
        fail("no latency histogram in the scrape")
    if artifact:
        Path(artifact).parent.mkdir(parents=True, exist_ok=True)
        (Path(artifact).parent / "metrics.txt").write_text(text)

    # Anything but GET /metrics is a 404, not a hang or a crash.
    try:
        urllib.request.urlopen(f"http://127.0.0.1:{port}/other", timeout=30)
        fail("unknown metrics target did not answer 404")
    except urllib.error.HTTPError as error:
        if error.code != 404:
            fail(f"unknown metrics target answered {error.code}")


def main():
    if len(sys.argv) not in (3, 4):
        fail(f"usage: {sys.argv[0]} <stird-serve> <stird-client> "
             "[latency.json]")
    serve, client = sys.argv[1], sys.argv[2]
    artifact = sys.argv[3] if len(sys.argv) == 4 else None
    repo = Path(__file__).resolve().parent.parent
    program = repo / "examples" / "tc.dl"

    with tempfile.TemporaryDirectory() as tmp:
        socket_path = str(Path(tmp) / "stird.sock")
        metrics_port = free_tcp_port()
        server = subprocess.Popen(
            [serve, str(program), "--socket", socket_path,
             "--metrics-port", str(metrics_port)],
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            # The server prints its listening line once ready; the socket
            # file appearing is the portable readiness signal.
            for _ in range(200):
                if Path(socket_path).exists():
                    break
                if server.poll() is not None:
                    fail(f"server exited early: {server.stderr.read()}")
                time.sleep(0.05)
            else:
                fail("server never created its socket")

            requests = [
                {"cmd": "load", "facts": {"edge": EDGES}},
                {"cmd": "query", "relation": "path", "pattern": [1, None]},
                {"cmd": "query", "relation": "path"},
                # Identical to the first query: must hit the result cache.
                {"cmd": "query", "relation": "path", "pattern": [1, None]},
                {"cmd": "stats"},
                # Retraction round trip: delete one edge, the closure
                # shrinks; a mixed load restores it while retracting an
                # absent tuple (a counted no-op); the closure is back.
                {"cmd": "retract", "facts": {"edge": [[2, 3]]}},
                {"cmd": "query", "relation": "path"},
                {"cmd": "load", "facts": {"edge": [[2, 3]]},
                 "retract": {"edge": [[9, 9]]}},
                {"cmd": "query", "relation": "path"},
                {"cmd": "stats"},
            ]
            result = subprocess.run(
                [client, "--socket", socket_path, "--pipeline"]
                + [json.dumps(r) for r in requests],
                capture_output=True,
                text=True,
                timeout=60,
            )
            if result.returncode != 0:
                fail(
                    f"client exited {result.returncode}\n"
                    f"stdout: {result.stdout}\nstderr: {result.stderr}"
                )
            replies = [
                json.loads(line)
                for line in result.stdout.splitlines()
                if line.strip()
            ]
            if len(replies) != len(requests):
                fail(f"expected {len(requests)} replies, got {len(replies)}")
            for i, reply in enumerate(replies):
                if not reply.get("ok"):
                    fail(f"reply not ok: {reply}")
                if "micros" not in reply:
                    fail(f"reply lacks micros: {reply}")
                if reply.get("id") != i:
                    fail(f"reply {i} echoed id {reply.get('id')}")

            (load, from1, full, repeat, stats,
             retract, shrunk, mixed, restored, stats2) = replies
            if load["inserted"] != len(EDGES) or load["duplicates"] != 0:
                fail(f"unexpected load counts: {load}")
            if not load["incremental"]:
                fail("tc.dl should be update-eligible (incremental)")

            want = expected_paths(EDGES)
            if sorted(full["tuples"]) != want:
                fail(f"full query mismatch: {full['tuples']} != {want}")
            want_from1 = [t for t in want if t[0] == "1"]
            if sorted(from1["tuples"]) != want_from1:
                fail(f"bound query mismatch: {from1['tuples']}")
            if from1["plan"]["prefix_len"] < 1:
                fail(f"bound query used no index prefix: {from1['plan']}")

            if from1["cached"]:
                fail("first query must be a cache miss")
            if not repeat["cached"]:
                fail("repeated query must be served from the cache")
            if repeat["tuples"] != from1["tuples"]:
                fail("cached reply diverged from the cold reply")

            if stats["protocol"] != "stird-wire-v2":
                fail(f"unexpected protocol: {stats['protocol']}")
            if stats["tenant"] != "default" or stats["tenants"] != ["default"]:
                fail(f"unexpected tenant routing: {stats}")
            if stats["cache"]["hits"] < 1 or stats["cache"]["misses"] < 1:
                fail(f"unexpected cache counters: {stats['cache']}")
            if stats["server"]["connections_accepted"] < 1:
                fail(f"unexpected server counters: {stats['server']}")
            sizes = {r["name"]: r["size"] for r in stats["relations"]}
            if sizes != {"edge": len(EDGES), "path": len(want)}:
                fail(f"unexpected relation sizes: {sizes}")
            latency = stats["latency"]
            if latency["load"]["count"] != 1 or latency["query"]["count"] != 3:
                fail(f"unexpected latency counts: {latency}")

            # Retraction leg: the closure must shrink to exactly the
            # closure of the remaining edges, then come back.
            if retract["deleted"] != 1 or retract["missing"] != 0:
                fail(f"unexpected retract counts: {retract}")
            if not retract["maintained"] or not retract["incremental"]:
                fail(f"retract was not incrementally maintained: {retract}")
            want_shrunk = expected_paths([e for e in EDGES if e != [2, 3]])
            if sorted(shrunk["tuples"]) != want_shrunk:
                fail(f"post-retract query mismatch: {shrunk['tuples']}")
            if mixed["inserted"] != 1 or mixed["deleted"] != 0 \
                    or mixed["missing"] != 1:
                fail(f"unexpected mixed-load counts: {mixed}")
            if sorted(restored["tuples"]) != want:
                fail(f"re-insert did not restore the closure: "
                     f"{restored['tuples']}")

            maint = stats2["maintenance"]
            if not maint["enabled"]:
                fail(f"tc.dl should be maintenance-eligible: {maint}")
            if maint["batches"] != 3 or maint["deleted"] != 1:
                fail(f"unexpected maintenance telemetry: {maint}")
            if maint["rebuild_fallbacks"] != 0 or maint["fallbacks"]:
                fail(f"unexpected maintenance fallbacks: {maint}")
            if stats2["epoch"] != 3:
                fail(f"expected epoch 3 after three publishes: {stats2}")
            sizes2 = {r["name"]: r["size"] for r in stats2["relations"]}
            if sizes2 != {"edge": len(EDGES), "path": len(want)}:
                fail(f"unexpected relation sizes after retract leg: {sizes2}")

            summary = load_generator(socket_path, artifact)

            scrape_metrics(metrics_port,
                           len(requests) + LOADGEN_QUERIES, artifact, tmp)

            shutdown = subprocess.run(
                [client, "--socket", socket_path,
                 json.dumps({"cmd": "shutdown"})],
                capture_output=True,
                text=True,
                timeout=60,
            )
            if shutdown.returncode != 0:
                fail(f"shutdown failed: {shutdown.stderr}")

            if server.wait(timeout=30) != 0:
                fail(f"server exited nonzero: {server.stderr.read()}")
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()

    print("serve_smoke: OK "
          f"({len(EDGES)} edges -> {len(expected_paths(EDGES))} paths, "
          "pipelined load/query/stats round-tripped, "
          "retract and mixed load incrementally maintained, "
          f"load-gen p99 {summary['p99_us']}us over "
          f"{LOADGEN_CONNECTIONS} connections, "
          "metrics scrape validated, clean shutdown)")


if __name__ == "__main__":
    main()
