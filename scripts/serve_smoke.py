#!/usr/bin/env python3
"""CI smoke test for the serving layer.

Starts stird-serve on examples/tc.dl over a Unix socket, drives one full
load / query / stats / shutdown conversation through stird-client, and
checks the replies — not just exit codes: the loaded edges must produce
exactly the transitive-closure paths, the stats must report the protocol
version and the loaded sizes, and shutdown must terminate the server.

Usage: scripts/serve_smoke.py <stird-serve> <stird-client>
"""

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

EDGES = [[1, 2], [2, 3], [3, 4], [4, 5]]


def expected_paths(edges):
    """Transitive closure over the edge list, as sorted string tuples."""
    paths = {(a, b) for a, b in edges}
    while True:
        new = {(a, d) for a, b in paths for c, d in paths if b == c} - paths
        if not new:
            break
        paths |= new
    return sorted([str(a), str(b)] for a, b in paths)


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} <stird-serve> <stird-client>")
    serve, client = sys.argv[1], sys.argv[2]
    repo = Path(__file__).resolve().parent.parent
    program = repo / "examples" / "tc.dl"

    with tempfile.TemporaryDirectory() as tmp:
        socket_path = str(Path(tmp) / "stird.sock")
        server = subprocess.Popen(
            [serve, str(program), "--socket", socket_path],
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            # The server prints its listening line once ready; the socket
            # file appearing is the portable readiness signal.
            for _ in range(200):
                if Path(socket_path).exists():
                    break
                if server.poll() is not None:
                    fail(f"server exited early: {server.stderr.read()}")
                time.sleep(0.05)
            else:
                fail("server never created its socket")

            requests = [
                {"cmd": "load", "facts": {"edge": EDGES}},
                {"cmd": "query", "relation": "path", "pattern": [1, None]},
                {"cmd": "query", "relation": "path"},
                {"cmd": "stats"},
                {"cmd": "shutdown"},
            ]
            result = subprocess.run(
                [client, "--socket", socket_path]
                + [json.dumps(r) for r in requests],
                capture_output=True,
                text=True,
                timeout=60,
            )
            if result.returncode != 0:
                fail(
                    f"client exited {result.returncode}\n"
                    f"stdout: {result.stdout}\nstderr: {result.stderr}"
                )
            replies = [
                json.loads(line)
                for line in result.stdout.splitlines()
                if line.strip()
            ]
            if len(replies) != len(requests):
                fail(f"expected {len(requests)} replies, got {len(replies)}")
            for reply in replies:
                if not reply.get("ok"):
                    fail(f"reply not ok: {reply}")
                if "micros" not in reply:
                    fail(f"reply lacks micros: {reply}")

            load, from1, full, stats, _shutdown = replies
            if load["inserted"] != len(EDGES) or load["duplicates"] != 0:
                fail(f"unexpected load counts: {load}")
            if not load["incremental"]:
                fail("tc.dl should be update-eligible (incremental)")

            want = expected_paths(EDGES)
            if sorted(full["tuples"]) != want:
                fail(f"full query mismatch: {full['tuples']} != {want}")
            want_from1 = [t for t in want if t[0] == "1"]
            if sorted(from1["tuples"]) != want_from1:
                fail(f"bound query mismatch: {from1['tuples']}")
            if from1["plan"]["prefix_len"] < 1:
                fail(f"bound query used no index prefix: {from1['plan']}")

            if stats["protocol"] != "stird-wire-v1":
                fail(f"unexpected protocol: {stats['protocol']}")
            sizes = {r["name"]: r["size"] for r in stats["relations"]}
            if sizes != {"edge": len(EDGES), "path": len(want)}:
                fail(f"unexpected relation sizes: {sizes}")
            latency = stats["latency"]
            if latency["load"]["count"] != 1 or latency["query"]["count"] != 2:
                fail(f"unexpected latency counts: {latency}")

            if server.wait(timeout=30) != 0:
                fail(f"server exited nonzero: {server.stderr.read()}")
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()

    print("serve_smoke: OK "
          f"({len(EDGES)} edges -> {len(expected_paths(EDGES))} paths, "
          "load/query/stats/shutdown round-tripped)")


if __name__ == "__main__":
    main()
