#!/usr/bin/env python3
"""Validates stird observability artifacts.

Three modes, standard library only; exits non-zero with a diagnostic on
the first violation. Used by CI after running a profiled example program
and after scraping a serving instance:

    python3 scripts/check_observability.py profile.json [trace.json]
    python3 scripts/check_observability.py --metrics metrics.txt

The --metrics mode validates a Prometheus text-exposition scrape from
the --metrics-port endpoint (HELP/TYPE grouping, sample syntax,
non-negative counters, cumulative ascending histogram buckets closed by
+Inf) and cross-checks the families against each other: every dispatched
request must appear in exactly one latency-histogram series.
"""

import json
import math
import sys

PROFILE_SCHEMA = "stird-profile-v2"

PROFILE_TOP_KEYS = [
    "schema", "program", "backend", "threads", "total_seconds",
    "dispatches", "strata", "relations",
]
RULE_KEYS = [
    "label", "relation", "stratum", "version", "par_group", "recursive",
    "seconds", "invocations", "dispatches", "delta_tuples", "iterations",
]
ITERATION_KEYS = ["seconds", "dispatches", "delta_tuples"]
RELATION_KEYS = [
    "name", "arity", "kind", "indexes", "final_size", "peak_size",
    "inserts", "inserts_new", "contains", "scans", "scan_tuples",
    "index_scans", "index_scan_hits", "index_scan_tuples", "reorders",
    "point_lookups", "range_scans", "col0_min", "col0_max",
]
RELATION_KINDS = ["btree", "brie", "art", "eqrel", "legacy"]


def fail(message):
    print(f"check_observability: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def require_keys(obj, keys, what):
    for key in keys:
        if key not in obj:
            fail(f"{what} is missing key '{key}' (has: {sorted(obj)})")


def check_profile(path):
    with open(path) as f:
        doc = json.load(f)
    require_keys(doc, PROFILE_TOP_KEYS, "profile document")
    if doc["schema"] != PROFILE_SCHEMA:
        fail(f"unexpected schema '{doc['schema']}'")
    if doc["threads"] < 1:
        fail("threads < 1")

    rules = 0
    for stratum in doc["strata"]:
        require_keys(stratum, ["id", "seconds", "recursive", "rules"],
                     "stratum")
        for rule in stratum["rules"]:
            require_keys(rule, RULE_KEYS, f"rule {rule.get('label')!r}")
            rules += 1
            if rule["stratum"] != stratum["id"]:
                fail(f"rule {rule['label']!r} filed under stratum "
                     f"{stratum['id']} but claims {rule['stratum']}")
            if rule["invocations"] != len(rule["iterations"]):
                fail(f"rule {rule['label']!r}: {rule['invocations']} "
                     f"invocations vs {len(rule['iterations'])} samples")
            for sample in rule["iterations"]:
                require_keys(sample, ITERATION_KEYS, "iteration sample")
            delta = sum(s["delta_tuples"] for s in rule["iterations"])
            if delta != rule["delta_tuples"]:
                fail(f"rule {rule['label']!r}: iteration deltas sum to "
                     f"{delta}, rule total is {rule['delta_tuples']}")
    if rules == 0:
        fail("profile contains no rules")

    if not doc["relations"]:
        fail("profile contains no relations")
    for rel in doc["relations"]:
        require_keys(rel, RELATION_KEYS, f"relation {rel.get('name')!r}")
        if rel["peak_size"] < rel["final_size"]:
            fail(f"relation {rel['name']!r}: peak_size {rel['peak_size']} "
                 f"< final_size {rel['final_size']}")
        if rel["inserts_new"] > rel["inserts"]:
            # Equivalence relations may close over more pairs than were
            # inserted; everything else dedups.
            if rel["kind"] != "eqrel":
                fail(f"relation {rel['name']!r}: inserts_new "
                     f"{rel['inserts_new']} > inserts {rel['inserts']}")
        if rel["index_scan_hits"] > rel["index_scans"]:
            fail(f"relation {rel['name']!r}: more index-scan hits than "
                 "initiations")
        if rel["kind"] not in RELATION_KINDS:
            fail(f"relation {rel['name']!r}: unknown kind {rel['kind']!r}")
        # v2 access-pattern counters: classified once per search
        # initiation, so they can never outnumber the searches.
        if rel["point_lookups"] + rel["range_scans"] > \
                rel["index_scans"] + rel["contains"]:
            fail(f"relation {rel['name']!r}: point_lookups + range_scans "
                 "exceed index_scans + contains")
        if rel["col0_max"] < rel["col0_min"] and rel["final_size"] > 0:
            fail(f"relation {rel['name']!r}: non-empty but col0_max "
                 f"{rel['col0_max']} < col0_min {rel['col0_min']}")

    names = {rel["name"] for rel in doc["relations"]}
    for name, decision in doc.get("substrate_decisions", {}).items():
        if name not in names:
            fail(f"substrate decision for unknown relation {name!r}")
        if not isinstance(decision, str) or not decision:
            fail(f"substrate decision for {name!r} is not a string")
    print(f"check_observability: profile OK "
          f"({rules} rules, {len(doc['relations'])} relations)")
    return doc


def check_trace(path, expect_workers):
    with open(path) as f:
        doc = json.load(f)
    if "traceEvents" not in doc:
        fail("trace has no traceEvents")

    depth = {}        # tid -> open span count
    last_ts = {}      # tid -> last timestamp
    named_tids = set()
    span_tids = set()
    prev_ts = None
    spans = 0
    for event in doc["traceEvents"]:
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") == "thread_name":
                named_tids.add(event["tid"])
            continue
        if phase not in ("B", "E"):
            fail(f"unexpected phase {phase!r}")
        tid, ts = event["tid"], event["ts"]
        span_tids.add(tid)
        if prev_ts is not None and ts < prev_ts:
            fail(f"timestamps not sorted: {ts} after {prev_ts}")
        prev_ts = ts
        if tid in last_ts and ts < last_ts[tid]:
            fail(f"track {tid} went backwards in time")
        last_ts[tid] = ts
        if phase == "B":
            if "name" not in event:
                fail("B event without a name")
            depth[tid] = depth.get(tid, 0) + 1
            spans += 1
        else:
            depth[tid] = depth.get(tid, 0) - 1
            if depth[tid] < 0:
                fail(f"track {tid}: E without matching B")
    for tid, open_spans in depth.items():
        if open_spans != 0:
            fail(f"track {tid}: {open_spans} unbalanced span(s)")
    unnamed = span_tids - named_tids
    if unnamed:
        fail(f"tracks without thread_name metadata: {sorted(unnamed)}")
    if 0 not in span_tids:
        fail("no main-thread track in trace")
    if expect_workers and len(span_tids) < 2:
        fail("multi-threaded run produced no worker tracks")
    print(f"check_observability: trace OK "
          f"({spans} spans on {len(span_tids)} track(s))")


def check_metrics(path):
    """Validates a Prometheus 0.0.4 text scrape and its cross-family
    consistency; returns {sample name: summed value across label sets}."""
    with open(path) as f:
        lines = f.read().splitlines()

    typeof = {}        # family -> declared type
    current = None     # family whose sample group is open
    totals = {}        # sample name -> value summed over label sets
    hist_state = {}    # histogram series key -> (last le, last count)
    inf_counts = {}    # histogram family -> sum of +Inf bucket counts
    samples = 0
    for lineno, line in enumerate(lines, 1):
        where = f"{path}:{lineno}"
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            fields = line[len("# TYPE "):].split()
            if len(fields) != 2:
                fail(f"malformed TYPE line ({where})")
            family, kind = fields
            if kind not in ("counter", "gauge", "histogram"):
                fail(f"unknown type {kind!r} ({where})")
            if family in typeof:
                fail(f"family {family!r} declared twice ({where})")
            typeof[family] = kind
            current = family
            continue
        if line.startswith("#"):
            fail(f"unexpected comment ({where})")

        name = line.split("{", 1)[0].split(" ", 1)[0]
        if not name:
            fail(f"empty metric name ({where})")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and typeof.get(base) == "histogram":
                family = base
                break
        if family not in typeof:
            fail(f"sample {name!r} has no TYPE header ({where})")
        if family != current:
            fail(f"sample {name!r} outside its family group ({where})")
        try:
            value = float(line.rsplit(" ", 1)[1])
        except (IndexError, ValueError):
            fail(f"unparseable sample ({where})")
        if typeof[family] in ("counter", "histogram") and value < 0:
            fail(f"negative counter sample ({where})")
        totals[name] = totals.get(name, 0.0) + value
        samples += 1

        if typeof[family] == "histogram" and name == family + "_bucket":
            le_at = line.find('le="')
            if le_at < 0:
                fail(f"bucket sample without le ({where})")
            le_text = line[le_at + 4:line.index('"', le_at + 4)]
            le = math.inf if le_text == "+Inf" else float(le_text)
            series = line[:le_at]
            if series in hist_state:
                last_le, last_count = hist_state[series]
                if le <= last_le:
                    fail(f"bucket thresholds not ascending ({where})")
                if value < last_count:
                    fail(f"bucket counts not cumulative ({where})")
            hist_state[series] = (le, value)
            if le == math.inf:
                inf_counts[family] = inf_counts.get(family, 0.0) + value

    for series, (le, _) in hist_state.items():
        if le != math.inf:
            fail(f"histogram series {series!r}... never closed with +Inf")

    # Cross-family consistency.
    for family, kind in typeof.items():
        if kind != "histogram" or family + "_count" not in totals:
            continue
        if totals[family + "_count"] != inf_counts.get(family):
            fail(f"{family}: _count {totals[family + '_count']} != +Inf "
                 f"bucket total {inf_counts.get(family)}")
    dispatched = totals.get("stird_requests_dispatched_total")
    latency_count = totals.get("stird_request_latency_micros_count")
    if dispatched is not None and latency_count is not None \
            and dispatched != latency_count:
        fail(f"{dispatched:.0f} dispatched requests but the latency "
             f"histograms hold {latency_count:.0f} samples")

    print(f"check_observability: metrics OK ({len(typeof)} families, "
          f"{samples} samples)")
    return totals


def main(argv):
    if len(argv) == 3 and argv[1] == "--metrics":
        check_metrics(argv[2])
        return 0
    if len(argv) not in (2, 3):
        print("usage: check_observability.py <profile.json> [trace.json] | "
              "--metrics <metrics.txt>",
              file=sys.stderr)
        return 2
    profile = check_profile(argv[1])
    if len(argv) == 3:
        check_trace(argv[2], expect_workers=profile["threads"] > 1)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
