#!/usr/bin/env python3
"""Validates a stird --profile JSON document and a --trace timeline.

Standard library only; exits non-zero with a diagnostic on the first
violation. Used by CI after running a profiled example program:

    python3 scripts/check_observability.py profile.json trace.json
"""

import json
import sys

PROFILE_SCHEMA = "stird-profile-v1"

PROFILE_TOP_KEYS = [
    "schema", "program", "backend", "threads", "total_seconds",
    "dispatches", "strata", "relations",
]
RULE_KEYS = [
    "label", "relation", "stratum", "version", "par_group", "recursive",
    "seconds", "invocations", "dispatches", "delta_tuples", "iterations",
]
ITERATION_KEYS = ["seconds", "dispatches", "delta_tuples"]
RELATION_KEYS = [
    "name", "arity", "kind", "indexes", "final_size", "peak_size",
    "inserts", "inserts_new", "contains", "scans", "scan_tuples",
    "index_scans", "index_scan_hits", "index_scan_tuples", "reorders",
]


def fail(message):
    print(f"check_observability: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def require_keys(obj, keys, what):
    for key in keys:
        if key not in obj:
            fail(f"{what} is missing key '{key}' (has: {sorted(obj)})")


def check_profile(path):
    with open(path) as f:
        doc = json.load(f)
    require_keys(doc, PROFILE_TOP_KEYS, "profile document")
    if doc["schema"] != PROFILE_SCHEMA:
        fail(f"unexpected schema '{doc['schema']}'")
    if doc["threads"] < 1:
        fail("threads < 1")

    rules = 0
    for stratum in doc["strata"]:
        require_keys(stratum, ["id", "seconds", "recursive", "rules"],
                     "stratum")
        for rule in stratum["rules"]:
            require_keys(rule, RULE_KEYS, f"rule {rule.get('label')!r}")
            rules += 1
            if rule["stratum"] != stratum["id"]:
                fail(f"rule {rule['label']!r} filed under stratum "
                     f"{stratum['id']} but claims {rule['stratum']}")
            if rule["invocations"] != len(rule["iterations"]):
                fail(f"rule {rule['label']!r}: {rule['invocations']} "
                     f"invocations vs {len(rule['iterations'])} samples")
            for sample in rule["iterations"]:
                require_keys(sample, ITERATION_KEYS, "iteration sample")
            delta = sum(s["delta_tuples"] for s in rule["iterations"])
            if delta != rule["delta_tuples"]:
                fail(f"rule {rule['label']!r}: iteration deltas sum to "
                     f"{delta}, rule total is {rule['delta_tuples']}")
    if rules == 0:
        fail("profile contains no rules")

    if not doc["relations"]:
        fail("profile contains no relations")
    for rel in doc["relations"]:
        require_keys(rel, RELATION_KEYS, f"relation {rel.get('name')!r}")
        if rel["peak_size"] < rel["final_size"]:
            fail(f"relation {rel['name']!r}: peak_size {rel['peak_size']} "
                 f"< final_size {rel['final_size']}")
        if rel["inserts_new"] > rel["inserts"]:
            # Equivalence relations may close over more pairs than were
            # inserted; everything else dedups.
            if rel["kind"] != "eqrel":
                fail(f"relation {rel['name']!r}: inserts_new "
                     f"{rel['inserts_new']} > inserts {rel['inserts']}")
        if rel["index_scan_hits"] > rel["index_scans"]:
            fail(f"relation {rel['name']!r}: more index-scan hits than "
                 "initiations")
    print(f"check_observability: profile OK "
          f"({rules} rules, {len(doc['relations'])} relations)")
    return doc


def check_trace(path, expect_workers):
    with open(path) as f:
        doc = json.load(f)
    if "traceEvents" not in doc:
        fail("trace has no traceEvents")

    depth = {}        # tid -> open span count
    last_ts = {}      # tid -> last timestamp
    named_tids = set()
    span_tids = set()
    prev_ts = None
    spans = 0
    for event in doc["traceEvents"]:
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") == "thread_name":
                named_tids.add(event["tid"])
            continue
        if phase not in ("B", "E"):
            fail(f"unexpected phase {phase!r}")
        tid, ts = event["tid"], event["ts"]
        span_tids.add(tid)
        if prev_ts is not None and ts < prev_ts:
            fail(f"timestamps not sorted: {ts} after {prev_ts}")
        prev_ts = ts
        if tid in last_ts and ts < last_ts[tid]:
            fail(f"track {tid} went backwards in time")
        last_ts[tid] = ts
        if phase == "B":
            if "name" not in event:
                fail("B event without a name")
            depth[tid] = depth.get(tid, 0) + 1
            spans += 1
        else:
            depth[tid] = depth.get(tid, 0) - 1
            if depth[tid] < 0:
                fail(f"track {tid}: E without matching B")
    for tid, open_spans in depth.items():
        if open_spans != 0:
            fail(f"track {tid}: {open_spans} unbalanced span(s)")
    unnamed = span_tids - named_tids
    if unnamed:
        fail(f"tracks without thread_name metadata: {sorted(unnamed)}")
    if 0 not in span_tids:
        fail("no main-thread track in trace")
    if expect_workers and len(span_tids) < 2:
        fail("multi-threaded run produced no worker tracks")
    print(f"check_observability: trace OK "
          f"({spans} spans on {len(span_tids)} track(s))")


def main(argv):
    if len(argv) not in (2, 3):
        print("usage: check_observability.py <profile.json> [trace.json]",
              file=sys.stderr)
        return 2
    profile = check_profile(argv[1])
    if len(argv) == 3:
        check_trace(argv[2], expect_workers=profile["threads"] > 1)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
