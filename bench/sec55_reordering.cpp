//===- bench/sec55_reordering.cpp - Section 5.5 reordering ablation ------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the first half of Section 5.5: static tuple reordering
/// (Section 4.2). With it disabled, search keys are permuted and scanned
/// tuples decoded at runtime. Paper: 3.2-5.1% improvement, consistent
/// across benchmarks (modest because inserts cannot be reordered).
///
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <cstdio>
#include <vector>

using namespace stird;
using namespace stird::bench;

int main() {
  printHeader("Sec 5.5 — static tuple reordering ablation",
              "3.2-5.1% improvement, consistent across benchmarks");

  Harness H;
  std::printf("%-16s %-14s %12s %12s %10s\n", "suite", "benchmark",
              "dynamic(s)", "static(s)", "relative");

  std::vector<double> Relatives;
  for (const Workload &W : allSuites()) {
    interp::EngineOptions Off;
    Off.StaticReordering = false;
    InterpMeasurement Without = H.runInterp(W, Off);

    InterpMeasurement With = H.runInterp(W);

    if (Without.TotalTuples != With.TotalTuples) {
      std::printf("%-16s %-14s   RESULT MISMATCH\n", W.Suite.c_str(),
                  W.Name.c_str());
      continue;
    }
    const double Relative = With.Seconds / Without.Seconds;
    Relatives.push_back(Relative);
    std::printf("%-16s %-14s %12.4f %12.4f %10.3f\n", W.Suite.c_str(),
                W.Name.c_str(), Without.Seconds, With.Seconds, Relative);
  }

  if (!Relatives.empty())
    std::printf("\naverage relative runtime with static reordering: %.3f "
                "(%.1f%% improvement)\n",
                geomean(Relatives), 100.0 * (1.0 - geomean(Relatives)));
  return 0;
}
