//===- bench/sec55_reordering.cpp - Section 5.5 reordering ablation ------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the first half of Section 5.5: static tuple reordering
/// (Section 4.2). With it disabled, search keys are permuted and scanned
/// tuples decoded at runtime. Paper: 3.2-5.1% improvement, consistent
/// across benchmarks (modest because inserts cannot be reordered).
///
/// A second part compares the join-ordering strategies (--sips=source,
/// max-bound, profile) on an adversarially ordered transitive closure:
/// the rule body names the large ground relation before the recursive
/// atom, so the textual plan rescans every edge on every semi-naive
/// iteration while the planned orders drive the join from the delta. The
/// measurements and the acceptance ratios (max-bound vs source, profile
/// vs max-bound) are written to sec55_sips.json.
///
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include "obs/Json.h"
#include "obs/Profile.h"
#include "translate/Sips.h"
#include "util/MiscUtil.h"
#include "util/Timer.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

using namespace stird;
using namespace stird::bench;

namespace {

/// The adversarial workload: one long chain (driving ChainLength
/// semi-naive iterations with ever-shrinking deltas) drowned in detached
/// two-node edges that only ever contribute to the first iteration. The
/// textual body order `edge(y, z), path(x, y)` makes the source plan scan
/// all |edge| tuples once per iteration; delta-first orders touch only
/// the live frontier.
Workload adversarialTc(int ChainLength, int DetachedEdges) {
  Workload W;
  W.Suite = "sips";
  // Parameters are part of the name: Harness::materializeFacts caches
  // fact files per workload name, so resized inputs need a new key.
  W.Name = "tc_adversarial_" + std::to_string(ChainLength) + "_" +
           std::to_string(DetachedEdges);
  W.Source = ".decl edge(a:number, b:number)\n"
             ".decl path(a:number, b:number)\n"
             ".input edge\n"
             ".printsize path\n"
             "path(x, y) :- edge(x, y).\n"
             "path(x, z) :- edge(y, z), path(x, y).\n";
  std::vector<DynTuple> Edges;
  for (int I = 0; I < ChainLength; ++I)
    Edges.push_back({I, I + 1});
  const int Base = ChainLength + 1;
  for (int I = 0; I < DetachedEdges; ++I)
    Edges.push_back({Base + 2 * I, Base + 2 * I + 1});
  W.Facts.emplace_back("edge", std::move(Edges));
  return W;
}

struct SipsMeasurement {
  double Seconds = 1e100;    // best observed wall time
  std::size_t TotalTuples = 0;
  std::uint64_t Dispatches = 0; // deterministic per plan, from the last run
  std::string ProfileJson;   // last run, when requested
};

/// One measured run under a chosen --sips strategy (and optional feedback
/// document): compile, evaluate, fold the wall time / checksums into
/// \p Result. Wall seconds include parse/translate/plan, as everywhere
/// else in the bench suite. Callers interleave repetitions of competing
/// strategies so clock drift hits them equally.
void runWithSips(const std::string &FactDir, const Workload &W,
                 translate::SipsStrategy Sips,
                 const translate::ProfileFeedback *Feedback,
                 bool WantProfile, SipsMeasurement &Result) {
  interp::EngineOptions Options;
  Options.FactDir = FactDir;
  Options.EchoPrintSize = false;

  core::CompileOptions Compile;
  Compile.Sips = Sips;
  Compile.Feedback = Feedback;

  Timer T;
  std::vector<std::string> Errors;
  auto Prog = core::Program::fromSource(W.Source, &Errors, Compile);
  if (!Prog)
    fatal("workload '" + W.Name + "' failed to compile: " +
          (Errors.empty() ? "?" : Errors[0]));
  auto Engine = Prog->makeEngine(Options);
  Engine->run();
  Result.Seconds = std::min(Result.Seconds, T.seconds());
  Result.Dispatches = Engine->getNumDispatches();
  Result.TotalTuples = 0;
  for (const auto &Rel : Prog->getRam().getRelations())
    Result.TotalTuples += Engine->getRelation(Rel->getName())->size();
  if (WantProfile) {
    obs::ProfileContext Ctx;
    Ctx.Program = W.Name;
    Ctx.Backend = "sti";
    Result.ProfileJson = obs::buildProfile(*Engine, Ctx).dump();
  }
}

} // namespace

int main() {
  printHeader("Sec 5.5 — static tuple reordering ablation",
              "3.2-5.1% improvement, consistent across benchmarks");

  Harness H;
  std::printf("%-16s %-14s %12s %12s %10s\n", "suite", "benchmark",
              "dynamic(s)", "static(s)", "relative");

  std::vector<double> Relatives;
  for (const Workload &W : allSuites()) {
    interp::EngineOptions Off;
    Off.StaticReordering = false;
    InterpMeasurement Without = H.runInterp(W, Off);

    InterpMeasurement With = H.runInterp(W);

    if (Without.TotalTuples != With.TotalTuples) {
      std::printf("%-16s %-14s   RESULT MISMATCH\n", W.Suite.c_str(),
                  W.Name.c_str());
      continue;
    }
    const double Relative = With.Seconds / Without.Seconds;
    Relatives.push_back(Relative);
    std::printf("%-16s %-14s %12.4f %12.4f %10.3f\n", W.Suite.c_str(),
                W.Name.c_str(), Without.Seconds, With.Seconds, Relative);
  }

  if (!Relatives.empty())
    std::printf("\naverage relative runtime with static reordering: %.3f "
                "(%.1f%% improvement)\n",
                geomean(Relatives), 100.0 * (1.0 - geomean(Relatives)));

  // --- Part two: join-order (SIPS) strategies on adversarial TC --------
  std::printf("\nJoin reordering (--sips) on adversarially ordered "
              "transitive closure:\n");

  const Workload W = adversarialTc(/*ChainLength=*/800,
                                   /*DetachedEdges=*/40000);
  const std::string FactDir = H.materializeFacts(W);
  const int Reps = 5; // planned runs finish in tenths of a second —
                      // best-of-3 still carries scheduler jitter

  // The profiled source run doubles as the feedback producer, exactly
  // like `stird --profile=FILE` followed by `stird --feedback=FILE`.
  SipsMeasurement Source;
  for (int Rep = 0; Rep < Reps; ++Rep)
    runWithSips(FactDir, W, translate::SipsStrategy::Source, nullptr,
                /*WantProfile=*/true, Source);
  std::string FeedbackError;
  std::unique_ptr<translate::ProfileFeedback> Feedback =
      translate::ProfileFeedback::fromJson(Source.ProfileJson,
                                           &FeedbackError);
  if (!Feedback)
    fatal("profile feedback round-trip failed: " + FeedbackError);

  // Interleaved repetitions: max-bound and profile are expected to pick
  // the same plan here, so any wall-clock gap is measurement noise —
  // alternating the runs exposes both to the same drift.
  SipsMeasurement MaxBound, Profile;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    runWithSips(FactDir, W, translate::SipsStrategy::MaxBound, nullptr,
                false, MaxBound);
    runWithSips(FactDir, W, translate::SipsStrategy::Profile,
                Feedback.get(), false, Profile);
  }

  std::printf("%-12s %12s %14s %10s\n", "sips", "seconds", "tuples",
              "speedup");
  const struct {
    const char *Name;
    const SipsMeasurement *M;
  } Rows[] = {{"source", &Source},
              {"max-bound", &MaxBound},
              {"profile", &Profile}};
  for (const auto &Row : Rows)
    std::printf("%-12s %12.4f %14zu %10.2fx\n", Row.Name, Row.M->Seconds,
                Row.M->TotalTuples, Source.Seconds / Row.M->Seconds);

  bool Agree = Source.TotalTuples == MaxBound.TotalTuples &&
               Source.TotalTuples == Profile.TotalTuples;
  if (!Agree)
    std::printf("RESULT MISMATCH across strategies\n");

  const double MaxBoundSpeedup = Source.Seconds / MaxBound.Seconds;
  const double ProfileOverMaxBound = Profile.Seconds / MaxBound.Seconds;
  std::printf("\nmax-bound speedup over source: %.2fx (need >= 1.20x)\n"
              "profile / max-bound runtime:   %.3f (dispatches %llu vs "
              "%llu; need no more work, wall clock within noise)\n",
              MaxBoundSpeedup, ProfileOverMaxBound,
              static_cast<unsigned long long>(Profile.Dispatches),
              static_cast<unsigned long long>(MaxBound.Dispatches));

  // Record the comparison for CI and the acceptance criteria.
  using obs::json::Value;
  Value Doc{obs::json::Object{}};
  Doc.set("schema", "stird-bench-sips-v1");
  Doc.set("benchmark", W.Name);
  Doc.set("edges", static_cast<std::uint64_t>(W.Facts[0].second.size()));
  Doc.set("repetitions", Reps);
  obs::json::Array Strategies;
  for (const auto &Row : Rows) {
    Value S{obs::json::Object{}};
    S.set("sips", Row.Name);
    S.set("seconds", Row.M->Seconds);
    S.set("total_tuples", static_cast<std::uint64_t>(Row.M->TotalTuples));
    S.set("dispatches", Row.M->Dispatches);
    S.set("speedup_over_source", Source.Seconds / Row.M->Seconds);
    Strategies.push_back(std::move(S));
  }
  Doc.set("strategies", Value(std::move(Strategies)));
  Doc.set("max_bound_speedup_over_source", MaxBoundSpeedup);
  Doc.set("profile_over_max_bound", ProfileOverMaxBound);
  Value Criteria{obs::json::Object{}};
  Criteria.set("strategies_agree", Agree);
  Criteria.set("max_bound_at_least_1_2x", MaxBoundSpeedup >= 1.2);
  // "Never slower": the deterministic evidence is the dispatch count
  // (identical plans execute identical work); wall clock gets a 10%
  // slack on top since these runs last tenths of a second.
  Criteria.set("profile_not_slower_than_max_bound",
               Profile.Dispatches <= MaxBound.Dispatches &&
                   ProfileOverMaxBound <= 1.10);
  Doc.set("criteria", std::move(Criteria));

  const char *JsonPath = "sec55_sips.json";
  std::ofstream(JsonPath) << Doc.dump(2) << "\n";
  std::printf("wrote %s\n", JsonPath);

  return Agree ? 0 : 1;
}
