//===- bench/micro_der.cpp - DER data structure microbenchmarks ----------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of the DER substrates (supporting references [29-31,40]
/// of the paper): insert, membership and range-scan throughput of the
/// specialized B-tree and Brie against std::set, plus the union-find
/// equivalence relation, and the cost of the legacy runtime comparator.
///
//===----------------------------------------------------------------------===//

#include "der/BTreeSet.h"
#include "der/Brie.h"
#include "der/EquivalenceRelation.h"

#include <benchmark/benchmark.h>

#include <random>
#include <set>

using namespace stird;

namespace {

std::vector<Tuple<2>> pairs(std::size_t N, RamDomain Range, unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<RamDomain> Dist(0, Range);
  std::vector<Tuple<2>> Result(N);
  for (auto &Tuple : Result)
    Tuple = {Dist(Rng), Dist(Rng)};
  return Result;
}

void BM_BTreeInsert(benchmark::State &State) {
  auto Data = pairs(static_cast<std::size_t>(State.range(0)), 1 << 20, 1);
  for (auto _ : State) {
    BTreeSet<2> Set;
    for (const auto &Tuple : Data)
      Set.insert(Tuple);
    benchmark::DoNotOptimize(Set.size());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<std::int64_t>(Data.size()));
}
BENCHMARK(BM_BTreeInsert)->Arg(10000)->Arg(100000);

void BM_StdSetInsert(benchmark::State &State) {
  auto Data = pairs(static_cast<std::size_t>(State.range(0)), 1 << 20, 1);
  for (auto _ : State) {
    std::set<Tuple<2>> Set;
    for (const auto &Tuple : Data)
      Set.insert(Tuple);
    benchmark::DoNotOptimize(Set.size());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<std::int64_t>(Data.size()));
}
BENCHMARK(BM_StdSetInsert)->Arg(10000)->Arg(100000);

void BM_BrieInsertDense(benchmark::State &State) {
  const std::size_t N = static_cast<std::size_t>(State.range(0));
  for (auto _ : State) {
    Brie<2> Set;
    for (std::size_t I = 0; I < N; ++I)
      Set.insert({static_cast<RamDomain>(I / 64),
                  static_cast<RamDomain>(I % 1024)});
    benchmark::DoNotOptimize(Set.size());
  }
  State.SetItemsProcessed(State.iterations() * static_cast<std::int64_t>(N));
}
BENCHMARK(BM_BrieInsertDense)->Arg(10000)->Arg(100000);

void BM_BTreeContains(benchmark::State &State) {
  auto Data = pairs(100000, 1 << 20, 2);
  BTreeSet<2> Set;
  for (const auto &Tuple : Data)
    Set.insert(Tuple);
  auto Probes = pairs(1024, 1 << 20, 3);
  for (auto _ : State) {
    std::size_t Hits = 0;
    for (const auto &Probe : Probes)
      Hits += Set.contains(Probe);
    benchmark::DoNotOptimize(Hits);
  }
  State.SetItemsProcessed(State.iterations() * 1024);
}
BENCHMARK(BM_BTreeContains);

void BM_BTreeRangeScan(benchmark::State &State) {
  BTreeSet<2> Set;
  for (RamDomain Key = 0; Key < 1000; ++Key)
    for (RamDomain Value = 0; Value < 100; ++Value)
      Set.insert({Key, Value});
  for (auto _ : State) {
    // Scan one prefix range per key.
    std::size_t Count = 0;
    for (RamDomain Key = 0; Key < 1000; ++Key) {
      Tuple<2> Low = {Key, std::numeric_limits<RamDomain>::min()};
      Tuple<2> High = {Key, std::numeric_limits<RamDomain>::max()};
      for (auto It = Set.lowerBound(Low), End = Set.upperBound(High);
           It != End; ++It)
        ++Count;
    }
    benchmark::DoNotOptimize(Count);
  }
  State.SetItemsProcessed(State.iterations() * 100000);
}
BENCHMARK(BM_BTreeRangeScan);

void BM_BTreeIterateAll(benchmark::State &State) {
  auto Data = pairs(100000, 1 << 20, 4);
  BTreeSet<2> Set;
  for (const auto &Tuple : Data)
    Set.insert(Tuple);
  for (auto _ : State) {
    RamDomain Sum = 0;
    for (auto It = Set.begin(), End = Set.end(); It != End; ++It)
      Sum += (*It)[0];
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<std::int64_t>(Set.size()));
}
BENCHMARK(BM_BTreeIterateAll);

// The legacy runtime comparator against the specialized natural order —
// the core of the Section 5.1 legacy slowdown.
void BM_LegacyComparatorInsert(benchmark::State &State) {
  auto Data = pairs(static_cast<std::size_t>(State.range(0)), 1 << 20, 5);
  static const std::uint32_t OrderArray[2] = {0, 1};
  for (auto _ : State) {
    RuntimeOrderCompare<16> Cmp;
    Cmp.Order = OrderArray;
    Cmp.Length = 2;
    BTreeSet<16, RuntimeOrderCompare<16>> Set(Cmp);
    for (const auto &Pair : Data) {
      Tuple<16> Wide{};
      Wide[0] = Pair[0];
      Wide[1] = Pair[1];
      Set.insert(Wide);
    }
    benchmark::DoNotOptimize(Set.size());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<std::int64_t>(Data.size()));
}
BENCHMARK(BM_LegacyComparatorInsert)->Arg(10000)->Arg(100000);

void BM_EqrelInsert(benchmark::State &State) {
  auto Data = pairs(static_cast<std::size_t>(State.range(0)), 4096, 6);
  for (auto _ : State) {
    EquivalenceRelation Rel;
    for (const auto &Pair : Data)
      Rel.insert(Pair[0], Pair[1]);
    benchmark::DoNotOptimize(Rel.size());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<std::int64_t>(Data.size()));
}
BENCHMARK(BM_EqrelInsert)->Arg(10000)->Arg(100000);

void BM_EqrelContains(benchmark::State &State) {
  auto Data = pairs(50000, 4096, 7);
  EquivalenceRelation Rel;
  for (const auto &Pair : Data)
    Rel.insert(Pair[0], Pair[1]);
  auto Probes = pairs(1024, 4096, 8);
  for (auto _ : State) {
    std::size_t Hits = 0;
    for (const auto &Probe : Probes)
      Hits += Rel.contains(Probe[0], Probe[1]);
    benchmark::DoNotOptimize(Hits);
  }
  State.SetItemsProcessed(State.iterations() * 1024);
}
BENCHMARK(BM_EqrelContains);

} // namespace

BENCHMARK_MAIN();
