//===- bench/fig19_superinstructions.cpp - Fig 19 reproduction -----------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Fig 19: the impact of super-instructions (Section 4.4).
/// Times are relative to the STI with super-instructions disabled (= 1.0).
/// Paper: 13.75% average speedup from eliminating 22.01% of dispatches.
///
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <cstdio>
#include <vector>

using namespace stird;
using namespace stird::bench;

int main() {
  printHeader("Fig 19 — super-instruction impact",
              "13.75% average speedup; 22.01% of dispatches eliminated");

  Harness H;
  std::printf("%-16s %-14s %10s %10s %9s %14s\n", "suite", "benchmark",
              "off(s)", "on(s)", "relative", "disp. saved");

  std::vector<double> Relatives, DispatchSavings;
  for (const Workload &W : allSuites()) {
    interp::EngineOptions Off;
    Off.SuperInstructions = false;
    InterpMeasurement Without = H.runInterp(W, Off);

    InterpMeasurement With = H.runInterp(W); // defaults: on

    if (Without.TotalTuples != With.TotalTuples) {
      std::printf("%-16s %-14s   RESULT MISMATCH\n", W.Suite.c_str(),
                  W.Name.c_str());
      continue;
    }
    const double Relative = With.Seconds / Without.Seconds;
    const double Saved =
        100.0 * (1.0 - static_cast<double>(With.Dispatches) /
                           static_cast<double>(Without.Dispatches));
    Relatives.push_back(Relative);
    DispatchSavings.push_back(Saved);
    std::printf("%-16s %-14s %10.4f %10.4f %9.3f %13.1f%%\n",
                W.Suite.c_str(), W.Name.c_str(), Without.Seconds,
                With.Seconds, Relative, Saved);
  }

  if (!Relatives.empty()) {
    double SavedSum = 0;
    for (double S : DispatchSavings)
      SavedSum += S;
    std::printf("\naverage relative runtime: %.3f (%.1f%% speedup); "
                "average dispatches eliminated: %.1f%%\n",
                geomean(Relatives), 100.0 * (1.0 - geomean(Relatives)),
                SavedSum / static_cast<double>(DispatchSavings.size()));
  }
  return 0;
}
