//===- bench/micro_substrate.cpp - Substrate portfolio on dense keys ----------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the substrate portfolio (B-tree, Brie, ART) head to head on the
/// workload the feedback-driven selector targets: dense integer keys probed
/// point-lookup-heavily. Dense keys keep the radix tree shallow (path
/// compression swallows the shared high bytes, the fanout nodes sit at the
/// bottom), so an ART probe is a handful of direct-indexed byte steps
/// against the B-tree's per-node binary searches.
///
/// Phases per substrate: bulk insert of N dense tuples, M point lookups
/// (~50% hits), and a bounded range-scan sweep — the selector must *not*
/// move range-heavy relations, so the scan numbers document what the
/// B-tree keeps winning (or at least not losing).
///
/// Emits one JSON document on stdout: per-phase records plus a final gate
/// record {"gate": 1.3, "speedup": ..., "pass": ...} over the point-lookup
/// phase, ART vs B-tree. CI uploads the document as the bench-gate
/// artifact; the process exits nonzero when the gate fails so the substrate
/// job surfaces a regression.
///
//===----------------------------------------------------------------------===//

#include "der/Art.h"
#include "der/BTreeSet.h"
#include "der/Brie.h"
#include "util/Timer.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

using namespace stird;

namespace {

constexpr std::size_t Arity = 2;
using TupleT = Tuple<Arity>;

struct PhaseTimes {
  double InsertSeconds = 0;
  double LookupSeconds = 0;
  double ScanSeconds = 0;
  std::uint64_t Checksum = 0; // cross-substrate agreement check
};

/// Dense-integer-key tuples: col0 walks [0, N) in a fixed pseudo-random
/// order (dense value space, non-sequential arrival — the honest case;
/// sorted arrival would gift the B-tree its append fast path).
std::vector<TupleT> denseTuples(std::size_t N) {
  std::vector<TupleT> Tuples;
  Tuples.reserve(N);
  std::uint64_t X = 0x9e3779b97f4a7c15ULL;
  for (std::size_t I = 0; I < N; ++I) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    const RamDomain Key = static_cast<RamDomain>(
        (I * 0x9E3779B1u) % N); // a permutation walk of [0, N)
    Tuples.push_back({Key, static_cast<RamDomain>(X & 0xffff)});
  }
  return Tuples;
}

/// Probe keys: ~50% present (dense hits), ~50% just outside the key range.
std::vector<TupleT> probeKeys(const std::vector<TupleT> &Tuples,
                              std::size_t M) {
  std::vector<TupleT> Keys;
  Keys.reserve(M);
  std::uint64_t X = 0xdeadbeefcafef00dULL;
  const std::size_t N = Tuples.size();
  for (std::size_t I = 0; I < M; ++I) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    if (X & 1) {
      Keys.push_back(Tuples[X % N]); // hit
    } else {
      TupleT Miss = Tuples[X % N];
      Miss[1] ^= 0x10000; // outside the stored col1 range
      Keys.push_back(Miss);
    }
  }
  return Keys;
}

template <typename SetT>
PhaseTimes runPhases(const std::vector<TupleT> &Tuples,
                     const std::vector<TupleT> &Probes,
                     std::size_t ScanSweeps) {
  PhaseTimes Out;
  SetT Set;

  Timer T;
  for (const TupleT &Tuple : Tuples)
    Set.insert(Tuple);
  Out.InsertSeconds = T.seconds();

  T = Timer();
  std::uint64_t Hits = 0;
  for (const TupleT &Key : Probes)
    Hits += Set.contains(Key);
  Out.LookupSeconds = T.seconds();
  Out.Checksum = Hits;

  // Bounded range scans: every 16th col0 prefix per sweep. The Brie's
  // range primitive is a rooted prefix iterator, the ordered sets bound a
  // [lowerBound, upperBound) window — same tuples either way.
  T = Timer();
  std::uint64_t Scanned = 0;
  const RamDomain N = static_cast<RamDomain>(Tuples.size());
  for (std::size_t Sweep = 0; Sweep < ScanSweeps; ++Sweep)
    for (RamDomain Key = 0; Key < N; Key += 16) {
      if constexpr (requires { Set.prefixBegin(TupleT{}, std::size_t{1}); }) {
        for (auto It = Set.prefixBegin({Key, 0}, 1); It != Set.end(); ++It)
          ++Scanned;
      } else {
        constexpr RamDomain Lo = std::numeric_limits<RamDomain>::min();
        constexpr RamDomain Hi = std::numeric_limits<RamDomain>::max();
        auto End = Set.upperBound({Key, Hi});
        for (auto It = Set.lowerBound({Key, Lo}); It != End; ++It)
          ++Scanned;
      }
    }
  Out.ScanSeconds = T.seconds();
  Out.Checksum = Out.Checksum * 1000003 + Scanned + Set.size();
  return Out;
}

void printRecord(const char *Substrate, const PhaseTimes &T, bool First) {
  std::printf("%s\n  {\"workload\": \"dense-integer-keys\", "
              "\"substrate\": \"%s\", \"insert_seconds\": %.6f, "
              "\"lookup_seconds\": %.6f, \"scan_seconds\": %.6f}",
              First ? "" : ",", Substrate, T.InsertSeconds, T.LookupSeconds,
              T.ScanSeconds);
}

} // namespace

int main(int argc, char **argv) {
  // --quick: smaller workload and a single repetition, for CI smoke runs.
  const bool Quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::size_t N = Quick ? 200000 : 1000000;
  const std::size_t M = Quick ? 1000000 : 4000000;
  const std::size_t Reps = Quick ? 1 : 3;

  const std::vector<TupleT> Tuples = denseTuples(N);
  const std::vector<TupleT> Probes = probeKeys(Tuples, M);

  // Best-of-Reps per gated substrate, interleaved so frequency scaling and
  // cache warmup hit both alike. The Brie lane is context only (no gate)
  // and runs once, in --quick mode only: a million distinct col0 values is
  // its worst-case insert shape — sorted-vector children at the root make
  // the full-size load quadratic (minutes for a measurement nobody gates
  // on).
  PhaseTimes Btree, Brie_, Art;
  for (std::size_t Rep = 0; Rep < Reps; ++Rep) {
    const PhaseTimes B = runPhases<BTreeSet<Arity>>(Tuples, Probes, 1);
    if (Rep == 0 && Quick)
      Brie_ = runPhases<Brie<Arity>>(Tuples, Probes, 1);
    const PhaseTimes A = runPhases<ArtSet<Arity>>(Tuples, Probes, 1);
    if (Rep == 0 || B.LookupSeconds < Btree.LookupSeconds)
      Btree = B;
    if (Rep == 0 || A.LookupSeconds < Art.LookupSeconds)
      Art = A;
    std::fprintf(stderr, "rep %zu  lookups: btree %.4fs  art %.4fs\n", Rep,
                 B.LookupSeconds, A.LookupSeconds);
  }

  const bool Agree = Btree.Checksum == Art.Checksum &&
                     (!Quick || Brie_.Checksum == Btree.Checksum);
  if (!Agree)
    std::fprintf(stderr, "ERROR: substrate checksums diverged\n");

  const double Speedup =
      Art.LookupSeconds > 0 ? Btree.LookupSeconds / Art.LookupSeconds : 0.0;
  constexpr double Gate = 1.3;
  const bool Pass = Agree && Speedup >= Gate;

  std::printf("[");
  printRecord("btree", Btree, true);
  if (Quick)
    printRecord("brie", Brie_, false);
  printRecord("art", Art, false);
  std::printf(",\n  {\"workload\": \"dense-integer-keys\", "
              "\"phase\": \"point-lookup\", \"gate\": %.2f, "
              "\"speedup_art_vs_btree\": %.3f, \"pass\": %s}\n]\n",
              Gate, Speedup, Pass ? "true" : "false");
  std::fprintf(stderr, "art vs btree point lookups: %.3fx (gate %.2fx) %s\n",
               Speedup, Gate, Pass ? "PASS" : "FAIL");
  return Pass ? 0 : 1;
}
