//===- bench/micro_sched.cpp - Scheduler scaling on skewed work ----------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the morsel work-stealing scheduler against an emulation of the
/// old barrier pool on the adversarial skewed-TC workload (one hub vertex
/// owning ~90% of the edges). The barrier pool's static 1:1 assignment is
/// reproduced exactly by forcing one morsel per thread (a huge
/// --morsel-size makes morselParts() return NumThreads): whichever thread
/// draws the hub's partition then serializes the iteration while the rest
/// idle at the join barrier. Work-stealing cuts the same scan into ~256-
/// tuple morsels any idle thread can steal.
///
/// Emits one JSON document (array of per-configuration records) on stdout
/// so CI and plotting scripts can consume the sweep directly:
///
///   [{"workload": "skewed-tc", "mode": "stealing", "threads": 4,
///     "seconds": ..., "tuples": ..., "speedup_vs_barrier": ...}, ...]
///
/// Results are hardware-honest: on a single-core container both modes
/// degenerate to sequential draining and the ratio sits near 1; the
/// stealing advantage appears with real cores to steal from.
///
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace stird;
using namespace stird::bench;

namespace {

struct Record {
  const char *Mode;
  std::size_t Threads;
  double Seconds;
  std::size_t Tuples;
};

/// One morsel per thread reproduces the retired barrier pool's static
/// partition assignment (no entry is left for anyone to steal).
constexpr std::size_t BarrierMorselSize = ~std::size_t(0) / 2;

} // namespace

int main(int argc, char **argv) {
  // --quick: single repetition, for smoke runs in CI.
  const bool Quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  Harness H("stird_bench_cache", Quick ? 1 : 3);
  const Workload W = skewedTc();

  std::vector<Record> Records;
  for (std::size_t Threads : {std::size_t(1), std::size_t(2),
                              std::size_t(4), std::size_t(8)}) {
    for (const char *Mode : {"barrier", "stealing"}) {
      interp::EngineOptions Options;
      Options.NumThreads = Threads;
      Options.EchoPrintSize = false;
      if (std::strcmp(Mode, "barrier") == 0)
        Options.MorselSize = BarrierMorselSize;
      const InterpMeasurement M = H.runInterp(W, Options);
      Records.push_back({Mode, Threads, M.Seconds, M.TotalTuples});
      std::fprintf(stderr, "%-9s -j%zu  %.6f s  %zu tuples\n", Mode,
                   Threads, M.Seconds, M.TotalTuples);
    }
  }

  // The determinism contract makes tuple counts a cross-config checksum.
  bool TuplesAgree = true;
  for (const Record &R : Records)
    TuplesAgree = TuplesAgree && R.Tuples == Records.front().Tuples;
  if (!TuplesAgree)
    std::fprintf(stderr, "ERROR: tuple counts diverged across configs\n");

  std::printf("[");
  for (std::size_t I = 0; I < Records.size(); ++I) {
    const Record &R = Records[I];
    double Barrier = 0;
    for (const Record &B : Records)
      if (std::strcmp(B.Mode, "barrier") == 0 && B.Threads == R.Threads)
        Barrier = B.Seconds;
    std::printf("%s\n  {\"workload\": \"%s\", \"mode\": \"%s\", "
                "\"threads\": %zu, \"seconds\": %.6f, \"tuples\": %zu, "
                "\"speedup_vs_barrier\": %.3f}",
                I == 0 ? "" : ",", W.Name.c_str(), R.Mode, R.Threads,
                R.Seconds, R.Tuples,
                R.Seconds > 0 ? Barrier / R.Seconds : 0.0);
  }
  std::printf("\n]\n");
  return TuplesAgree ? 0 : 1;
}
