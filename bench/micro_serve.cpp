//===- bench/micro_serve.cpp - Serving-layer latency and throughput -----------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's two costs, in the bench JSON format
/// (--benchmark_format=json like every micro_* binary):
///
///  - query latency against a resident EngineSession: snapshot pinning,
///    a bound-prefix point query, and a full scan, all on a session whose
///    relations were derived once and stay hot;
///  - incremental-batch throughput: driving a growing edge set through
///    loadFacts one batch at a time (the delta-seeded update program)
///    versus the cold baseline a user without the serving layer pays —
///    a fresh engine re-evaluating all facts so far after every batch.
///
/// The batch benchmarks use manual timing so session bootstrap and input
/// construction stay out of the measured region.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "interp/Engine.h"
#include "srv/Session.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <vector>

using namespace stird;
using namespace stird::srv;

namespace {

constexpr const char *TcSource = R"(
.decl edge(a:number, b:number)
.decl path(a:number, b:number)
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
)";

constexpr RamDomain ChainLength = 160;

std::size_t pathsOf(RamDomain Edges) {
  return static_cast<std::size_t>(Edges) * (Edges + 1) / 2;
}

/// A session with the full chain resident, for the read-side benchmarks.
std::unique_ptr<EngineSession> residentSession() {
  auto Session = EngineSession::fromSource(TcSource);
  if (!Session)
    std::abort();
  std::vector<DynTuple> Edges;
  for (RamDomain I = 0; I < ChainLength; ++I)
    Edges.push_back({I, I + 1});
  Session->loadFacts({{"edge", Edges}});
  if (Session->query("path", Pattern(2)).size() != pathsOf(ChainLength))
    std::abort();
  return Session;
}

void BM_SnapshotPin(benchmark::State &State) {
  auto Session = residentSession();
  for (auto _ : State) {
    Snapshot Snap = Session->snapshot();
    benchmark::DoNotOptimize(Snap.epoch());
  }
}

void BM_QueryBoundPrefix(benchmark::State &State) {
  auto Session = residentSession();
  Pattern P(2);
  RamDomain From = 0;
  for (auto _ : State) {
    P[0] = From;
    From = (From + 1) % ChainLength;
    benchmark::DoNotOptimize(Session->query("path", P));
  }
}

void BM_QueryFullScan(benchmark::State &State) {
  auto Session = residentSession();
  const Pattern Wildcard(2);
  for (auto _ : State)
    benchmark::DoNotOptimize(Session->query("path", Wildcard));
}

/// Extends the resident chain one single-edge batch at a time through the
/// incremental update program. Each iteration rebuilds the session off the
/// clock and times only the NumBatches loadFacts calls.
void BM_IncrementalBatches(benchmark::State &State) {
  const RamDomain NumBatches = static_cast<RamDomain>(State.range(0));
  for (auto _ : State) {
    auto Session = EngineSession::fromSource(TcSource);
    if (!Session || !Session->isIncremental())
      std::abort();
    const auto Start = std::chrono::steady_clock::now();
    for (RamDomain I = 0; I < NumBatches; ++I)
      Session->loadFacts({{"edge", {{I, I + 1}}}});
    const auto End = std::chrono::steady_clock::now();
    if (Session->query("path", Pattern(2)).size() != pathsOf(NumBatches))
      std::abort();
    State.SetIterationTime(std::chrono::duration<double>(End - Start).count());
  }
  State.SetItemsProcessed(State.iterations() * NumBatches);
}

/// The no-serving-layer baseline: after every batch, a fresh engine
/// re-derives everything from all facts seen so far.
void BM_ColdReevaluation(benchmark::State &State) {
  const RamDomain NumBatches = static_cast<RamDomain>(State.range(0));
  auto Prog = core::Program::fromSource(TcSource);
  if (!Prog)
    std::abort();
  for (auto _ : State) {
    std::size_t FinalPaths = 0;
    const auto Start = std::chrono::steady_clock::now();
    for (RamDomain Batch = 1; Batch <= NumBatches; ++Batch) {
      interp::EngineOptions Options;
      Options.EchoPrintSize = false;
      auto Engine = Prog->makeEngine(Options);
      std::vector<DynTuple> Edges;
      for (RamDomain I = 0; I < Batch; ++I)
        Edges.push_back({I, I + 1});
      Engine->insertTuples("edge", Edges);
      Engine->run();
      FinalPaths = Engine->getTuples("path").size();
    }
    const auto End = std::chrono::steady_clock::now();
    if (FinalPaths != pathsOf(NumBatches))
      std::abort();
    State.SetIterationTime(std::chrono::duration<double>(End - Start).count());
  }
  State.SetItemsProcessed(State.iterations() * NumBatches);
}

} // namespace

BENCHMARK(BM_SnapshotPin);
BENCHMARK(BM_QueryBoundPrefix)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_QueryFullScan)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IncrementalBatches)
    ->Arg(16)
    ->Arg(64)
    ->Arg(160)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColdReevaluation)
    ->Arg(16)
    ->Arg(64)
    ->Arg(160)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
