//===- bench/micro_serve.cpp - Serving-layer latency and throughput -----------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's two costs, in the bench JSON format
/// (--benchmark_format=json like every micro_* binary):
///
///  - query latency against a resident EngineSession: snapshot pinning,
///    a bound-prefix point query, and a full scan, all on a session whose
///    relations were derived once and stay hot;
///  - incremental-batch throughput: driving a growing edge set through
///    loadFacts one batch at a time (the delta-seeded update program)
///    versus the cold baseline a user without the serving layer pays —
///    a fresh engine re-evaluating all facts so far after every batch.
///
/// The batch benchmarks use manual timing so session bootstrap and input
/// construction stay out of the measured region.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "interp/Engine.h"
#include "srv/Server.h"
#include "srv/Session.h"
#include "srv/Wire.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <arpa/inet.h>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace stird;
using namespace stird::srv;

namespace {

constexpr const char *TcSource = R"(
.decl edge(a:number, b:number)
.decl path(a:number, b:number)
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
)";

constexpr RamDomain ChainLength = 160;

std::size_t pathsOf(RamDomain Edges) {
  return static_cast<std::size_t>(Edges) * (Edges + 1) / 2;
}

/// A session with the full chain resident, for the read-side benchmarks.
std::unique_ptr<EngineSession> residentSession() {
  auto Session = EngineSession::fromSource(TcSource);
  if (!Session)
    std::abort();
  std::vector<DynTuple> Edges;
  for (RamDomain I = 0; I < ChainLength; ++I)
    Edges.push_back({I, I + 1});
  Session->loadFacts({{"edge", Edges}});
  if (Session->query("path", Pattern(2)).size() != pathsOf(ChainLength))
    std::abort();
  return Session;
}

void BM_SnapshotPin(benchmark::State &State) {
  auto Session = residentSession();
  for (auto _ : State) {
    Snapshot Snap = Session->snapshot();
    benchmark::DoNotOptimize(Snap.epoch());
  }
}

void BM_QueryBoundPrefix(benchmark::State &State) {
  auto Session = residentSession();
  Pattern P(2);
  RamDomain From = 0;
  for (auto _ : State) {
    P[0] = From;
    From = (From + 1) % ChainLength;
    benchmark::DoNotOptimize(Session->query("path", P));
  }
}

void BM_QueryFullScan(benchmark::State &State) {
  auto Session = residentSession();
  const Pattern Wildcard(2);
  for (auto _ : State)
    benchmark::DoNotOptimize(Session->query("path", Wildcard));
}

/// Extends the resident chain one single-edge batch at a time through the
/// incremental update program. Each iteration rebuilds the session off the
/// clock and times only the NumBatches loadFacts calls.
void BM_IncrementalBatches(benchmark::State &State) {
  const RamDomain NumBatches = static_cast<RamDomain>(State.range(0));
  for (auto _ : State) {
    auto Session = EngineSession::fromSource(TcSource);
    if (!Session || !Session->isIncremental())
      std::abort();
    const auto Start = std::chrono::steady_clock::now();
    for (RamDomain I = 0; I < NumBatches; ++I)
      Session->loadFacts({{"edge", {{I, I + 1}}}});
    const auto End = std::chrono::steady_clock::now();
    if (Session->query("path", Pattern(2)).size() != pathsOf(NumBatches))
      std::abort();
    State.SetIterationTime(std::chrono::duration<double>(End - Start).count());
  }
  State.SetItemsProcessed(State.iterations() * NumBatches);
}

/// The no-serving-layer baseline: after every batch, a fresh engine
/// re-derives everything from all facts seen so far.
void BM_ColdReevaluation(benchmark::State &State) {
  const RamDomain NumBatches = static_cast<RamDomain>(State.range(0));
  auto Prog = core::Program::fromSource(TcSource);
  if (!Prog)
    std::abort();
  for (auto _ : State) {
    std::size_t FinalPaths = 0;
    const auto Start = std::chrono::steady_clock::now();
    for (RamDomain Batch = 1; Batch <= NumBatches; ++Batch) {
      interp::EngineOptions Options;
      Options.EchoPrintSize = false;
      auto Engine = Prog->makeEngine(Options);
      std::vector<DynTuple> Edges;
      for (RamDomain I = 0; I < Batch; ++I)
        Edges.push_back({I, I + 1});
      Engine->insertTuples("edge", Edges);
      Engine->run();
      FinalPaths = Engine->getTuples("path").size();
    }
    const auto End = std::chrono::steady_clock::now();
    if (FinalPaths != pathsOf(NumBatches))
      std::abort();
    State.SetIterationTime(std::chrono::duration<double>(End - Start).count());
  }
  State.SetItemsProcessed(State.iterations() * NumBatches);
}

//===----------------------------------------------------------------------===//
// Wire-level request handling: the query-result cache
//===----------------------------------------------------------------------===//

constexpr const char *PointQuery =
    R"({"cmd":"query","relation":"path","pattern":[1,null]})";

/// The uncached wire path: every iteration plans, scans, renders and
/// serializes the reply — what each repeat query cost before the cache.
void BM_WirePointQueryCold(benchmark::State &State) {
  auto Session = residentSession();
  obs::LatencyAggregator Latency;
  for (auto _ : State) {
    RequestOutcome Outcome = handleRequest(*Session, Latency, PointQuery);
    benchmark::DoNotOptimize(Outcome.Reply.dump());
  }
}

/// The cached wire path: same request through a tenant registry, so every
/// iteration after the first hits the per-tenant query cache.
void BM_WirePointQueryCached(benchmark::State &State) {
  auto Session = residentSession();
  TenantRegistry Tenants;
  Tenants.add("default", *Session);
  // Warm the entry once; the measured loop is all hits.
  handleRequest(Tenants, PointQuery);
  for (auto _ : State) {
    RequestOutcome Outcome = handleRequest(Tenants, PointQuery);
    benchmark::DoNotOptimize(Outcome.Reply.dump());
  }
  const QueryCache::Counters C = Tenants.defaultTenant()->Cache.counters();
  if (C.Hits < static_cast<std::uint64_t>(State.iterations()))
    std::abort(); // the measured loop must not have missed
  State.counters["hit_rate"] =
      static_cast<double>(C.Hits) / (C.Hits + C.Misses);
}

//===----------------------------------------------------------------------===//
// Many-connection serving: p99 point-query latency between batches
//===----------------------------------------------------------------------===//

int connectTo(int Port) {
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    std::abort();
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0)
    std::abort();
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Fd;
}

/// Holds State.range(0) concurrent connections against one epoll server
/// and round-robins point queries across them, publishing a fact batch
/// every QueriesPerBatch queries (which also invalidates the result
/// cache). Reports p50/p99 per-query round-trip latency as counters; the
/// serving-layer gate is p99 < 1ms at 1024 connections.
void BM_ServerManyConnections(benchmark::State &State) {
  const std::size_t NumConns = static_cast<std::size_t>(State.range(0));
  constexpr std::size_t QueriesPerBatch = 512;

  auto Session = residentSession();
  srv::ServerOptions Options;
  srv::Server Server(*Session, Options);
  std::string Error;
  if (!Server.start(&Error))
    std::abort();
  std::thread Serving([&] { Server.serve(); });

  std::vector<int> Conns;
  Conns.reserve(NumConns);
  for (std::size_t I = 0; I < NumConns; ++I)
    Conns.push_back(connectTo(Server.boundPort()));

  std::vector<double> LatencyMicros;
  std::size_t Queries = 0;
  RamDomain NextNode = ChainLength;
  for (auto _ : State) {
    const int Fd = Conns[Queries % NumConns];
    const auto Start = std::chrono::steady_clock::now();
    if (!writeFrame(Fd, PointQuery))
      std::abort();
    std::string Reply;
    if (!readFrame(Fd, Reply))
      std::abort();
    const auto End = std::chrono::steady_clock::now();
    LatencyMicros.push_back(
        std::chrono::duration<double, std::micro>(End - Start).count());
    if (++Queries % QueriesPerBatch == 0) {
      // A publish between query windows: the next queries run cold.
      Session->loadFacts(
          {{"edge", {{NextNode, NextNode + 1}}}});
      ++NextNode;
    }
  }

  for (int Fd : Conns)
    ::close(Fd);
  Server.stop();
  Serving.join();

  if (!LatencyMicros.empty()) {
    std::sort(LatencyMicros.begin(), LatencyMicros.end());
    auto Percentile = [&](double P) {
      const std::size_t Index = static_cast<std::size_t>(
          P * static_cast<double>(LatencyMicros.size() - 1));
      return LatencyMicros[Index];
    };
    State.counters["p50_us"] = Percentile(0.50);
    State.counters["p99_us"] = Percentile(0.99);
    State.counters["connections"] = static_cast<double>(NumConns);
  }
}

} // namespace

BENCHMARK(BM_SnapshotPin);
BENCHMARK(BM_QueryBoundPrefix)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_QueryFullScan)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IncrementalBatches)
    ->Arg(16)
    ->Arg(64)
    ->Arg(160)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColdReevaluation)
    ->Arg(16)
    ->Arg(64)
    ->Arg(160)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WirePointQueryCold)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WirePointQueryCached)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ServerManyConnections)
    ->Arg(64)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
