//===- bench/micro_serve.cpp - Serving-layer latency and throughput -----------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's two costs, in the bench JSON format
/// (--benchmark_format=json like every micro_* binary):
///
///  - query latency against a resident EngineSession: snapshot pinning,
///    a bound-prefix point query, and a full scan, all on a session whose
///    relations were derived once and stay hot;
///  - incremental-batch throughput: driving a growing edge set through
///    loadFacts one batch at a time (the delta-seeded update program)
///    versus the cold baseline a user without the serving layer pays —
///    a fresh engine re-evaluating all facts so far after every batch.
///
/// The batch benchmarks use manual timing so session bootstrap and input
/// construction stay out of the measured region.
///
/// The binary is also the serving-observability gate (exit code 1 on
/// failure): full telemetry — the /metrics endpoint plus 1-in-64 request
/// tracing — must cost under 2% of p99 round-trip latency, and the p99 the
/// endpoint reports for a 1024-connection battery must agree with the
/// exact p99 of the same requests within one histogram bucket.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "interp/Engine.h"
#include "obs/Histogram.h"
#include "obs/Json.h"
#include "srv/Server.h"
#include "srv/Session.h"
#include "srv/Wire.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <arpa/inet.h>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace stird;
using namespace stird::srv;

namespace {

constexpr const char *TcSource = R"(
.decl edge(a:number, b:number)
.decl path(a:number, b:number)
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
)";

constexpr RamDomain ChainLength = 160;

std::size_t pathsOf(RamDomain Edges) {
  return static_cast<std::size_t>(Edges) * (Edges + 1) / 2;
}

/// A session with the full chain resident, for the read-side benchmarks.
std::unique_ptr<EngineSession> residentSession() {
  auto Session = EngineSession::fromSource(TcSource);
  if (!Session)
    std::abort();
  std::vector<DynTuple> Edges;
  for (RamDomain I = 0; I < ChainLength; ++I)
    Edges.push_back({I, I + 1});
  Session->loadFacts({{"edge", Edges}});
  if (Session->query("path", Pattern(2)).size() != pathsOf(ChainLength))
    std::abort();
  return Session;
}

void BM_SnapshotPin(benchmark::State &State) {
  auto Session = residentSession();
  for (auto _ : State) {
    Snapshot Snap = Session->snapshot();
    benchmark::DoNotOptimize(Snap.epoch());
  }
}

void BM_QueryBoundPrefix(benchmark::State &State) {
  auto Session = residentSession();
  Pattern P(2);
  RamDomain From = 0;
  for (auto _ : State) {
    P[0] = From;
    From = (From + 1) % ChainLength;
    benchmark::DoNotOptimize(Session->query("path", P));
  }
}

void BM_QueryFullScan(benchmark::State &State) {
  auto Session = residentSession();
  const Pattern Wildcard(2);
  for (auto _ : State)
    benchmark::DoNotOptimize(Session->query("path", Wildcard));
}

/// Extends the resident chain one single-edge batch at a time through the
/// incremental update program. Each iteration rebuilds the session off the
/// clock and times only the NumBatches loadFacts calls.
void BM_IncrementalBatches(benchmark::State &State) {
  const RamDomain NumBatches = static_cast<RamDomain>(State.range(0));
  for (auto _ : State) {
    auto Session = EngineSession::fromSource(TcSource);
    if (!Session || !Session->isIncremental())
      std::abort();
    const auto Start = std::chrono::steady_clock::now();
    for (RamDomain I = 0; I < NumBatches; ++I)
      Session->loadFacts({{"edge", {{I, I + 1}}}});
    const auto End = std::chrono::steady_clock::now();
    if (Session->query("path", Pattern(2)).size() != pathsOf(NumBatches))
      std::abort();
    State.SetIterationTime(std::chrono::duration<double>(End - Start).count());
  }
  State.SetItemsProcessed(State.iterations() * NumBatches);
}

/// The no-serving-layer baseline: after every batch, a fresh engine
/// re-derives everything from all facts seen so far.
void BM_ColdReevaluation(benchmark::State &State) {
  const RamDomain NumBatches = static_cast<RamDomain>(State.range(0));
  auto Prog = core::Program::fromSource(TcSource);
  if (!Prog)
    std::abort();
  for (auto _ : State) {
    std::size_t FinalPaths = 0;
    const auto Start = std::chrono::steady_clock::now();
    for (RamDomain Batch = 1; Batch <= NumBatches; ++Batch) {
      interp::EngineOptions Options;
      Options.EchoPrintSize = false;
      auto Engine = Prog->makeEngine(Options);
      std::vector<DynTuple> Edges;
      for (RamDomain I = 0; I < Batch; ++I)
        Edges.push_back({I, I + 1});
      Engine->insertTuples("edge", Edges);
      Engine->run();
      FinalPaths = Engine->getTuples("path").size();
    }
    const auto End = std::chrono::steady_clock::now();
    if (FinalPaths != pathsOf(NumBatches))
      std::abort();
    State.SetIterationTime(std::chrono::duration<double>(End - Start).count());
  }
  State.SetItemsProcessed(State.iterations() * NumBatches);
}

//===----------------------------------------------------------------------===//
// Wire-level request handling: the query-result cache
//===----------------------------------------------------------------------===//

constexpr const char *PointQuery =
    R"({"cmd":"query","relation":"path","pattern":[1,null]})";

/// The uncached wire path: every iteration plans, scans, renders and
/// serializes the reply — what each repeat query cost before the cache.
void BM_WirePointQueryCold(benchmark::State &State) {
  auto Session = residentSession();
  obs::LatencyAggregator Latency;
  for (auto _ : State) {
    RequestOutcome Outcome = handleRequest(*Session, Latency, PointQuery);
    benchmark::DoNotOptimize(Outcome.Reply.dump());
  }
}

/// The cached wire path: same request through a tenant registry, so every
/// iteration after the first hits the per-tenant query cache.
void BM_WirePointQueryCached(benchmark::State &State) {
  auto Session = residentSession();
  TenantRegistry Tenants;
  Tenants.add("default", *Session);
  // Warm the entry once; the measured loop is all hits.
  handleRequest(Tenants, PointQuery);
  for (auto _ : State) {
    RequestOutcome Outcome = handleRequest(Tenants, PointQuery);
    benchmark::DoNotOptimize(Outcome.Reply.dump());
  }
  const QueryCache::Counters C = Tenants.defaultTenant()->Cache.counters();
  if (C.Hits < static_cast<std::uint64_t>(State.iterations()))
    std::abort(); // the measured loop must not have missed
  State.counters["hit_rate"] =
      static_cast<double>(C.Hits) / (C.Hits + C.Misses);
}

//===----------------------------------------------------------------------===//
// Many-connection serving: p99 point-query latency between batches
//===----------------------------------------------------------------------===//

int connectTo(int Port) {
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    std::abort();
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0)
    std::abort();
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Fd;
}

/// Holds State.range(0) concurrent connections against one epoll server
/// and round-robins point queries across them, publishing a fact batch
/// every QueriesPerBatch queries (which also invalidates the result
/// cache). Reports p50/p99 per-query round-trip latency as counters; the
/// serving-layer gate is p99 < 1ms at 1024 connections.
void BM_ServerManyConnections(benchmark::State &State) {
  const std::size_t NumConns = static_cast<std::size_t>(State.range(0));
  constexpr std::size_t QueriesPerBatch = 512;

  auto Session = residentSession();
  srv::ServerOptions Options;
  srv::Server Server(*Session, Options);
  std::string Error;
  if (!Server.start(&Error))
    std::abort();
  std::thread Serving([&] { Server.serve(); });

  std::vector<int> Conns;
  Conns.reserve(NumConns);
  for (std::size_t I = 0; I < NumConns; ++I)
    Conns.push_back(connectTo(Server.boundPort()));

  std::vector<double> LatencyMicros;
  std::size_t Queries = 0;
  RamDomain NextNode = ChainLength;
  for (auto _ : State) {
    const int Fd = Conns[Queries % NumConns];
    const auto Start = std::chrono::steady_clock::now();
    if (!writeFrame(Fd, PointQuery))
      std::abort();
    std::string Reply;
    if (!readFrame(Fd, Reply))
      std::abort();
    const auto End = std::chrono::steady_clock::now();
    LatencyMicros.push_back(
        std::chrono::duration<double, std::micro>(End - Start).count());
    if (++Queries % QueriesPerBatch == 0) {
      // A publish between query windows: the next queries run cold.
      Session->loadFacts(
          {{"edge", {{NextNode, NextNode + 1}}}});
      ++NextNode;
    }
  }

  for (int Fd : Conns)
    ::close(Fd);
  Server.stop();
  Serving.join();

  if (!LatencyMicros.empty()) {
    std::sort(LatencyMicros.begin(), LatencyMicros.end());
    auto Percentile = [&](double P) {
      const std::size_t Index = static_cast<std::size_t>(
          P * static_cast<double>(LatencyMicros.size() - 1));
      return LatencyMicros[Index];
    };
    State.counters["p50_us"] = Percentile(0.50);
    State.counters["p99_us"] = Percentile(0.99);
    State.counters["connections"] = static_cast<double>(NumConns);
  }
}

//===----------------------------------------------------------------------===//
// Serving-observability gates
//===----------------------------------------------------------------------===//

double percentileOf(std::vector<double> &Sorted, double P) {
  const std::size_t Index = static_cast<std::size_t>(
      P * static_cast<double>(Sorted.size() - 1));
  return Sorted[Index];
}

struct BatteryResult {
  /// Client-side round-trip latency per query, sorted ascending.
  std::vector<double> ClientMicros;
  /// Server-reported handling time ("micros") per query — exactly the
  /// samples the server's latency histogram recorded.
  std::vector<std::uint64_t> ServerMicros;
  /// The /metrics scrape taken after the last reply (observability runs).
  std::string Exposition;
};

/// One HTTP GET against the metrics listener; returns the response body.
std::string scrapeMetrics(int Port) {
  const int Fd = connectTo(Port);
  const std::string Request =
      "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n";
  if (::write(Fd, Request.data(), Request.size()) !=
      static_cast<ssize_t>(Request.size()))
    std::abort();
  std::string Response;
  char Buf[4096];
  ssize_t N;
  while ((N = ::read(Fd, Buf, sizeof(Buf))) > 0)
    Response.append(Buf, static_cast<std::size_t>(N));
  ::close(Fd);
  const std::size_t Pos = Response.find("\r\n\r\n");
  if (Pos == std::string::npos)
    std::abort();
  return Response.substr(Pos + 4);
}

/// Round-robins point queries across \p NumConns connections against a
/// fresh server, with full serving telemetry on or off.
BatteryResult runBattery(std::size_t NumConns, std::size_t NumQueries,
                         bool Observability) {
  auto Session = residentSession();
  srv::ServerOptions Options;
  if (Observability) {
    Options.MetricsPort = 0;
    Options.TraceSampleEvery = 64;
  }
  srv::Server Server(*Session, Options);
  std::string Error;
  if (!Server.start(&Error))
    std::abort();
  std::thread Serving([&] { Server.serve(); });

  std::vector<int> Conns;
  Conns.reserve(NumConns);
  for (std::size_t I = 0; I < NumConns; ++I)
    Conns.push_back(connectTo(Server.boundPort()));

  BatteryResult Result;
  Result.ClientMicros.reserve(NumQueries);
  Result.ServerMicros.reserve(NumQueries);
  for (std::size_t I = 0; I < NumQueries; ++I) {
    const int Fd = Conns[I % NumConns];
    const auto Start = std::chrono::steady_clock::now();
    if (!writeFrame(Fd, PointQuery))
      std::abort();
    std::string Reply;
    if (!readFrame(Fd, Reply))
      std::abort();
    const auto End = std::chrono::steady_clock::now();
    Result.ClientMicros.push_back(
        std::chrono::duration<double, std::micro>(End - Start).count());
    std::optional<obs::json::Value> Doc = obs::json::parse(Reply);
    if (!Doc || !Doc->find("micros"))
      std::abort();
    Result.ServerMicros.push_back(Doc->find("micros")->asUint());
  }

  if (Observability)
    Result.Exposition = scrapeMetrics(Server.metricsPort());
  for (int Fd : Conns)
    ::close(Fd);
  Server.stop();
  Serving.join();
  std::sort(Result.ClientMicros.begin(), Result.ClientMicros.end());
  return Result;
}

/// Full telemetry (metrics endpoint + 1-in-64 sampling) must cost under 2%
/// of p99 round-trip latency. Interleaved repeats, medians of p99.
int checkObservabilityOverhead() {
  constexpr int Repeats = 7;
  constexpr std::size_t NumConns = 128, NumQueries = 2048;
  constexpr double LimitPct = 2.0;
  std::vector<double> Off, On;
  runBattery(NumConns, 256, false); // warm-up
  for (int I = 0; I < Repeats; ++I) {
    BatteryResult Plain = runBattery(NumConns, NumQueries, false);
    BatteryResult Full = runBattery(NumConns, NumQueries, true);
    Off.push_back(percentileOf(Plain.ClientMicros, 0.99));
    On.push_back(percentileOf(Full.ClientMicros, 0.99));
  }
  // Scheduling jitter only ever adds latency, so the minimum across
  // repeats is the stable estimate of each configuration's true p99;
  // medians flap by several percent run to run on small machines.
  const double MinOff = *std::min_element(Off.begin(), Off.end());
  const double MinOn = *std::min_element(On.begin(), On.end());
  const double OverheadPct = 100.0 * (MinOn - MinOff) / MinOff;
  const bool Ok = OverheadPct <= LimitPct;
  std::printf("observability p99 off %.1fus on %.1fus overhead %+.2f%% "
              "(limit %.1f%%) %s\n",
              MinOff, MinOn, OverheadPct, LimitPct, Ok ? "OK" : "FAIL");
  return Ok ? 0 : 1;
}

/// The p99 the /metrics endpoint reports for the 1024-connection battery
/// must agree with the exact p99 of the same requests (the server-stamped
/// "micros" members) within one histogram bucket — end to end through
/// record, shard merge, bucket rendering and text parsing.
int checkEndpointQuantileAgreement() {
  constexpr std::size_t NumConns = 1024, NumQueries = 4096;
  BatteryResult Result = runBattery(NumConns, NumQueries, true);

  // Parse the query command's cumulative bucket series from the scrape.
  const std::string Prefix = "stird_request_latency_micros_bucket{"
                             "tenant=\"default\",command=\"query\",le=\"";
  std::vector<std::pair<double, std::uint64_t>> Buckets; // le -> cumulative
  std::istringstream In(Result.Exposition);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind(Prefix, 0) != 0)
      continue;
    const std::size_t LeEnd = Line.find('"', Prefix.size());
    const std::string LeText = Line.substr(Prefix.size(),
                                           LeEnd - Prefix.size());
    const double Le = LeText == "+Inf"
                          ? std::numeric_limits<double>::infinity()
                          : std::strtod(LeText.c_str(), nullptr);
    const std::uint64_t Count = std::strtoull(
        Line.substr(Line.rfind(' ') + 1).c_str(), nullptr, 10);
    Buckets.emplace_back(Le, Count);
  }
  if (Buckets.empty() || !std::isinf(Buckets.back().first)) {
    std::printf("agreement: no query bucket series in the scrape FAIL\n");
    return 1;
  }
  const std::uint64_t Total = Buckets.back().second;
  if (Total != NumQueries) {
    std::printf("agreement: endpoint counted %llu of %llu queries FAIL\n",
                static_cast<unsigned long long>(Total),
                static_cast<unsigned long long>(NumQueries));
    return 1;
  }
  std::uint64_t Rank =
      static_cast<std::uint64_t>(0.99 * static_cast<double>(Total));
  if (static_cast<double>(Rank) < 0.99 * static_cast<double>(Total))
    ++Rank;
  double EndpointP99 = Buckets[Buckets.size() - 2].first; // last finite le
  for (const auto &[Le, Cumulative] : Buckets)
    if (Cumulative >= Rank && !std::isinf(Le)) {
      EndpointP99 = Le;
      break;
    }

  std::sort(Result.ServerMicros.begin(), Result.ServerMicros.end());
  const std::uint64_t ExactP99 = Result.ServerMicros[Rank - 1];

  const std::size_t EndpointBucket =
      obs::HistogramBuckets::index(static_cast<std::uint64_t>(EndpointP99));
  const std::size_t ExactBucket = obs::HistogramBuckets::index(ExactP99);
  const std::size_t Gap = EndpointBucket > ExactBucket
                              ? EndpointBucket - ExactBucket
                              : ExactBucket - EndpointBucket;
  const bool Ok = Gap <= 1;
  std::printf("agreement %zu-conn battery exact p99 %lluus (bucket %zu) "
              "endpoint p99 %.0fus (bucket %zu) gap %zu %s\n",
              NumConns, static_cast<unsigned long long>(ExactP99),
              ExactBucket, EndpointP99, EndpointBucket, Gap,
              Ok ? "OK" : "FAIL");
  return Ok ? 0 : 1;
}

} // namespace

BENCHMARK(BM_SnapshotPin);
BENCHMARK(BM_QueryBoundPrefix)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_QueryFullScan)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IncrementalBatches)
    ->Arg(16)
    ->Arg(64)
    ->Arg(160)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColdReevaluation)
    ->Arg(16)
    ->Arg(64)
    ->Arg(160)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WirePointQueryCold)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WirePointQueryCached)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ServerManyConnections)
    ->Arg(64)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return checkObservabilityOverhead() + checkEndpointQuantileAgreement() ==
                 0
             ? 0
             : 1;
}
