//===- bench/fig18_static_interface.cpp - Fig 18 reproduction ------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Fig 18: the impact of static access and instruction
/// generation (Section 4.1) — the STI's specialized opcodes versus the
/// dynamic virtual-adapter interpreter with buffered iterators. Times are
/// reported relative to the dynamic adapter (= 1.0; lower is better).
/// Paper: 24.4% faster on average, up to 55%, effective on all benchmarks.
///
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <cstdio>
#include <vector>

using namespace stird;
using namespace stird::bench;

int main() {
  printHeader("Fig 18 — static instruction generation vs dynamic adapter",
              "static interface 24.4% faster on average, up to 55%");

  Harness H;
  std::printf("%-16s %-14s %12s %12s %10s\n", "suite", "benchmark",
              "dynamic(s)", "static(s)", "relative");

  std::vector<double> Relatives;
  for (const Workload &W : allSuites()) {
    interp::EngineOptions Dynamic;
    Dynamic.TheBackend = interp::Backend::DynamicAdapter;
    InterpMeasurement Dyn = H.runInterp(W, Dynamic);

    InterpMeasurement Sti = H.runInterp(W); // static (STI)

    if (Dyn.TotalTuples != Sti.TotalTuples) {
      std::printf("%-16s %-14s   RESULT MISMATCH\n", W.Suite.c_str(),
                  W.Name.c_str());
      continue;
    }
    const double Relative = Sti.Seconds / Dyn.Seconds;
    Relatives.push_back(Relative);
    std::printf("%-16s %-14s %12.4f %12.4f %10.3f\n", W.Suite.c_str(),
                W.Name.c_str(), Dyn.Seconds, Sti.Seconds, Relative);
  }

  if (!Relatives.empty()) {
    double Best = 1e100;
    for (double R : Relatives)
      Best = std::min(Best, R);
    std::printf("\naverage relative runtime: %.3f (%.1f%% faster); best "
                "%.3f (%.1f%% faster)\n",
                geomean(Relatives), 100.0 * (1.0 - geomean(Relatives)),
                Best, 100.0 * (1.0 - Best));
  }
  return 0;
}
