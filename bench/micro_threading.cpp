//===- bench/micro_threading.cpp - Dispatch technique comparison ---------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Section 6 observation in microcosm: "using indirect
/// threaded code only brings a 3% performance improvement for Soufflé's
/// interpreter, in the best case", because each Datalog dispatch performs
/// real relational work and modern branch predictors handle switch
/// dispatch well [43].
///
/// Three interpreters for the same micro-bytecode are compared:
///   * switch dispatch (the STI's technique),
///   * indirect-threaded dispatch via a function-pointer table [9, 17],
///   * computed-goto token threading (GCC labels-as-values).
/// Each runs two programs: a pure-arithmetic one (dispatch-bound, where
/// threading should help most) and one interleaving B-tree probes (the
/// Datalog profile, where the relational work hides dispatch costs).
///
/// A second group covers the other meaning of "threading": full engine
/// runs of a transitive closure at 1, 2 and 4 evaluation threads
/// (partitioned outermost scans, per-worker insert buffers). On a single
/// core the interesting output is the overhead column, not a speedup.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "der/BTreeSet.h"
#include "util/RamTypes.h"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace stird;

namespace {

/// Micro-bytecode: a loop body executed over an accumulator, with an
/// optional relational probe instruction.
enum class Bc : std::uint8_t {
  Add,    ///< acc += imm
  Mul,    ///< acc *= imm (wrapping)
  Xor,    ///< acc ^= imm
  Shl,    ///< acc <<= imm & 7
  Mod,    ///< acc %= imm (imm != 0)
  Probe,  ///< acc += set.contains({acc & Mask, imm})
  Halt,
};

struct Inst {
  Bc Op;
  RamDomain Imm;
};

constexpr RamDomain ProbeMask = 1023;

/// The arithmetic-only program (the general-purpose interpreter profile).
std::vector<Inst> arithmeticProgram() {
  std::vector<Inst> Program;
  for (int I = 0; I < 64; ++I) {
    Program.push_back({Bc::Add, I + 1});
    Program.push_back({Bc::Mul, 3});
    Program.push_back({Bc::Xor, 0x5A5A});
    Program.push_back({Bc::Shl, I % 3});
    Program.push_back({Bc::Mod, 100003});
  }
  Program.push_back({Bc::Halt, 0});
  return Program;
}

/// The Datalog-like profile: every few arithmetic steps, a B-tree probe.
std::vector<Inst> relationalProgram() {
  std::vector<Inst> Program;
  for (int I = 0; I < 64; ++I) {
    Program.push_back({Bc::Add, I + 1});
    Program.push_back({Bc::Xor, 0x33CC});
    Program.push_back({Bc::Probe, I % 7});
    Program.push_back({Bc::Mod, 100003});
  }
  Program.push_back({Bc::Halt, 0});
  return Program;
}

const BTreeSet<2> &probeSet() {
  static const BTreeSet<2> Set = [] {
    BTreeSet<2> S;
    for (RamDomain A = 0; A <= ProbeMask; ++A)
      for (RamDomain B = 0; B < 7; B += 2)
        S.insert({A, B});
    return S;
  }();
  return Set;
}

//===----------------------------------------------------------------------===//
// 1. Switch dispatch
//===----------------------------------------------------------------------===//

RamDomain runSwitch(const std::vector<Inst> &Program, int Rounds) {
  const BTreeSet<2> &Set = probeSet();
  RamDomain Acc = 1;
  for (int Round = 0; Round < Rounds; ++Round) {
    std::size_t PC = 0;
    for (;;) {
      const Inst &I = Program[PC++];
      switch (I.Op) {
      case Bc::Add:
        Acc = static_cast<RamDomain>(static_cast<RamUnsigned>(Acc) +
                                     static_cast<RamUnsigned>(I.Imm));
        break;
      case Bc::Mul:
        Acc = static_cast<RamDomain>(static_cast<RamUnsigned>(Acc) *
                                     static_cast<RamUnsigned>(I.Imm));
        break;
      case Bc::Xor:
        Acc ^= I.Imm;
        break;
      case Bc::Shl:
        Acc = static_cast<RamDomain>(static_cast<RamUnsigned>(Acc)
                                     << (I.Imm & 7));
        break;
      case Bc::Mod:
        Acc %= I.Imm;
        break;
      case Bc::Probe:
        Acc += Set.contains({Acc & ProbeMask, I.Imm}) ? 1 : 0;
        break;
      case Bc::Halt:
        goto NextRound;
      }
    }
  NextRound:;
  }
  return Acc;
}

//===----------------------------------------------------------------------===//
// 2. Indirect threading: function-pointer table
//===----------------------------------------------------------------------===//

struct ThreadState {
  RamDomain Acc;
  const Inst *PC;
  const BTreeSet<2> *Set;
};

using Handler = void (*)(ThreadState &);

void opAdd(ThreadState &S) {
  S.Acc = static_cast<RamDomain>(static_cast<RamUnsigned>(S.Acc) +
                                 static_cast<RamUnsigned>(S.PC->Imm));
  ++S.PC;
}
void opMul(ThreadState &S) {
  S.Acc = static_cast<RamDomain>(static_cast<RamUnsigned>(S.Acc) *
                                 static_cast<RamUnsigned>(S.PC->Imm));
  ++S.PC;
}
void opXor(ThreadState &S) {
  S.Acc ^= S.PC->Imm;
  ++S.PC;
}
void opShl(ThreadState &S) {
  S.Acc = static_cast<RamDomain>(static_cast<RamUnsigned>(S.Acc)
                                 << (S.PC->Imm & 7));
  ++S.PC;
}
void opMod(ThreadState &S) {
  S.Acc %= S.PC->Imm;
  ++S.PC;
}
void opProbe(ThreadState &S) {
  S.Acc += S.Set->contains({S.Acc & ProbeMask, S.PC->Imm}) ? 1 : 0;
  ++S.PC;
}
void opHalt(ThreadState &S) { S.PC = nullptr; }

constexpr Handler HandlerTable[] = {opAdd, opMul, opXor, opShl,
                                    opMod, opProbe, opHalt};

RamDomain runThreaded(const std::vector<Inst> &Program, int Rounds) {
  ThreadState S{1, nullptr, &probeSet()};
  for (int Round = 0; Round < Rounds; ++Round) {
    S.PC = Program.data();
    while (S.PC)
      HandlerTable[static_cast<std::size_t>(S.PC->Op)](S);
  }
  return S.Acc;
}

//===----------------------------------------------------------------------===//
// 3. Computed-goto token threading (GCC labels-as-values)
//===----------------------------------------------------------------------===//

RamDomain runComputedGoto(const std::vector<Inst> &Program, int Rounds) {
#if defined(__GNUC__)
  static void *Labels[] = {&&LAdd, &&LMul, &&LXor, &&LShl,
                           &&LMod, &&LProbe, &&LHalt};
  const BTreeSet<2> &Set = probeSet();
  RamDomain Acc = 1;
  for (int Round = 0; Round < Rounds; ++Round) {
    const Inst *PC = Program.data();
#define STIRD_NEXT goto *Labels[static_cast<std::size_t>((PC)->Op)]
    STIRD_NEXT;
  LAdd:
    Acc = static_cast<RamDomain>(static_cast<RamUnsigned>(Acc) +
                                 static_cast<RamUnsigned>(PC->Imm));
    ++PC;
    STIRD_NEXT;
  LMul:
    Acc = static_cast<RamDomain>(static_cast<RamUnsigned>(Acc) *
                                 static_cast<RamUnsigned>(PC->Imm));
    ++PC;
    STIRD_NEXT;
  LXor:
    Acc ^= PC->Imm;
    ++PC;
    STIRD_NEXT;
  LShl:
    Acc = static_cast<RamDomain>(static_cast<RamUnsigned>(Acc)
                                 << (PC->Imm & 7));
    ++PC;
    STIRD_NEXT;
  LMod:
    Acc %= PC->Imm;
    ++PC;
    STIRD_NEXT;
  LProbe:
    Acc += Set.contains({Acc & ProbeMask, PC->Imm}) ? 1 : 0;
    ++PC;
    STIRD_NEXT;
  LHalt:;
#undef STIRD_NEXT
  }
  return Acc;
#else
  return runSwitch(Program, Rounds);
#endif
}

//===----------------------------------------------------------------------===//
// Benchmarks
//===----------------------------------------------------------------------===//

constexpr int Rounds = 2000;

/// All three dispatch techniques must compute the same results, or the
/// comparison is meaningless; checked once at startup.
const bool Verified = [] {
  for (const auto &Program : {arithmeticProgram(), relationalProgram()}) {
    RamDomain A = runSwitch(Program, 3);
    RamDomain B = runThreaded(Program, 3);
    RamDomain C = runComputedGoto(Program, 3);
    if (A != B || A != C) {
      std::fprintf(stderr, "dispatch techniques disagree: %d %d %d\n", A, B,
                    C);
      std::abort();
    }
  }
  return true;
}();

void BM_ArithSwitch(benchmark::State &State) {
  auto Program = arithmeticProgram();
  for (auto _ : State)
    benchmark::DoNotOptimize(runSwitch(Program, Rounds));
}
BENCHMARK(BM_ArithSwitch);

void BM_ArithThreaded(benchmark::State &State) {
  auto Program = arithmeticProgram();
  for (auto _ : State)
    benchmark::DoNotOptimize(runThreaded(Program, Rounds));
}
BENCHMARK(BM_ArithThreaded);

void BM_ArithComputedGoto(benchmark::State &State) {
  auto Program = arithmeticProgram();
  for (auto _ : State)
    benchmark::DoNotOptimize(runComputedGoto(Program, Rounds));
}
BENCHMARK(BM_ArithComputedGoto);

void BM_RelationalSwitch(benchmark::State &State) {
  auto Program = relationalProgram();
  for (auto _ : State)
    benchmark::DoNotOptimize(runSwitch(Program, Rounds));
}
BENCHMARK(BM_RelationalSwitch);

void BM_RelationalThreaded(benchmark::State &State) {
  auto Program = relationalProgram();
  for (auto _ : State)
    benchmark::DoNotOptimize(runThreaded(Program, Rounds));
}
BENCHMARK(BM_RelationalThreaded);

void BM_RelationalComputedGoto(benchmark::State &State) {
  auto Program = relationalProgram();
  for (auto _ : State)
    benchmark::DoNotOptimize(runComputedGoto(Program, Rounds));
}
BENCHMARK(BM_RelationalComputedGoto);

//===----------------------------------------------------------------------===//
// Engine-level evaluation threads (1 / 2 / 4)
//===----------------------------------------------------------------------===//

const char *TcSource = R"(
.decl edge(a:number, b:number)
.decl path(a:number, b:number)
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
)";

std::vector<stird::DynTuple> tcEdges() {
  std::vector<stird::DynTuple> Edges;
  // A few chains plus cross links: enough delta tuples per iteration for
  // the partitioner to produce real multi-partition scans.
  for (RamDomain C = 0; C < 8; ++C)
    for (RamDomain I = 0; I < 60; ++I)
      Edges.push_back({C * 1000 + I, C * 1000 + I + 1});
  for (RamDomain C = 0; C + 1 < 8; ++C)
    Edges.push_back({C * 1000 + 30, (C + 1) * 1000});
  return Edges;
}

std::size_t runTc(std::size_t NumThreads, interp::Backend TheBackend) {
  auto Prog = core::Program::fromSource(TcSource);
  if (!Prog)
    std::abort();
  interp::EngineOptions Options;
  Options.TheBackend = TheBackend;
  Options.NumThreads = NumThreads;
  Options.EchoPrintSize = false;
  auto Engine = Prog->makeEngine(Options);
  Engine->insertTuples("edge", tcEdges());
  Engine->run();
  return Engine->getTuples("path").size();
}

/// Thread counts must not change the fixpoint; checked once at startup.
const bool ThreadsVerified = [] {
  std::size_t Reference = runTc(1, interp::Backend::StaticLambda);
  for (std::size_t N : {2u, 4u})
    for (auto B : {interp::Backend::StaticLambda,
                   interp::Backend::DynamicAdapter})
      if (runTc(N, B) != Reference) {
        std::fprintf(stderr, "thread count changed the fixpoint\n");
        std::abort();
      }
  return true;
}();

void BM_EngineTcSti(benchmark::State &State) {
  const auto NumThreads = static_cast<std::size_t>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(
        runTc(NumThreads, interp::Backend::StaticLambda));
}
BENCHMARK(BM_EngineTcSti)->Arg(1)->Arg(2)->Arg(4);

void BM_EngineTcDynamic(benchmark::State &State) {
  const auto NumThreads = static_cast<std::size_t>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(
        runTc(NumThreads, interp::Backend::DynamicAdapter));
}
BENCHMARK(BM_EngineTcDynamic)->Arg(1)->Arg(2)->Arg(4);

//===----------------------------------------------------------------------===//
// Lifted fallbacks: rules that used to force sequential execution
// (interning functors, `$`, equivalence relations) now run partitioned.
// These benchmarks measure the cost of the concurrency-safe paths —
// sharded symbol-table interning, relaxed atomic counters, atomic eqrel
// path compression — against the same program at one thread.
//===----------------------------------------------------------------------===//

std::size_t runProgram(const char *Source, std::size_t NumThreads,
                       const std::vector<stird::DynTuple> &Edges,
                       const char *Output) {
  auto Prog = core::Program::fromSource(Source);
  if (!Prog)
    std::abort();
  interp::EngineOptions Options;
  Options.NumThreads = NumThreads;
  Options.EchoPrintSize = false;
  auto Engine = Prog->makeEngine(Options);
  Engine->insertTuples("edge", Edges);
  Engine->run();
  return Engine->getTuples(Output).size();
}

/// Workers intern freshly-built strings through the shared table.
void BM_EngineInterning(benchmark::State &State) {
  const char *Source = R"(
    .decl edge(a:number, b:number)
    .decl labeled(a:number, b:number, l:symbol)
    labeled(a, b, cat(to_string(a), cat("->", to_string(b)))) :- edge(a, b).
  )";
  const auto NumThreads = static_cast<std::size_t>(State.range(0));
  auto Edges = tcEdges();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        runProgram(Source, NumThreads, Edges, "labeled"));
}
BENCHMARK(BM_EngineInterning)->Arg(1)->Arg(2)->Arg(4);

/// Workers draw `$` ids from the shared atomic counter.
void BM_EngineCounter(benchmark::State &State) {
  const char *Source = R"(
    .decl edge(a:number, b:number)
    .decl tagged(id:number, a:number, b:number)
    tagged($, a, b) :- edge(a, b).
  )";
  const auto NumThreads = static_cast<std::size_t>(State.range(0));
  auto Edges = tcEdges();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        runProgram(Source, NumThreads, Edges, "tagged"));
}
BENCHMARK(BM_EngineCounter)->Arg(1)->Arg(2)->Arg(4);

/// Workers read the equivalence relation (concurrent findRoot with path
/// compression) while deriving through it.
void BM_EngineEqrel(benchmark::State &State) {
  const char *Source = R"(
    .decl edge(a:number, b:number)
    .decl same(a:number, b:number) eqrel
    .decl rep(a:number, b:number)
    same(a, b) :- edge(a, b).
    rep(a, b) :- same(a, b), a <= b.
  )";
  const auto NumThreads = static_cast<std::size_t>(State.range(0));
  // Smaller input: the closure is quadratic per class.
  std::vector<stird::DynTuple> Edges;
  for (RamDomain C = 0; C < 32; ++C)
    for (RamDomain I = 0; I < 12; ++I)
      Edges.push_back({C * 100 + I, C * 100 + I + 1});
  for (auto _ : State)
    benchmark::DoNotOptimize(runProgram(Source, NumThreads, Edges, "rep"));
}
BENCHMARK(BM_EngineEqrel)->Arg(1)->Arg(2)->Arg(4);

} // namespace

BENCHMARK_MAIN();
