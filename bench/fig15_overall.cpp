//===- bench/fig15_overall.cpp - Figure 15 reproduction ------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Fig 15 of the paper: execution-time slowdown of the STI
/// relative to the synthesized C++ code per benchmark, plus the Section 5.1
/// legacy-interpreter comparison. Paper findings: STI is 1.32-5.67x slower
/// on real workloads (specrand outlier ~23x from tree-generation overhead);
/// the legacy interpreter is 9.8-43x slower.
///
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace stird;
using namespace stird::bench;

int main() {
  printHeader("Fig 15 — interpreter vs synthesized-code slowdown",
              "STI 1.32-5.67x (specrand ~23x); legacy up to 43x, "
              "VPC legacy timeouts");

  Harness H;
  std::printf("%-16s %-14s %10s %10s %8s %10s %8s\n", "suite", "benchmark",
              "synth(s)", "sti(s)", "sti/x", "legacy(s)", "leg/x");

  struct SuiteStats {
    std::vector<double> Sti, Legacy;
  };
  std::map<std::string, SuiteStats> Stats;

  for (const Workload &W : allSuites()) {
    SynthMeasurement Synth = H.runSynth(W);
    if (!Synth.Ok) {
      std::printf("%-16s %-14s   SYNTHESIS FAILED\n", W.Suite.c_str(),
                  W.Name.c_str());
      continue;
    }

    interp::EngineOptions StiOptions;
    InterpMeasurement Sti = H.runInterp(W, StiOptions);

    interp::EngineOptions LegacyOptions;
    LegacyOptions.TheBackend = interp::Backend::Legacy;
    InterpMeasurement Legacy = H.runInterp(W, LegacyOptions);

    if (Sti.TotalTuples != Synth.TotalTuples ||
        Legacy.TotalTuples != Sti.TotalTuples) {
      std::printf("%-16s %-14s   RESULT MISMATCH (synth=%zu sti=%zu "
                  "legacy=%zu)\n",
                  W.Suite.c_str(), W.Name.c_str(), Synth.TotalTuples,
                  Sti.TotalTuples, Legacy.TotalTuples);
      continue;
    }

    const double StiSlowdown = Sti.Seconds / Synth.RunSeconds;
    const double LegacySlowdown = Legacy.Seconds / Synth.RunSeconds;
    std::printf("%-16s %-14s %10.4f %10.4f %8.2f %10.4f %8.2f\n",
                W.Suite.c_str(), W.Name.c_str(), Synth.RunSeconds,
                Sti.Seconds, StiSlowdown, Legacy.Seconds, LegacySlowdown);
    Stats[W.Suite].Sti.push_back(StiSlowdown);
    Stats[W.Suite].Legacy.push_back(LegacySlowdown);
  }

  std::printf("\nper-suite STI slowdown (vs synthesized, lower is better)\n");
  std::printf("%-10s %8s %8s %8s   %14s\n", "suite", "min", "geomean",
              "max", "legacy geomean");
  for (auto &[Suite, S] : Stats) {
    if (S.Sti.empty())
      continue;
    std::printf("%-10s %8.2f %8.2f %8.2f   %14.2f\n", Suite.c_str(),
                *std::min_element(S.Sti.begin(), S.Sti.end()),
                geomean(S.Sti), *std::max_element(S.Sti.begin(), S.Sti.end()),
                geomean(S.Legacy));
  }
  return 0;
}
