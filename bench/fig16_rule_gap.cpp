//===- bench/fig16_rule_gap.cpp - Fig 16 / Section 5.2 reproduction ------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Section 5.2 case study on the gamess-like benchmark:
///
///  1. Fig 16 — per-rule slowdown histogram (STI vs synthesized) with each
///     bin's contribution to the total performance gap. Paper: most rules
///     are < 2.5x; a few arithmetic-filter outlier rules (10-32x) carry
///     ~73% of the gap.
///  2. The hand-crafted super-instruction fix: enabling fused conditions
///     collapses the outlier rules' filter dispatches to one, recovering
///     most of the gap (paper: 44s -> 4s on moved_label; total 2.7x ->
///     1.7x).
///
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

using namespace stird;
using namespace stird::bench;

int main() {
  printHeader("Fig 16 / Sec 5.2 — per-rule slowdown and fused conditions",
              "4 outlier rules carry ~73% of the gap; hand-crafted "
              "super-instructions fix them (2.7x -> 1.7x total)");

  Harness H;
  Workload W = gamessLike();

  SynthMeasurement Synth = H.runSynth(W);
  if (!Synth.Ok) {
    std::printf("synthesis failed\n");
    return 1;
  }
  InterpMeasurement Sti = H.runInterp(W);

  // Per-rule slowdowns; rules under 1ms in the synthesized run are
  // discarded (paper: < 0.01 s at their scale).
  struct RuleGap {
    std::string Label;
    double SynthSeconds;
    double StiSeconds;
    double Slowdown;
  };
  std::vector<RuleGap> Rules;
  double TotalGap = 0;
  for (const auto &[Label, StiSeconds] : Sti.RuleSeconds) {
    auto It = Synth.RuleSeconds.find(Label);
    if (It == Synth.RuleSeconds.end())
      continue;
    const double SynthSeconds = It->second;
    if (SynthSeconds < 1e-3 && StiSeconds < 1e-3)
      continue;
    const double Base = std::max(SynthSeconds, 1e-6);
    Rules.push_back({Label, SynthSeconds, StiSeconds, StiSeconds / Base});
    TotalGap += std::max(0.0, StiSeconds - SynthSeconds);
  }

  // Histogram over slowdown, 30 bins as in the paper.
  if (!Rules.empty()) {
    double MaxSlowdown = 1;
    for (const RuleGap &Rule : Rules)
      MaxSlowdown = std::max(MaxSlowdown, Rule.Slowdown);
    const int NumBins = 30;
    const double BinWidth = MaxSlowdown / NumBins;
    std::vector<int> Counts(NumBins, 0);
    std::vector<double> GapShare(NumBins, 0);
    for (const RuleGap &Rule : Rules) {
      int Bin = std::min(NumBins - 1,
                         static_cast<int>(Rule.Slowdown / BinWidth));
      Counts[Bin] += 1;
      GapShare[Bin] += std::max(0.0, Rule.StiSeconds - Rule.SynthSeconds);
    }
    std::printf("\nhistogram of per-rule slowdown (%zu rules, 30 bins)\n",
                Rules.size());
    std::printf("%-18s %6s %18s\n", "slowdown bin", "rules",
                "share of total gap");
    for (int Bin = 0; Bin < NumBins; ++Bin) {
      if (Counts[Bin] == 0)
        continue;
      std::printf("[%6.2fx,%6.2fx) %6d %17.2f%%\n", Bin * BinWidth,
                  (Bin + 1) * BinWidth, Counts[Bin],
                  TotalGap > 0 ? 100.0 * GapShare[Bin] / TotalGap : 0.0);
    }

    std::sort(Rules.begin(), Rules.end(),
              [](const RuleGap &A, const RuleGap &B) {
                return (A.StiSeconds - A.SynthSeconds) >
                       (B.StiSeconds - B.SynthSeconds);
              });
    std::printf("\ntop outlier rules by absolute gap:\n");
    for (std::size_t I = 0; I < std::min<std::size_t>(4, Rules.size());
         ++I)
      std::printf("  %5.1fx  sti=%.4fs synth=%.4fs  %.60s\n",
                  Rules[I].Slowdown, Rules[I].StiSeconds,
                  Rules[I].SynthSeconds, Rules[I].Label.c_str());
  }

  // Section 5.2: the hand-crafted super-instruction (fused conditions).
  interp::EngineOptions Fused;
  Fused.FuseConditions = true;
  InterpMeasurement StiFused = H.runInterp(W, Fused);
  if (StiFused.TotalTuples != Sti.TotalTuples) {
    std::printf("\nFUSED RESULT MISMATCH\n");
    return 1;
  }

  std::printf("\nfused-condition super-instructions (Sec 5.2):\n");
  std::printf("  total:      sti %.4fs -> fused %.4fs  (slowdown %.2fx -> "
              "%.2fx vs synth %.4fs)\n",
              Sti.Seconds, StiFused.Seconds, Sti.Seconds / Synth.RunSeconds,
              StiFused.Seconds / Synth.RunSeconds, Synth.RunSeconds);
  // The moved_label analog specifically.
  for (const auto &[Label, Before] : Sti.RuleSeconds) {
    if (Label.find("moved_label") == std::string::npos ||
        Label.find(":-") == std::string::npos)
      continue;
    auto It = StiFused.RuleSeconds.find(Label);
    if (It == StiFused.RuleSeconds.end() || Before < 1e-3)
      continue;
    std::printf("  %-50.50s %.4fs -> %.4fs (%.1fx faster)\n", Label.c_str(),
                Before, It->second, Before / std::max(It->second, 1e-9));
  }
  std::printf("  dispatches: %llu -> %llu (%.1f%% eliminated)\n",
              static_cast<unsigned long long>(Sti.Dispatches),
              static_cast<unsigned long long>(StiFused.Dispatches),
              100.0 * (1.0 - static_cast<double>(StiFused.Dispatches) /
                                 static_cast<double>(Sti.Dispatches)));
  return 0;
}
