//===- bench/micro_update.cpp - Incremental vs full re-evaluation -------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the incremental maintenance subsystem on mixed insert/retract
/// streams: each batch is applied once through the Maintainer (counting +
/// DRed + scoped Reeval) and once as a full re-evaluation of the net EDB
/// from scratch, on the two serving-shaped workloads — skewed transitive
/// closure (many small communities, one hot community drawing a quarter
/// of the churn) and a doop-like points-to program (mutually recursive
/// vpt/heap plus a non-recursive consumer, partitioned into modules the
/// way intra-procedural locality partitions real call graphs).
/// Every batch is cross-checked: the maintained engine's relations must
/// equal the from-scratch oracle's exactly, so the numbers are only
/// reported for runs that were also correct.
///
/// Emits one JSON document (array of per-batch records, then one summary
/// record per workload) on stdout:
///
///   [{"workload": "skewed-tc", "batch": 1, "ops": 24, "inserts": 13,
///     "retracts": 11, "deleted_edb": 9, "rederived": 2,
///     "reeval_strata": 0, "incremental_seconds": ...,
///     "full_seconds": ..., "speedup": ...},
///    ...,
///    {"workload": "skewed-tc", "summary": true, "batches": 20,
///     "incremental_seconds": ..., "full_seconds": ..., "speedup": ...}]
///
/// Exits nonzero when any batch's maintained contents diverge from the
/// oracle. Speedups are hardware-honest; the aggregate ratio is what the
/// roadmap's >=10x target for the doop-like stream refers to.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "inc/Maintainer.h"
#include "interp/Engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

using namespace stird;

namespace {

/// Deterministic LCG: identical streams across platforms and reruns.
class Rng {
public:
  explicit Rng(std::uint64_t Seed) : State(Seed * 2862933555777941757ULL + 1) {}
  std::uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 33;
  }
  std::uint64_t next(std::uint64_t Bound) { return next() % Bound; }

private:
  std::uint64_t State;
};

/// Tuples are drawn inside one partition block of PartSize values: real
/// update streams have locality (a program edit touches one method, an
/// edge churns inside one community), and that locality is what makes
/// incremental maintenance beat re-evaluation — a deletion's DRed cascade
/// stays inside its partition while a full run pays for all of them. On a
/// fully connected graph DRed degenerates to re-deriving the whole
/// closure; that regime is visible by setting PartSize = Domain.
struct EdbSpec {
  const char *Name;
  std::size_t Arity;
  RamDomain Domain;   ///< column values drawn from [0, Domain)
  RamDomain PartSize; ///< values per partition block
  std::size_t Initial;///< initial fact count
  std::size_t SkewPct;///< % of draws forced into hot partition 0
};

struct UpdateWorkload {
  const char *Name;
  const char *Source;
  std::vector<EdbSpec> Edb;
};

const UpdateWorkload SkewedTc = {
    "skewed-tc",
    ".decl edge(a:number, b:number)\n"
    ".decl path(a:number, b:number)\n"
    "path(x, y) :- edge(x, y).\n"
    "path(x, z) :- path(x, y), edge(y, z).\n",
    {{"edge", 2, 7500, 10, 10000, 10}},
};

const UpdateWorkload DoopLike = {
    "doop-like",
    ".decl new(v:number, o:number)\n"
    ".decl assign(d:number, s:number)\n"
    ".decl load(d:number, s:number)\n"
    ".decl store(d:number, s:number)\n"
    ".decl vpt(v:number, o:number)\n"
    ".decl heap(o:number, p:number)\n"
    ".decl query(v:number)\n"
    "vpt(v, o) :- new(v, o).\n"
    "vpt(d, o) :- assign(d, s), vpt(s, o).\n"
    "heap(o, p) :- store(d, s), vpt(d, o), vpt(s, p).\n"
    "vpt(d, p) :- load(d, s), vpt(s, o), heap(o, p).\n"
    "query(v) :- vpt(v, o), new(_, o).\n",
    {{"new", 2, 24000, 12, 12000, 10},
     {"assign", 2, 24000, 12, 10000, 10},
     {"load", 2, 24000, 12, 4000, 10},
     {"store", 2, 24000, 12, 4000, 10}},
};

DynTuple drawTuple(Rng &R, const EdbSpec &Spec) {
  const RamDomain NumParts = Spec.Domain / Spec.PartSize;
  const RamDomain Part =
      R.next(100) < Spec.SkewPct
          ? 0
          : static_cast<RamDomain>(R.next(NumParts));
  DynTuple Tuple(Spec.Arity);
  for (std::size_t Col = 0; Col < Spec.Arity; ++Col)
    Tuple[Col] = Part * Spec.PartSize +
                 static_cast<RamDomain>(R.next(Spec.PartSize));
  return Tuple;
}

/// EDB state per relation, tracked alongside the maintained engine so the
/// full-re-evaluation oracle can be seeded with the net contents.
using EdbState = std::vector<std::set<DynTuple>>;

double seconds(std::chrono::steady_clock::time_point From,
               std::chrono::steady_clock::time_point To) {
  return std::chrono::duration<double>(To - From).count();
}

struct BatchRecord {
  std::size_t Batch;
  std::size_t Inserts, Retracts, DeletedEdb, Rederived, ReevalStrata;
  double IncSeconds, FullSeconds;
};

struct WorkloadResult {
  std::vector<BatchRecord> Batches;
  double IncSeconds = 0, FullSeconds = 0;
  bool Correct = true;
};

WorkloadResult runWorkload(const UpdateWorkload &W, std::size_t NumBatches,
                           std::size_t OpsPerBatch, std::uint64_t Seed) {
  WorkloadResult Result;
  core::CompileOptions Compile;
  Compile.EmitMaintenance = true;
  auto Prog = core::Program::fromSource(W.Source, nullptr, Compile);
  if (!Prog || !Prog->getRam().hasMaintenance()) {
    std::fprintf(stderr, "micro_update: %s has no maintenance plan\n",
                 W.Name);
    Result.Correct = false;
    return Result;
  }
  std::vector<std::string> Relations;
  for (const auto &Decl : Prog->getAst().Relations)
    Relations.push_back(Decl->getName());

  Rng R(Seed);
  EdbState State(W.Edb.size());
  for (std::size_t Rel = 0; Rel < W.Edb.size(); ++Rel)
    while (State[Rel].size() < W.Edb[Rel].Initial)
      State[Rel].insert(drawTuple(R, W.Edb[Rel]));

  interp::EngineOptions Opts;
  Opts.SuppressIo = true;
  Opts.EchoPrintSize = false;
  auto Eng = Prog->makeEngine(Opts);
  for (std::size_t Rel = 0; Rel < W.Edb.size(); ++Rel)
    Eng->insertTuples(W.Edb[Rel].Name,
                      {State[Rel].begin(), State[Rel].end()});
  Eng->run();
  inc::Maintainer Maint(Prog->getRam(), *Eng);
  Maint.bootstrap();

  for (std::size_t B = 1; B <= NumBatches; ++B) {
    // ~35% retractions of live tuples, the rest fresh inserts; net-effect
    // per tuple (last op wins) so the batch and the tracked state agree.
    std::vector<std::map<DynTuple, bool>> Net(W.Edb.size());
    for (std::size_t I = 0; I < OpsPerBatch; ++I) {
      const std::size_t Rel = R.next(W.Edb.size());
      const bool Retract = !State[Rel].empty() && R.next(100) < 35;
      if (Retract) {
        auto It = State[Rel].begin();
        std::advance(It, R.next(State[Rel].size()));
        Net[Rel][*It] = true;
        State[Rel].erase(It);
      } else {
        DynTuple Tuple = drawTuple(R, W.Edb[Rel]);
        State[Rel].insert(Tuple);
        Net[Rel][std::move(Tuple)] = false;
      }
    }
    inc::MixedBatch Batch;
    BatchRecord Rec{B, 0, 0, 0, 0, 0, 0, 0};
    for (std::size_t Rel = 0; Rel < W.Edb.size(); ++Rel) {
      if (Net[Rel].empty())
        continue;
      inc::RelationOps RO;
      RO.Relation = W.Edb[Rel].Name;
      for (const auto &[Tuple, Retract] : Net[Rel])
        (Retract ? RO.Retracts : RO.Inserts).push_back(Tuple);
      Rec.Inserts += RO.Inserts.size();
      Rec.Retracts += RO.Retracts.size();
      Batch.push_back(std::move(RO));
    }

    const auto IncFrom = std::chrono::steady_clock::now();
    const inc::MaintenanceReport Report = Maint.apply(Batch);
    const auto IncTo = std::chrono::steady_clock::now();
    Rec.DeletedEdb = Report.Deleted;
    Rec.ReevalStrata = Report.ReevalStrata;
    for (const inc::StratumReport &SR : Report.Strata)
      Rec.Rederived += SR.Rederived;

    // The full re-evaluation this batch would have cost: fresh engine,
    // net EDB, one run from scratch. Also the correctness oracle.
    const auto FullFrom = std::chrono::steady_clock::now();
    auto Oracle = Prog->makeEngine(Opts);
    for (std::size_t Rel = 0; Rel < W.Edb.size(); ++Rel)
      Oracle->insertTuples(W.Edb[Rel].Name,
                           {State[Rel].begin(), State[Rel].end()});
    Oracle->run();
    const auto FullTo = std::chrono::steady_clock::now();

    for (const std::string &Rel : Relations) {
      std::vector<DynTuple> Got = Eng->getTuples(Rel);
      std::vector<DynTuple> Want = Oracle->getTuples(Rel);
      std::sort(Got.begin(), Got.end());
      std::sort(Want.begin(), Want.end());
      if (Got != Want) {
        std::fprintf(stderr,
                     "micro_update: %s batch %zu: relation %s diverged "
                     "(%zu maintained vs %zu oracle tuples)\n",
                     W.Name, B, Rel.c_str(), Got.size(), Want.size());
        Result.Correct = false;
      }
    }

    Rec.IncSeconds = seconds(IncFrom, IncTo);
    Rec.FullSeconds = seconds(FullFrom, FullTo);
    Result.IncSeconds += Rec.IncSeconds;
    Result.FullSeconds += Rec.FullSeconds;
    Result.Batches.push_back(Rec);
  }
  return Result;
}

void printBatch(const char *Workload, const BatchRecord &R, bool First) {
  std::printf("%s\n  {\"workload\": \"%s\", \"batch\": %zu, \"ops\": %zu, "
              "\"inserts\": %zu, \"retracts\": %zu, \"deleted_edb\": %zu, "
              "\"rederived\": %zu, \"reeval_strata\": %zu, "
              "\"incremental_seconds\": %.6f, \"full_seconds\": %.6f, "
              "\"speedup\": %.2f}",
              First ? "" : ",", Workload, R.Batch, R.Inserts + R.Retracts,
              R.Inserts, R.Retracts, R.DeletedEdb, R.Rederived,
              R.ReevalStrata, R.IncSeconds, R.FullSeconds,
              R.IncSeconds > 0 ? R.FullSeconds / R.IncSeconds : 0.0);
}

} // namespace

int main(int argc, char **argv) {
  // --quick: fewer, smaller batches for smoke runs in CI.
  const bool Quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::size_t NumBatches = Quick ? 6 : 20;
  const std::size_t OpsPerBatch = Quick ? 16 : 24;

  const UpdateWorkload *Workloads[] = {&SkewedTc, &DoopLike};
  bool Correct = true;
  std::printf("[");
  bool First = true;
  for (const UpdateWorkload *W : Workloads) {
    const WorkloadResult Result =
        runWorkload(*W, NumBatches, OpsPerBatch, 42);
    Correct = Correct && Result.Correct;
    for (const BatchRecord &R : Result.Batches) {
      printBatch(W->Name, R, First);
      First = false;
    }
    const double Speedup = Result.IncSeconds > 0
                               ? Result.FullSeconds / Result.IncSeconds
                               : 0.0;
    std::printf("%s\n  {\"workload\": \"%s\", \"summary\": true, "
                "\"batches\": %zu, \"incremental_seconds\": %.6f, "
                "\"full_seconds\": %.6f, \"speedup\": %.2f}",
                First ? "" : ",", W->Name, Result.Batches.size(),
                Result.IncSeconds, Result.FullSeconds, Speedup);
    First = false;
    std::fprintf(stderr,
                 "%-10s %zu batches  incremental %.4f s  full %.4f s  "
                 "speedup %.1fx\n",
                 W->Name, Result.Batches.size(), Result.IncSeconds,
                 Result.FullSeconds, Speedup);
  }
  std::printf("\n]\n");
  if (!Correct)
    std::fprintf(stderr,
                 "micro_update: maintained contents diverged from the "
                 "oracle\n");
  return Correct ? 0 : 1;
}
