//===- bench/sec55_register_pressure.cpp - Section 5.5 register ablation -------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the second half of Section 5.5: the register-pressure
/// optimization (Section 4.3, Fig 12). The lambda-CASE STI is compared with
/// the identical executor compiled with plain case bodies (which forces the
/// compiler to reserve the worst case's callee-saved registers on every
/// execute() entry). Paper: 5-12.5% fewer instructions, 6.3% average
/// improvement.
///
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <cstdio>
#include <vector>

using namespace stird;
using namespace stird::bench;

int main() {
  printHeader("Sec 5.5 — register-pressure (lambda CASE) ablation",
              "6.3% average improvement");

  Harness H;
  std::printf("%-16s %-14s %12s %12s %10s\n", "suite", "benchmark",
              "plain(s)", "lambda(s)", "relative");

  std::vector<double> Relatives;
  for (const Workload &W : allSuites()) {
    interp::EngineOptions Plain;
    Plain.TheBackend = interp::Backend::StaticPlain;
    InterpMeasurement WithoutLambda = H.runInterp(W, Plain);

    InterpMeasurement WithLambda = H.runInterp(W); // StaticLambda default

    if (WithoutLambda.TotalTuples != WithLambda.TotalTuples) {
      std::printf("%-16s %-14s   RESULT MISMATCH\n", W.Suite.c_str(),
                  W.Name.c_str());
      continue;
    }
    const double Relative = WithLambda.Seconds / WithoutLambda.Seconds;
    Relatives.push_back(Relative);
    std::printf("%-16s %-14s %12.4f %12.4f %10.3f\n", W.Suite.c_str(),
                W.Name.c_str(), WithoutLambda.Seconds, WithLambda.Seconds,
                Relative);
  }

  if (!Relatives.empty())
    std::printf("\naverage relative runtime with lambda CASE: %.3f "
                "(%.1f%% improvement)\n",
                geomean(Relatives), 100.0 * (1.0 - geomean(Relatives)));
  return 0;
}
