//===- bench/micro_obs.cpp - Observability counter overhead --------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Guards the cost of the per-relation observability counters
/// (EngineOptions::CollectStats): a transitive closure over a long chain
/// is evaluated with counters on and off, on both the static and the
/// dynamic engine. The hot-path cost of a counter is one non-atomic
/// increment behind a pointer null-check, so the on/off delta must stay
/// within noise — the suite prints the measured overhead and flags it
/// when the median exceeds 2%.
///
/// Run directly (it is also a standalone check, exit code 1 on failure):
///
///   build/bench/micro_obs [--benchmark_filter=...]
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "interp/Engine.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace stird;
using namespace stird::interp;

namespace {

constexpr const char *TcSource = R"(
.decl edge(a:number, b:number)
.decl path(a:number, b:number)
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
)";

constexpr RamDomain ChainLength = 160;

double runOnce(Backend TheBackend, bool CollectStats) {
  auto Prog = core::Program::fromSource(TcSource);
  EngineOptions Options;
  Options.TheBackend = TheBackend;
  Options.CollectStats = CollectStats;
  auto E = Prog->makeEngine(Options);
  std::vector<DynTuple> Edges;
  for (RamDomain I = 0; I < ChainLength; ++I)
    Edges.push_back({I, I + 1});
  E->insertTuples("edge", Edges);
  const auto Start = std::chrono::steady_clock::now();
  E->run();
  const auto End = std::chrono::steady_clock::now();
  if (E->getTuples("path").size() !=
      static_cast<std::size_t>(ChainLength) * (ChainLength + 1) / 2)
    std::abort();
  return std::chrono::duration<double>(End - Start).count();
}

void BM_TransitiveClosure(benchmark::State &State, Backend TheBackend,
                          bool CollectStats) {
  for (auto _ : State)
    benchmark::DoNotOptimize(runOnce(TheBackend, CollectStats));
}

/// Median-of-N paired comparison, reported outside google-benchmark so the
/// binary doubles as a pass/fail overhead gate.
int checkOverhead() {
  constexpr int Repeats = 7;
  constexpr double LimitPct = 2.0;
  int Failures = 0;
  for (Backend TheBackend :
       {Backend::StaticLambda, Backend::DynamicAdapter}) {
    std::vector<double> On, Off;
    // Warm-up run per configuration, then interleaved timed pairs so
    // drift (frequency scaling, page cache) hits both sides equally.
    runOnce(TheBackend, true);
    runOnce(TheBackend, false);
    for (int I = 0; I < Repeats; ++I) {
      On.push_back(runOnce(TheBackend, true));
      Off.push_back(runOnce(TheBackend, false));
    }
    std::sort(On.begin(), On.end());
    std::sort(Off.begin(), Off.end());
    const double MedianOn = On[Repeats / 2], MedianOff = Off[Repeats / 2];
    const double OverheadPct = 100.0 * (MedianOn - MedianOff) / MedianOff;
    const bool Ok = OverheadPct <= LimitPct;
    std::printf("counters %-7s stats-on %.6fs stats-off %.6fs "
                "overhead %+.2f%% (limit %.1f%%) %s\n",
                TheBackend == Backend::StaticLambda ? "sti" : "dynamic",
                MedianOn, MedianOff, OverheadPct, LimitPct,
                Ok ? "OK" : "FAIL");
    Failures += Ok ? 0 : 1;
  }
  return Failures;
}

} // namespace

BENCHMARK_CAPTURE(BM_TransitiveClosure, sti_stats_on,
                  Backend::StaticLambda, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TransitiveClosure, sti_stats_off,
                  Backend::StaticLambda, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TransitiveClosure, dynamic_stats_on,
                  Backend::DynamicAdapter, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TransitiveClosure, dynamic_stats_off,
                  Backend::DynamicAdapter, false)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return checkOverhead() == 0 ? 0 : 1;
}
