//===- bench/micro_obs.cpp - Observability counter overhead --------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Guards the cost of the per-relation observability counters
/// (EngineOptions::CollectStats): a transitive closure over a long chain
/// is evaluated with counters on and off, on both the static and the
/// dynamic engine. The hot-path cost of a counter is one non-atomic
/// increment behind a pointer null-check, so the on/off delta must stay
/// within noise — the suite prints the measured overhead and flags it
/// when the median exceeds 2%.
///
/// Also guards the serving layer's latency record path: the sharded
/// LatencyAggregator must not serialize under contention. The gate drives
/// record() from many threads against a mutex-guarded baseline; the
/// sharded aggregator's throughput must not collapse below its own
/// single-thread throughput the way a lock does.
///
/// Run directly (it is also a standalone check, exit code 1 on failure):
///
///   build/bench/micro_obs [--benchmark_filter=...]
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "interp/Engine.h"
#include "obs/Serve.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace stird;
using namespace stird::interp;

namespace {

constexpr const char *TcSource = R"(
.decl edge(a:number, b:number)
.decl path(a:number, b:number)
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
)";

constexpr RamDomain ChainLength = 160;

double runOnce(Backend TheBackend, bool CollectStats) {
  auto Prog = core::Program::fromSource(TcSource);
  EngineOptions Options;
  Options.TheBackend = TheBackend;
  Options.CollectStats = CollectStats;
  auto E = Prog->makeEngine(Options);
  std::vector<DynTuple> Edges;
  for (RamDomain I = 0; I < ChainLength; ++I)
    Edges.push_back({I, I + 1});
  E->insertTuples("edge", Edges);
  const auto Start = std::chrono::steady_clock::now();
  E->run();
  const auto End = std::chrono::steady_clock::now();
  if (E->getTuples("path").size() !=
      static_cast<std::size_t>(ChainLength) * (ChainLength + 1) / 2)
    std::abort();
  return std::chrono::duration<double>(End - Start).count();
}

void BM_TransitiveClosure(benchmark::State &State, Backend TheBackend,
                          bool CollectStats) {
  for (auto _ : State)
    benchmark::DoNotOptimize(runOnce(TheBackend, CollectStats));
}

/// Median-of-N paired comparison, reported outside google-benchmark so the
/// binary doubles as a pass/fail overhead gate.
int checkOverhead() {
  constexpr int Repeats = 7;
  constexpr double LimitPct = 2.0;
  int Failures = 0;
  for (Backend TheBackend :
       {Backend::StaticLambda, Backend::DynamicAdapter}) {
    std::vector<double> On, Off;
    // Warm-up run per configuration, then interleaved timed pairs so
    // drift (frequency scaling, page cache) hits both sides equally.
    runOnce(TheBackend, true);
    runOnce(TheBackend, false);
    for (int I = 0; I < Repeats; ++I) {
      On.push_back(runOnce(TheBackend, true));
      Off.push_back(runOnce(TheBackend, false));
    }
    std::sort(On.begin(), On.end());
    std::sort(Off.begin(), Off.end());
    const double MedianOn = On[Repeats / 2], MedianOff = Off[Repeats / 2];
    const double OverheadPct = 100.0 * (MedianOn - MedianOff) / MedianOff;
    const bool Ok = OverheadPct <= LimitPct;
    std::printf("counters %-7s stats-on %.6fs stats-off %.6fs "
                "overhead %+.2f%% (limit %.1f%%) %s\n",
                TheBackend == Backend::StaticLambda ? "sti" : "dynamic",
                MedianOn, MedianOff, OverheadPct, LimitPct,
                Ok ? "OK" : "FAIL");
    Failures += Ok ? 0 : 1;
  }
  return Failures;
}

//===----------------------------------------------------------------------===//
// LatencyAggregator contention: sharded record vs a mutex baseline
//===----------------------------------------------------------------------===//

/// What the aggregator would look like with the obvious lock: one mutex
/// around a name -> summary map. The contention gate measures how far the
/// sharded design pulls away from this under concurrent recorders.
struct MutexAggregator {
  std::mutex M;
  std::map<std::string, obs::LatencySummary> Summaries;
  void record(const std::string &Command, std::uint64_t Micros) {
    std::lock_guard<std::mutex> Lock(M);
    Summaries[Command].record(Micros);
  }
};

const std::string RecordCommands[2] = {"query", "load"};

/// Aggregate record() throughput (ops/s) with \p NumThreads concurrent
/// recorders, all threads started together behind a latch.
template <typename Aggregator>
double recordThroughput(Aggregator &Agg, unsigned NumThreads,
                        std::size_t OpsPerThread) {
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Ready.fetch_add(1);
      while (!Go.load(std::memory_order_acquire)) {
      }
      for (std::size_t I = 0; I < OpsPerThread; ++I)
        Agg.record(RecordCommands[(T + I) & 1],
                   static_cast<std::uint64_t>(1 + (I & 1023)));
    });
  while (Ready.load() != NumThreads) {
  }
  const auto Start = std::chrono::steady_clock::now();
  Go.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
  const auto End = std::chrono::steady_clock::now();
  return static_cast<double>(NumThreads) *
         static_cast<double>(OpsPerThread) /
         std::chrono::duration<double>(End - Start).count();
}

void BM_LatencyRecordSharded(benchmark::State &State) {
  static obs::LatencyAggregator Agg;
  std::size_t I = 0;
  for (auto _ : State)
    Agg.record(RecordCommands[(State.thread_index() + I++) & 1],
               static_cast<std::uint64_t>(1 + (I & 1023)));
}

void BM_LatencyRecordMutex(benchmark::State &State) {
  static MutexAggregator Agg;
  std::size_t I = 0;
  for (auto _ : State)
    Agg.record(RecordCommands[(State.thread_index() + I++) & 1],
               static_cast<std::uint64_t>(1 + (I & 1023)));
}

/// The wait-free gate: under full contention the sharded record path keeps
/// at least its single-thread throughput (a lock collapses well below it),
/// and nothing recorded concurrently is lost.
int checkRecordContention() {
  const unsigned NumThreads =
      std::max(2u, std::min(8u, std::thread::hardware_concurrency()));
  constexpr std::size_t OpsPerThread = 400000;
  constexpr int Repeats = 5;

  auto median = [](std::vector<double> V) {
    std::sort(V.begin(), V.end());
    return V[V.size() / 2];
  };
  std::vector<double> Single, Contended, Locked;
  obs::LatencyAggregator Warm; // first-seen registration off the clock
  recordThroughput(Warm, 1, 1024);
  for (int I = 0; I < Repeats; ++I) {
    obs::LatencyAggregator A1, AN;
    MutexAggregator MN;
    Single.push_back(recordThroughput(A1, 1, OpsPerThread));
    Contended.push_back(recordThroughput(AN, NumThreads, OpsPerThread));
    Locked.push_back(recordThroughput(MN, NumThreads, OpsPerThread));
    // Exactness under contention: every record landed in some shard.
    std::uint64_t Total = 0;
    for (const auto &[Name, Hist] : AN.snapshot())
      Total += Hist.count();
    if (Total != static_cast<std::uint64_t>(NumThreads) * OpsPerThread) {
      std::printf("contention: lost records (%llu of %llu)\n",
                  static_cast<unsigned long long>(Total),
                  static_cast<unsigned long long>(
                      static_cast<std::uint64_t>(NumThreads) *
                      OpsPerThread));
      return 1;
    }
  }
  const double MedSingle = median(Single);
  const double MedContended = median(Contended);
  const double MedLocked = median(Locked);
  // Throughput must not collapse under contention; 0.8x absorbs the
  // cache-line traffic two threads per shard can cause on small machines.
  const bool Ok = MedContended >= 0.8 * MedSingle;
  std::printf("latency record 1-thread %.2fM/s %u-thread sharded %.2fM/s "
              "mutex %.2fM/s (sharded/mutex %.1fx) %s\n",
              MedSingle / 1e6, NumThreads, MedContended / 1e6,
              MedLocked / 1e6, MedContended / MedLocked,
              Ok ? "OK" : "FAIL");
  return Ok ? 0 : 1;
}

} // namespace

BENCHMARK_CAPTURE(BM_TransitiveClosure, sti_stats_on,
                  Backend::StaticLambda, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TransitiveClosure, sti_stats_off,
                  Backend::StaticLambda, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TransitiveClosure, dynamic_stats_on,
                  Backend::DynamicAdapter, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TransitiveClosure, dynamic_stats_off,
                  Backend::DynamicAdapter, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LatencyRecordSharded)->Threads(1)->Threads(8);
BENCHMARK(BM_LatencyRecordMutex)->Threads(1)->Threads(8);

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return checkOverhead() + checkRecordContention() == 0 ? 0 : 1;
}
