//===- bench/workloads/Harness.cpp - Measurement harness ----------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include "synth/CompilerDriver.h"
#include "synth/CppSynthesizer.h"
#include "util/Csv.h"
#include "util/MiscUtil.h"
#include "util/Timer.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>

using namespace stird;
using namespace stird::bench;

Harness::Harness(std::string WorkDir, int Repetitions)
    : WorkDir(std::move(WorkDir)), Repetitions(Repetitions) {
  std::filesystem::create_directories(this->WorkDir);
}

std::string Harness::materializeFacts(const Workload &W) {
  const std::string Dir = WorkDir + "/" + W.Name;
  std::filesystem::create_directories(Dir);
  const std::string Stamp = Dir + "/.facts_ready";
  if (std::filesystem::exists(Stamp))
    return Dir;
  for (const auto &[Relation, Tuples] : W.Facts) {
    std::ofstream Out(Dir + "/" + Relation + ".facts");
    for (const DynTuple &Tuple : Tuples) {
      for (std::size_t I = 0; I < Tuple.size(); ++I) {
        if (I != 0)
          Out << '\t';
        Out << Tuple[I];
      }
      Out << '\n';
    }
  }
  std::ofstream(Stamp) << "ok\n";
  return Dir;
}

InterpMeasurement Harness::runInterp(const Workload &W,
                                     interp::EngineOptions Options) {
  const std::string FactDir = materializeFacts(W);
  Options.FactDir = FactDir;
  Options.OutputDir = FactDir;
  Options.EchoPrintSize = false;

  InterpMeasurement Result;
  Result.Seconds = 1e100;
  for (int Rep = 0; Rep < Repetitions; ++Rep) {
    // A fresh pipeline per repetition: like souffle-interpreter, the
    // measured time covers parsing, translation, index selection and
    // interpreter-tree generation — the overhead that produces the
    // paper's specrand outlier.
    Timer T;
    std::vector<std::string> Errors;
    auto Prog = core::Program::fromSource(W.Source, &Errors);
    if (!Prog)
      fatal("workload '" + W.Name + "' failed to compile: " +
            (Errors.empty() ? "?" : Errors[0]));
    auto Engine = Prog->makeEngine(Options);
    Engine->run();
    double Seconds = T.seconds();
    if (Seconds < Result.Seconds) {
      Result.Seconds = Seconds;
      Result.Dispatches = Engine->getNumDispatches();
    }
    if (Rep + 1 == Repetitions) {
      Result.TotalTuples = 0;
      for (const auto &Rel : Prog->getRam().getRelations())
        Result.TotalTuples +=
            Engine->getRelation(Rel->getName())->size();
      Result.RuleSeconds.clear();
      for (const auto &Rule : Engine->getProfiler().rules())
        Result.RuleSeconds[Rule.Label] = Rule.Seconds;
    }
  }
  return Result;
}

SynthMeasurement Harness::runSynth(const Workload &W) {
  const std::string FactDir = materializeFacts(W);
  SynthMeasurement Result;

  std::vector<std::string> Errors;
  auto Prog = core::Program::fromSource(W.Source, &Errors);
  if (!Prog)
    fatal("workload '" + W.Name + "' failed to compile: " +
          (Errors.empty() ? "?" : Errors[0]));

  const std::string Cpp = synth::synthesize(
      Prog->getRam(), Prog->getIndexes(), Prog->getSymbolTable());

  // Compile cache: keyed by the generated source's hash so edits to the
  // synthesizer invalidate stale binaries; the measured compile time is
  // persisted alongside for Table 1.
  const std::string Dir = WorkDir + "/" + W.Name;
  const std::size_t Hash = std::hash<std::string>{}(Cpp);
  const std::string Binary = Dir + "/synth.bin";
  const std::string Meta = Dir + "/synth.meta";

  bool Cached = false;
  if (std::filesystem::exists(Binary) && std::filesystem::exists(Meta)) {
    std::ifstream In(Meta);
    std::size_t StoredHash = 0;
    double StoredCompile = 0;
    In >> StoredHash >> StoredCompile;
    if (StoredHash == Hash) {
      Result.CompileSeconds = StoredCompile;
      Cached = true;
    }
  }
  if (!Cached) {
    auto Compiled = synth::compileSynthesized(Cpp, Dir, "synth");
    if (!Compiled)
      return Result; // Ok stays false
    std::filesystem::rename(Compiled->BinaryPath, Binary);
    Result.CompileSeconds = Compiled->CompileSeconds;
    std::ofstream(Meta) << Hash << " " << Result.CompileSeconds << "\n";
  }

  Result.RunSeconds = 1e100;
  for (int Rep = 0; Rep < Repetitions; ++Rep) {
    synth::RunOutcome Run =
        synth::runSynthesized(Binary, FactDir, Dir, /*StoreOutputs=*/false);
    if (Run.ExitCode != 0)
      return Result;
    Result.RunSeconds = std::min(Result.RunSeconds, Run.WallSeconds);
    if (Rep + 1 == Repetitions) {
      Result.TotalTuples = 0;
      for (const auto &[Name, Size] : Run.RelationSizes)
        Result.TotalTuples += Size;
      Result.RuleSeconds = Run.RuleSeconds;
    }
  }
  Result.Ok = true;
  return Result;
}

void stird::bench::printHeader(const std::string &Title,
                               const std::string &PaperClaim) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", Title.c_str());
  std::printf("paper: %s\n", PaperClaim.c_str());
  std::printf("==============================================================="
              "=================\n");
}

double stird::bench::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double LogSum = 0;
  for (double Value : Values)
    LogSum += std::log(Value);
  return std::exp(LogSum / static_cast<double>(Values.size()));
}
