//===- bench/workloads/Workloads.cpp - Synthetic benchmark suites -------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <random>

using namespace stird;
using namespace stird::bench;

namespace {

//===----------------------------------------------------------------------===//
// VPC: network reachability
//===----------------------------------------------------------------------===//

const char *VpcProgram = R"(
  .decl in_subnet(inst:number, subnet:number)
  .decl subnet_link(a:number, b:number)
  .decl acl_allow(subnet:number, port:number)
  .decl allows(inst:number, port:number)
  .decl listens(inst:number, port:number)
  .input in_subnet
  .input subnet_link
  .input acl_allow
  .input allows
  .input listens

  .decl subnet_reach(a:number, b:number)
  subnet_reach(a, b) :- subnet_link(a, b).
  subnet_reach(a, c) :- subnet_reach(a, b), subnet_link(b, c).

  .decl can_talk(a:number, b:number, p:number)
  // The pair-level guard mimics CIDR prefix matching: shift/mask
  // arithmetic evaluated once per instance pair, the dispatch-heavy
  // portion of the paper's VPC workload.
  can_talk(a, b, p) :-
      in_subnet(a, sa), in_subnet(b, sb),
      (a bxor b) band 1023 != 1023,
      ((a bshl 2) bxor (b bshr 1)) band 8191 != 8191,
      (a * 31 + b * 17) % 127 != 126,
      (a bor b) band 511 != 511,
      a != b,
      subnet_reach(sa, sb),
      allows(a, p), listens(b, p), acl_allow(sb, p).

  .decl exposed(b:number)
  exposed(b) :- can_talk(_, b, 22).
  .printsize can_talk
)";

Workload makeVpc(const std::string &Name, int NumSubnets, int NumInstances,
                 unsigned Seed) {
  Workload W;
  W.Suite = "vpc";
  W.Name = Name;
  W.Source = VpcProgram;

  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<RamDomain> Subnet(0, NumSubnets - 1);
  std::uniform_int_distribution<RamDomain> Port(20, 25);

  std::vector<DynTuple> InSubnet, Links, Acl, Allows, Listens;
  for (RamDomain I = 0; I < NumInstances; ++I) {
    InSubnet.push_back({I, Subnet(Rng)});
    Allows.push_back({I, Port(Rng)});
    Listens.push_back({I, Port(Rng)});
  }
  for (RamDomain S = 0; S < NumSubnets; ++S) {
    Links.push_back({S, (S + 1) % NumSubnets});
    if (S % 4 == 0)
      Links.push_back({S, (S * 7 + 3) % NumSubnets});
    for (RamDomain P = 20; P <= 25; ++P)
      if ((S + P) % 3 != 0)
        Acl.push_back({S, P});
  }
  W.Facts = {{"in_subnet", InSubnet},
             {"subnet_link", Links},
             {"acl_allow", Acl},
             {"allows", Allows},
             {"listens", Listens}};
  return W;
}

//===----------------------------------------------------------------------===//
// DDisasm: datalog disassembly
//===----------------------------------------------------------------------===//

const char *DdisasmProgram = R"(
  .decl instruction(ea:number, size:number)
  .decl op_immediate(ea:number, v:number)
  .decl data_region(begin:number, size:number)
  .decl entry(ea:number)
  .input instruction
  .input op_immediate
  .input data_region
  .input entry

  .decl next(ea:number, n:number)
  next(ea, ea + sz) :- instruction(ea, sz).

  .decl code(ea:number)
  code(ea) :- entry(ea).
  code(n) :- code(ea), next(ea, n), n < 16777216.

  // The paper's moved_label shape (Fig 17): a depth-2 loop nest whose
  // inner filter strings together many small arithmetic operations. Every
  // conjunct references both loop tuples, so none of them can be hoisted
  // out of the inner loop — exactly the pattern whose dispatches dominate
  // the gamess/gcc gap in Section 5.2.
  .decl moved_label(ea:number, b:number)
  moved_label(ea, b) :-
      op_immediate(ea, v), data_region(b, sz),
      (v - b) + (b - v) = 0, (v bxor b) band 134217728 = 0,
      v >= b, v < b + sz, (v - b) % 8 = 0,
      (v band 7) = (b band 7), ea + v > b + 4.

  .decl sym_diff(ea:number, d:number)
  sym_diff(ea, v - b) :- moved_label(ea, b), op_immediate(ea, v).

  .decl code_imm(ea:number, v:number)
  code_imm(ea, v) :- op_immediate(ea, v), code(ea).

  // The index-heavy bulk of a disassembler: grouping instructions by
  // decoded size. An indexed self-join whose cost is dominated by DER
  // range scans and inserts — the work where interpreter and synthesizer
  // are closest, which is why the paper's per-rule histogram puts most
  // rules under 2.5x while the arithmetic outliers reach 32x.
  .decl same_size(a:number, b:number)
  same_size(a, b) :- instruction(a, s), instruction(b, s), a < b.

  .printsize moved_label
)";

Workload makeDdisasm(const std::string &Name, int NumInstructions,
                     int NumImmediates, int NumRegions, unsigned Seed,
                     int ExtraRules = 0) {
  Workload W;
  W.Suite = "ddisasm";
  W.Name = Name;
  W.Source = DdisasmProgram;

  // specrand-like configurations model a large *program* over a tiny
  // *input*: hundreds of extra rules make frontend + interpreter-tree
  // generation the dominant interpreter cost, while the synthesized
  // binary pays for them at compile time instead (the paper's 23x
  // specrand outlier and the Table 1 ratios).
  if (ExtraRules > 0) {
    W.Source += "\n  .decl aux0(x:number)\n  .input aux0\n";
    for (int I = 1; I <= ExtraRules; ++I)
      W.Source += "  .decl aux" + std::to_string(I) +
                  "(x:number)\n  aux" + std::to_string(I) + "(x) :- aux" +
                  std::to_string(I - 1) + "(x), x + " + std::to_string(I) +
                  " >= 0, x band 262143 != 262143.\n";
    W.Facts.push_back({"aux0", {{1}, {2}, {3}}});
  }

  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<RamDomain> Size(1, 8);
  std::uniform_int_distribution<RamDomain> Imm(0, 1 << 20);

  std::vector<DynTuple> Instructions, Immediates, Regions, Entries;
  RamDomain Ea = 0x1000;
  for (int I = 0; I < NumInstructions; ++I) {
    RamDomain Sz = Size(Rng);
    Instructions.push_back({Ea, Sz});
    Ea += Sz;
  }
  Entries.push_back({0x1000});
  for (int I = 0; I < NumImmediates; ++I)
    Immediates.push_back(
        {0x1000 + (Imm(Rng) % (NumInstructions * 4)), Imm(Rng)});
  RamDomain Begin = 1 << 19;
  for (int I = 0; I < NumRegions; ++I) {
    RamDomain Sz = 64 + (Imm(Rng) % 4096);
    Regions.push_back({Begin, Sz});
    Begin += Sz + (Imm(Rng) % 512);
  }
  W.Facts.push_back({"instruction", Instructions});
  W.Facts.push_back({"op_immediate", Immediates});
  W.Facts.push_back({"data_region", Regions});
  W.Facts.push_back({"entry", Entries});
  return W;
}

//===----------------------------------------------------------------------===//
// DOOP: points-to analysis
//===----------------------------------------------------------------------===//

const char *DoopProgram = R"(
  .decl new_(v:number, o:number)
  .decl assign(v:number, w:number)
  .decl store(v:number, f:number, w:number)
  .decl load(v:number, w:number, f:number)
  .input new_
  .input assign
  .input store
  .input load

  .decl vpt(v:number, o:number)
  .decl hpt(o:number, f:number, p:number)
  vpt(v, o) :- new_(v, o).
  vpt(v, o) :- assign(v, w), vpt(w, o).
  hpt(o, f, p) :- store(v, f, w), vpt(v, o), vpt(w, p).
  vpt(v, p) :- load(v, w, f), vpt(w, o), hpt(o, f, p).

  .decl alias(a:number, b:number)
  alias(a, b) :- vpt(a, o), vpt(b, o), a < b.
  .printsize vpt
)";

Workload makeDoop(const std::string &Name, int NumVars, int CopyFactor,
                  unsigned Seed) {
  Workload W;
  W.Suite = "doop";
  W.Name = Name;
  W.Source = DoopProgram;

  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<RamDomain> Var(0, NumVars - 1);
  std::uniform_int_distribution<RamDomain> Field(0, 7);

  std::vector<DynTuple> News, Assigns, Stores, Loads;
  for (RamDomain V = 0; V < NumVars; V += 5)
    News.push_back({V, V / 5});
  for (int I = 0; I < NumVars * CopyFactor; ++I)
    Assigns.push_back({Var(Rng), Var(Rng)});
  for (int I = 0; I < NumVars / 3; ++I)
    Stores.push_back({Var(Rng), Field(Rng), Var(Rng)});
  for (int I = 0; I < NumVars / 3; ++I)
    Loads.push_back({Var(Rng), Var(Rng), Field(Rng)});
  W.Facts = {{"new_", News},
             {"assign", Assigns},
             {"store", Stores},
             {"load", Loads}};
  return W;
}

} // namespace

std::vector<Workload> stird::bench::vpcSuite() {
  return {
      makeVpc("vpc-small", 40, 500, 11),
      makeVpc("vpc-medium", 60, 900, 12),
      makeVpc("vpc-large", 80, 1400, 13),
  };
}

std::vector<Workload> stird::bench::ddisasmSuite() {
  return {
      makeDdisasm("gzip-like", 3000, 500, 1500, 21),
      makeDdisasm("bzip2-like", 4000, 700, 2000, 22),
      makeDdisasm("mcf-like", 2500, 400, 1200, 23),
      makeDdisasm("gamess-like", 6000, 1000, 3000, 24),
      makeDdisasm("gcc-like", 8000, 1200, 3500, 25),
      makeDdisasm("specrand-like", 30, 5, 5, 26, /*ExtraRules=*/600),
  };
}

std::vector<Workload> stird::bench::doopSuite() {
  return {
      makeDoop("antlr-like", 320, 2, 31),
      makeDoop("bloat-like", 400, 2, 32),
      makeDoop("chart-like", 480, 2, 33),
      makeDoop("luindex-like", 360, 3, 34),
  };
}

std::vector<Workload> stird::bench::tinySuites() {
  return {
      makeVpc("vpc-tiny", 8, 60, 41),
      makeDdisasm("ddisasm-tiny", 300, 60, 150, 42),
      makeDoop("doop-tiny", 48, 2, 43),
  };
}

std::vector<Workload> stird::bench::allSuites() {
  std::vector<Workload> All = vpcSuite();
  for (auto &W : ddisasmSuite())
    All.push_back(std::move(W));
  for (auto &W : doopSuite())
    All.push_back(std::move(W));
  return All;
}

Workload stird::bench::gamessLike() {
  return makeDdisasm("gamess-like", 6000, 1000, 3000, 24);
}

Workload stird::bench::vpcXLarge() {
  return makeVpc("vpc-xlarge", 150, 5200, 14);
}

Workload stird::bench::skewedTc() {
  // Transitive closure over a hub-and-chain graph. The chain 1 -> 2 ->
  // ... -> C -> 0 feeds the hub; the hub fans out to H leaf spokes, so
  // H of the H + C edges (~90%) leave one vertex. Every path row ending
  // in the hub joins against all H spokes while every other row joins
  // against at most one edge — the per-morsel work imbalance that a
  // static 1:1 partition assignment cannot absorb and stealing can.
  constexpr RamDomain ChainLen = 120;
  constexpr RamDomain HubSpokes = 1080; // 90% of the edges
  Workload W;
  W.Suite = "sched";
  W.Name = "skewed-tc";
  W.Source = R"(
  .decl edge(a:number, b:number)
  .input edge
  .decl path(a:number, b:number)
  path(x, y) :- edge(x, y).
  path(x, z) :- path(x, y), edge(y, z).
  .printsize path
)";
  std::vector<DynTuple> Edges;
  for (RamDomain I = 1; I < ChainLen; ++I)
    Edges.push_back({I, I + 1});
  Edges.push_back({ChainLen, 0});
  for (RamDomain K = 1; K <= HubSpokes; ++K)
    Edges.push_back({0, ChainLen + K});
  W.Facts = {{"edge", Edges}};
  return W;
}
