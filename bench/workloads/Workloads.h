//===- bench/workloads/Workloads.h - Synthetic benchmark suites -*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-ins for the paper's three real-world benchmark suites
/// (Section 5): VPC (Amazon network reachability), DDisasm (datalog
/// disassembly over SPEC CPU2006 binaries) and DOOP (points-to analysis
/// over DaCapo). Each generator reproduces the performance-relevant shape
/// of its suite — see DESIGN.md's substitution table — at laptop scale,
/// with deterministic pseudo-random inputs.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_BENCH_WORKLOADS_H
#define STIRD_BENCH_WORKLOADS_H

#include "util/RamTypes.h"

#include <string>
#include <utility>
#include <vector>

namespace stird::bench {

/// One benchmark: a Datalog program plus generated input facts.
struct Workload {
  std::string Suite; ///< "vpc", "ddisasm" or "doop"
  std::string Name;
  std::string Source;
  /// Input relation name -> tuples (written as fact files by the harness).
  std::vector<std::pair<std::string, std::vector<DynTuple>>> Facts;
};

/// VPC-shaped: long-running recursive reachability joins where execution
/// dwarfs compile time (the <1 first-run ratios of Table 1).
std::vector<Workload> vpcSuite();

/// DDisasm-shaped: address arithmetic with the paper's `moved_label`
/// pattern — depth-2 loop nests whose inner filters carry many small
/// arithmetic dispatches (Fig 17) — plus a specrand-like near-empty input
/// where interpreter code generation dominates (the 23x outlier).
std::vector<Workload> ddisasmSuite();

/// DOOP-shaped: mutually recursive Andersen-style points-to analysis.
std::vector<Workload> doopSuite();

/// All suites concatenated (13 workloads).
std::vector<Workload> allSuites();

/// One miniature instance per suite — the same program shapes at a scale
/// that runs in milliseconds. Used by the cross-thread-count differential
/// tests, where each workload runs many (backend, thread-count) pairs.
std::vector<Workload> tinySuites();

/// The Fig 16 case-study workload: a gamess-like DDisasm instance whose
/// runtime is dominated by a handful of arithmetic-filter outlier rules.
Workload gamessLike();

/// The scheduler's adversarial workload: transitive closure over a graph
/// where one hub vertex owns ~90% of the edges, so a handful of morsels
/// carry almost all join work. A static 1:1 partition assignment idles
/// every thread but the hub's; work-stealing redistributes the hub morsels.
/// Used by micro_sched (stealing vs barrier emulation) and available to
/// differential suites.
Workload skewedTc();

/// A VPC instance big enough that the synthesizer beats the interpreter
/// even including compilation — the Table 1 "<1 ratio" phenomenon. Used
/// only by the Table 1 harness (it takes tens of seconds per engine).
Workload vpcXLarge();

} // namespace stird::bench

#endif // STIRD_BENCH_WORKLOADS_H
