//===- bench/workloads/Harness.h - Measurement harness ----------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery of the figure/table reproduction binaries: fact-file
/// materialization, interpreter and synthesized-code measurement (with a
/// compile cache shared across bench binaries), and table printing.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_BENCH_HARNESS_H
#define STIRD_BENCH_HARNESS_H

#include "core/Program.h"
#include "interp/Engine.h"
#include "workloads/Workloads.h"

#include <map>
#include <optional>
#include <string>

namespace stird::bench {

/// Result of one interpreter measurement.
struct InterpMeasurement {
  /// Best-of-N wall seconds, including interpreter-tree generation (as in
  /// the paper).
  double Seconds = 0;
  /// Total tuples across all relations (cross-engine checksum).
  std::size_t TotalTuples = 0;
  std::uint64_t Dispatches = 0;
  /// Per-rule accumulated seconds from the profiler (last repetition).
  std::map<std::string, double> RuleSeconds;
};

/// Result of one synthesized-code measurement.
struct SynthMeasurement {
  double CompileSeconds = 0;
  /// Best-of-N wall seconds of the compiled binary (whole process).
  double RunSeconds = 0;
  std::size_t TotalTuples = 0;
  std::map<std::string, double> RuleSeconds;
  bool Ok = false;
};

/// The harness: owns a work directory (default "stird_bench_cache" under
/// the current directory) holding fact files and cached compiled binaries.
class Harness {
public:
  explicit Harness(std::string WorkDir = "stird_bench_cache",
                   int Repetitions = 3);

  /// Writes the workload's fact files (idempotent) and returns their
  /// directory.
  std::string materializeFacts(const Workload &W);

  /// Runs the workload on an interpreter backend. Options' fact dir is set
  /// by the harness; outputs are not stored.
  InterpMeasurement runInterp(const Workload &W,
                              interp::EngineOptions Options = {});

  /// Synthesizes, compiles (cached by source hash) and runs the workload's
  /// compiled baseline.
  SynthMeasurement runSynth(const Workload &W);

  int repetitions() const { return Repetitions; }

private:
  std::string WorkDir;
  int Repetitions;
};

/// Prints the standard header used by every figure binary.
void printHeader(const std::string &Title, const std::string &PaperClaim);

/// Geometric-mean helper for ratio summaries.
double geomean(const std::vector<double> &Values);

} // namespace stird::bench

#endif // STIRD_BENCH_HARNESS_H
