//===- bench/micro_dispatch.cpp - Dispatch-cost microbenchmarks ----------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of interpreter dispatch cost (supporting the Section 6
/// discussion): the same filter-heavy program executed by each backend and
/// optimization level, reported as time per logical dispatch. Also shows
/// why the paper found threaded-code tricks marginal for Soufflé: each
/// dispatch here does real relational work.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "interp/Engine.h"

#include <benchmark/benchmark.h>

using namespace stird;

namespace {

/// Arithmetic-filter-dominated program: dispatch overhead is maximally
/// visible.
const char *FilterProgram = R"(
  .decl a(x:number, y:number)
  .decl out(x:number)
  out(x + y) :- a(x, y), (x * 3 + y) % 7 != 0, x band 15 != 9,
                x + y * 2 < 100000.
)";

std::unique_ptr<core::Program> &program() {
  static std::unique_ptr<core::Program> Prog =
      core::Program::fromSource(FilterProgram);
  return Prog;
}

std::vector<DynTuple> inputs() {
  std::vector<DynTuple> Result;
  for (RamDomain I = 0; I < 20000; ++I)
    Result.push_back({I % 997, (I * 13) % 991});
  return Result;
}

void runBackend(benchmark::State &State, interp::EngineOptions Options) {
  auto Data = inputs();
  std::uint64_t Dispatches = 0;
  for (auto _ : State) {
    auto Engine = program()->makeEngine(Options);
    Engine->insertTuples("a", Data);
    Engine->run();
    Dispatches = Engine->getNumDispatches();
    benchmark::DoNotOptimize(Engine->getRelation("out")->size());
  }
  State.counters["dispatches"] =
      benchmark::Counter(static_cast<double>(Dispatches));
  State.counters["ns_per_dispatch"] = benchmark::Counter(
      1e9 / static_cast<double>(Dispatches),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_DispatchSti(benchmark::State &State) {
  runBackend(State, {});
}
BENCHMARK(BM_DispatchSti)->Unit(benchmark::kMillisecond);

void BM_DispatchStiPlainCase(benchmark::State &State) {
  interp::EngineOptions Options;
  Options.TheBackend = interp::Backend::StaticPlain;
  runBackend(State, Options);
}
BENCHMARK(BM_DispatchStiPlainCase)->Unit(benchmark::kMillisecond);

void BM_DispatchStiNoSuperInstructions(benchmark::State &State) {
  interp::EngineOptions Options;
  Options.SuperInstructions = false;
  runBackend(State, Options);
}
BENCHMARK(BM_DispatchStiNoSuperInstructions)
    ->Unit(benchmark::kMillisecond);

void BM_DispatchStiFusedConditions(benchmark::State &State) {
  interp::EngineOptions Options;
  Options.FuseConditions = true;
  runBackend(State, Options);
}
BENCHMARK(BM_DispatchStiFusedConditions)->Unit(benchmark::kMillisecond);

void BM_DispatchDynamicAdapter(benchmark::State &State) {
  interp::EngineOptions Options;
  Options.TheBackend = interp::Backend::DynamicAdapter;
  runBackend(State, Options);
}
BENCHMARK(BM_DispatchDynamicAdapter)->Unit(benchmark::kMillisecond);

void BM_DispatchLegacy(benchmark::State &State) {
  interp::EngineOptions Options;
  Options.TheBackend = interp::Backend::Legacy;
  runBackend(State, Options);
}
BENCHMARK(BM_DispatchLegacy)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
