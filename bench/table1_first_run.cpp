//===- bench/table1_first_run.cpp - Table 1 reproduction -----------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 1: the ratio (synthesizer compile + execute) /
/// (interpreter execute) — how many times the interpreter finishes before
/// the synthesizer's first run completes. Paper: VPC avg 0.79 (20% >= 1),
/// DDisasm avg 15.2 (90% >= 1), DOOP avg 2.12 (100% >= 1); overall 6.46.
///
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

using namespace stird;
using namespace stird::bench;

int main() {
  printHeader("Table 1 — first-run ratio (compile+run)/interpret",
              "VPC avg 0.79, DDisasm avg 15.2, DOOP avg 2.12; overall 6.46");

  Harness H;
  std::map<std::string, std::vector<double>> Ratios;
  std::vector<double> All;

  std::printf("%-16s %-14s %12s %10s %10s %8s\n", "suite", "benchmark",
              "compile(s)", "synth(s)", "sti(s)", "ratio");
  std::vector<Workload> Suite = allSuites();
  // Only Table 1 pays for the long-running VPC instance whose first-run
  // ratio drops below one.
  Suite.insert(Suite.begin() + 3, vpcXLarge());
  for (const Workload &W : Suite) {
    SynthMeasurement Synth = H.runSynth(W);
    if (!Synth.Ok)
      continue;
    InterpMeasurement Sti = H.runInterp(W);
    const double Ratio =
        (Synth.CompileSeconds + Synth.RunSeconds) / Sti.Seconds;
    std::printf("%-16s %-14s %12.2f %10.4f %10.4f %8.2f\n", W.Suite.c_str(),
                W.Name.c_str(), Synth.CompileSeconds, Synth.RunSeconds,
                Sti.Seconds, Ratio);
    Ratios[W.Suite].push_back(Ratio);
    All.push_back(Ratio);
  }

  std::printf("\n%-10s %12s %8s %8s %8s\n", "suite", "# ratio>=1", "avg",
              "max", "min");
  auto PrintRow = [](const std::string &Name,
                     const std::vector<double> &Values) {
    if (Values.empty())
      return;
    int AtLeastOne = 0;
    double Sum = 0;
    for (double V : Values) {
      AtLeastOne += V >= 1.0;
      Sum += V;
    }
    std::printf("%-10s %11.1f%% %8.2f %8.2f %8.2f\n", Name.c_str(),
                100.0 * AtLeastOne / static_cast<double>(Values.size()),
                Sum / static_cast<double>(Values.size()),
                *std::max_element(Values.begin(), Values.end()),
                *std::min_element(Values.begin(), Values.end()));
  };
  for (const auto &[Suite, Values] : Ratios)
    PrintRow(Suite, Values);
  PrintRow("overall", All);
  return 0;
}
